//! Interestingness functions (Definition 4 of the paper).
//!
//! A user's interest in an event is `sim(l_v, l_u) ∈ [0, 1]` over the two
//! attribute vectors. The paper evaluates with the normalized Euclidean
//! form (its Equation 1) but notes "other similarity functions are
//! applicable"; this module ships the Euclidean form, a cosine variant
//! (natural for the tag-frequency vectors of the Meetup data), and an
//! explicit matrix for instances — like the paper's Table I toy — that
//! are specified by their interestingness values directly.

use serde::{Deserialize, Serialize};

/// How interestingness values are derived for an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimilarityModel {
    /// Equation 1 of the paper: `1 − ‖l_v − l_u‖₂ / √(d·T²)`, where `T`
    /// is the upper bound of every attribute value. Distance-monotone, so
    /// nearest-neighbour indexes accelerate "most similar" queries.
    Euclidean {
        /// Attribute-value upper bound `T` (attributes live in `[0, T]`).
        t: f64,
    },
    /// Cosine similarity `⟨l_v, l_u⟩ / (‖l_v‖·‖l_u‖)`; zero if either
    /// vector is zero. Non-negative because attribute values are
    /// non-negative.
    Cosine,
    /// Explicit `|V| × |U|` interestingness matrix (row per event). Used
    /// by the Table I toy example and by tests that need exact control.
    Matrix(SimMatrix),
}

impl SimilarityModel {
    /// Similarity of two attribute vectors under an attribute-based model.
    ///
    /// # Panics
    ///
    /// Panics if called on [`SimilarityModel::Matrix`] (matrix entries are
    /// addressed by id, not by attributes — use
    /// [`crate::Instance::similarity`]), or if the slices' lengths differ.
    pub fn from_attrs(&self, event_attrs: &[f64], user_attrs: &[f64]) -> f64 {
        assert_eq!(
            event_attrs.len(),
            user_attrs.len(),
            "attribute dimensionality mismatch"
        );
        match self {
            SimilarityModel::Euclidean { t } => euclidean_similarity(event_attrs, user_attrs, *t),
            SimilarityModel::Cosine => cosine_similarity(event_attrs, user_attrs),
            SimilarityModel::Matrix(_) => {
                panic!("matrix similarity is addressed by (event, user) id, not attributes")
            }
        }
    }

    /// Whether this model is a monotone decreasing function of Euclidean
    /// distance, i.e. whether spatial NN indexes answer "most similar"
    /// queries exactly.
    pub fn is_distance_monotone(&self) -> bool {
        matches!(self, SimilarityModel::Euclidean { .. })
    }
}

/// Equation 1: `1 − ‖a − b‖₂ / √(d·T²)`.
///
/// `√(d·T²) = T·√d` is the diameter of the attribute cube `[0, T]^d`, so
/// the result lies in `[0, 1]` whenever both vectors are in the cube.
/// Values are clamped to `[0, 1]` to absorb out-of-cube inputs gracefully.
pub fn euclidean_similarity(a: &[f64], b: &[f64], t: f64) -> f64 {
    debug_assert!(t > 0.0, "attribute bound T must be positive");
    let d = a.len() as f64;
    let dist = geacc_index::distance(a, b);
    (1.0 - dist / (t * d.sqrt())).clamp(0.0, 1.0)
}

/// Cosine similarity; 0 when either vector is zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())).clamp(0.0, 1.0)
    }
}

/// A dense row-major `|V| × |U|` interestingness matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMatrix {
    num_events: usize,
    num_users: usize,
    values: Vec<f64>,
}

impl SimMatrix {
    /// Build from rows; every value must be in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows or out-of-range values.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let num_events = rows.len();
        let num_users = rows.first().map_or(0, Vec::len);
        let mut values = Vec::with_capacity(num_events * num_users);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), num_users, "row {i} has inconsistent length");
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "similarity {v} outside [0, 1]");
                values.push(v);
            }
        }
        SimMatrix {
            num_events,
            num_users,
            values,
        }
    }

    /// Build from a flat row-major buffer of `num_events · num_users`
    /// values in `[0, 1]`. This is the zero-copy assembly point for
    /// [`crate::Instance::dense_similarity`], whose rows are computed on
    /// a thread pool and concatenated in row order.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the dimensions or any
    /// value lies outside `[0, 1]`.
    pub fn from_flat(num_events: usize, num_users: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            num_events * num_users,
            "flat similarity buffer length mismatch"
        );
        for &v in &values {
            assert!((0.0..=1.0).contains(&v), "similarity {v} outside [0, 1]");
        }
        SimMatrix {
            num_events,
            num_users,
            values,
        }
    }

    /// Number of events (rows).
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Number of users (columns).
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// The interestingness value of `(event, user)`.
    #[inline]
    pub fn get(&self, event: usize, user: usize) -> f64 {
        self.values[event * self.num_users + user]
    }

    /// Append one event row of `num_users` values in `[0, 1]` — the
    /// dynamic layer's `AddEvent` path for matrix instances. Appending a
    /// row is a plain extend of the row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch or out-of-range values; callers that
    /// accept untrusted input (the mutation API) validate first.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.num_users, "row length mismatch");
        for &v in row {
            assert!((0.0..=1.0).contains(&v), "similarity {v} outside [0, 1]");
        }
        self.values.extend_from_slice(row);
        self.num_events += 1;
    }

    /// Append one user column of `num_events` values in `[0, 1]` — the
    /// dynamic layer's `AddUser` path for matrix instances. Costs one
    /// `O(|V|·|U|)` rebuild of the row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch or out-of-range values; callers that
    /// accept untrusted input (the mutation API) validate first.
    pub fn push_column(&mut self, column: &[f64]) {
        assert_eq!(column.len(), self.num_events, "column length mismatch");
        for &v in column {
            assert!((0.0..=1.0).contains(&v), "similarity {v} outside [0, 1]");
        }
        let old = self.num_users;
        let mut values = Vec::with_capacity(self.num_events * (old + 1));
        for (v, &s) in column.iter().enumerate() {
            values.extend_from_slice(&self.values[v * old..(v + 1) * old]);
            values.push(s);
        }
        self.values = values;
        self.num_users += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_similarity_one() {
        let a = [3.0, 4.0, 5.0];
        assert_eq!(euclidean_similarity(&a, &a, 10.0), 1.0);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_cube_corners_have_similarity_zero() {
        let a = [0.0, 0.0];
        let b = [10.0, 10.0];
        // ‖a−b‖ = 10√2 = T√d exactly.
        assert!(euclidean_similarity(&a, &b, 10.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean_matches_paper_formula() {
        // d=2, T=10: sim = 1 − 5/(10·√2).
        let s = euclidean_similarity(&[0.0, 0.0], &[3.0, 4.0], 10.0);
        assert!((s - (1.0 - 5.0 / (10.0 * 2f64.sqrt()))).abs() < 1e-12);
    }

    #[test]
    fn euclidean_clamps_out_of_cube_inputs() {
        let s = euclidean_similarity(&[0.0], &[100.0], 10.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn model_dispatch() {
        let e = SimilarityModel::Euclidean { t: 10.0 };
        let c = SimilarityModel::Cosine;
        assert_eq!(e.from_attrs(&[1.0], &[1.0]), 1.0);
        assert_eq!(c.from_attrs(&[1.0, 0.0], &[1.0, 0.0]), 1.0);
        assert!(e.is_distance_monotone());
        assert!(!c.is_distance_monotone());
    }

    #[test]
    #[should_panic(expected = "addressed by (event, user) id")]
    fn matrix_from_attrs_panics() {
        let m = SimilarityModel::Matrix(SimMatrix::from_rows(&[vec![0.5]]));
        m.from_attrs(&[0.0], &[0.0]);
    }

    #[test]
    fn matrix_get() {
        let m = SimMatrix::from_rows(&[vec![0.1, 0.2], vec![0.3, 0.4]]);
        assert_eq!(m.get(0, 1), 0.2);
        assert_eq!(m.get(1, 0), 0.3);
        assert_eq!(m.num_events(), 2);
        assert_eq!(m.num_users(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn ragged_matrix_panics() {
        SimMatrix::from_rows(&[vec![0.1, 0.2], vec![0.3]]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_similarity_panics() {
        SimMatrix::from_rows(&[vec![1.5]]);
    }

    #[test]
    fn serde_roundtrip() {
        let m = SimilarityModel::Matrix(SimMatrix::from_rows(&[vec![0.25, 0.75]]));
        let json = serde_json::to_string(&m).unwrap();
        let back: SimilarityModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
