//! The paper's randomized baselines (Section V, "Baselines").
//!
//! - **Random-V** iterates events; each pair `{v, u}` joins the matching
//!   with probability `c_v / |U|` if it satisfies every constraint.
//! - **Random-U** iterates users; each pair joins with probability
//!   `c_u / |V|` under the same condition.
//!
//! Both always produce feasible arrangements (constraints are checked
//! before every insertion); they exist to show how much headroom the
//! informed algorithms exploit.

use crate::model::arrangement::Arrangement;
use crate::Instance;
use rand::Rng;

/// Run the Random-V baseline.
pub fn random_v<R: Rng + ?Sized>(inst: &Instance, rng: &mut R) -> Arrangement {
    let mut arrangement = Arrangement::empty_for(inst);
    let nu = inst.num_users() as f64;
    for v in inst.events() {
        let p = inst.event_capacity(v) as f64 / nu;
        for u in inst.users() {
            if rng.gen::<f64>() < p {
                let _ = arrangement.try_add(inst, v, u);
            }
        }
    }
    arrangement
}

/// Run the Random-U baseline.
pub fn random_u<R: Rng + ?Sized>(inst: &Instance, rng: &mut R) -> Arrangement {
    let mut arrangement = Arrangement::empty_for(inst);
    let nv = inst.num_events() as f64;
    for u in inst.users() {
        let p = inst.user_capacity(u) as f64 / nv;
        for v in inst.events() {
            if rng.gen::<f64>() < p {
                let _ = arrangement.try_add(inst, v, u);
            }
        }
    }
    arrangement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_v_is_always_feasible() {
        let inst = toy::table1_instance();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let arr = random_v(&inst, &mut rng);
            assert!(arr.validate(&inst).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn random_u_is_always_feasible() {
        let inst = toy::table1_instance();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let arr = random_u(&inst, &mut rng);
            assert!(arr.validate(&inst).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let inst = toy::table1_instance();
        let a = random_v(&inst, &mut StdRng::seed_from_u64(7));
        let b = random_v(&inst, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn baselines_never_beat_the_optimum() {
        let inst = toy::table1_instance();
        let opt = crate::algorithms::prune::prune(&inst).arrangement.max_sum();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            assert!(random_v(&inst, &mut rng).max_sum() <= opt + 1e-9);
            assert!(random_u(&inst, &mut rng).max_sum() <= opt + 1e-9);
        }
    }

    #[test]
    fn full_probability_fills_to_capacity() {
        // c_v = |U| ⇒ probability 1: Random-V adds every feasible pair in
        // scan order, i.e. behaves like a deterministic greedy fill.
        use crate::model::conflict::ConflictGraph;
        use crate::similarity::SimMatrix;
        let m = SimMatrix::from_rows(&[vec![0.5, 0.5]]);
        let inst =
            crate::Instance::from_matrix(m, vec![2], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let arr = random_v(&inst, &mut rng);
        assert_eq!(arr.len(), 2);
    }
}
