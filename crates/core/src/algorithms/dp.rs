//! Exact dynamic program over users (an extension beyond the paper).
//!
//! Prune-GEACC's branch-and-bound degenerates when similarities
//! concentrate (the paper's d = 20 uniform default — see EXPERIMENTS.md):
//! the Lemma 6 bound barely exceeds the incumbent and the tree explodes,
//! with hour-scale variance across seeds. This module contributes a
//! *deterministic* exact algorithm whose cost is exponential **only in
//! `|V|`**:
//!
//! process users one at a time; the DP state is the vector of remaining
//! event capacities (mixed-radix encoded), and each user transitions by
//! one of their feasible event subsets — non-conflicting, positive
//! similarity, at most `c_u` events. With `S = Π_v (c_v + 1)` states and
//! at most `Σ_{k≤c_u} C(|V|, k)` subsets per user, the total cost is
//! `O(|U| · S · subsets · |V|)` — for the paper's effectiveness setting
//! (`|V| = 5`, `c_v ~ U[1,10]`, `|U| = 15`) that is well under a second,
//! for *every* instance.
//!
//! Correctness does not depend on any bound or seed; the property suite
//! checks it against Prune-GEACC and exhaustive search.
//!
//! Use [`exact_dp`] when `|V|` is small (≲ 8 at moderate capacities);
//! use Prune-GEACC when `|V|` is larger but similarities are spread.

use crate::model::arrangement::Arrangement;
use crate::model::ids::{EventId, UserId};
use crate::Instance;

/// Refuse to allocate DP tables beyond this many states (`Π (c_v + 1)`):
/// two f64 layers (32 MB) plus one u8 reconstruction table per user.
pub const MAX_DP_STATES: usize = 2_000_000;

/// Error returned when the instance's event side is too large for the DP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpTooLarge {
    /// `Π (c_v + 1)` for the offending instance.
    pub states: u128,
}

impl std::fmt::Display for DpTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DP state space Π(c_v+1) = {} exceeds the {MAX_DP_STATES} limit; \
             use prune() or an approximation",
            self.states
        )
    }
}

impl std::error::Error for DpTooLarge {}

/// The DP's state-space size `Π (c_v + 1)`, or [`DpTooLarge`] when it
/// exceeds [`MAX_DP_STATES`]. Dispatchers call this to pre-validate an
/// instance before committing to [`exact_dp`] (whose engine wrapper
/// panics on oversize, relying on the pipeline's panic isolation).
pub fn dp_state_space(inst: &Instance) -> Result<usize, DpTooLarge> {
    let mut states_u128: u128 = 1;
    for v in inst.events() {
        states_u128 = states_u128.saturating_mul(inst.event_capacity(v) as u128 + 1);
        if states_u128 > MAX_DP_STATES as u128 {
            return Err(DpTooLarge {
                states: states_u128,
            });
        }
    }
    Ok(states_u128 as usize)
}

/// Solve the instance exactly by capacity-vector DP; returns an optimal
/// arrangement, or an error if `Π (c_v + 1)` exceeds [`MAX_DP_STATES`].
pub fn exact_dp(inst: &Instance) -> Result<Arrangement, DpTooLarge> {
    let nv = inst.num_events();
    let nu = inst.num_users();

    // Mixed-radix encoding of remaining capacities.
    let radices: Vec<usize> = inst
        .events()
        .map(|v| inst.event_capacity(v) as usize + 1)
        .collect();
    let num_states = dp_state_space(inst)?;
    // stride[v] = Π_{w < v} radices[w]; digit v of state s is
    // (s / stride[v]) % radices[v].
    let mut stride = vec![1usize; nv];
    for v in 1..nv {
        stride[v] = stride[v - 1] * radices[v - 1];
    }

    // Per-user feasible subsets: (event bitmask, similarity sum), with
    // the empty subset first. Masks fit in u32 (the state-space guard
    // caps nv well below 32 in practice; assert defensively).
    assert!(
        nv <= 30,
        "DP event masks use u32; Π(c_v+1) should have tripped first"
    );
    let mut row = Vec::new();
    let mut user_subsets: Vec<Vec<(u32, f64)>> = Vec::with_capacity(nu);
    for u in inst.users() {
        inst.similarity_column(u, &mut row);
        let cap = inst.user_capacity(u) as usize;
        let mut subsets: Vec<(u32, f64)> = vec![(0, 0.0)];
        // Grow subsets incrementally: extend each existing subset by a
        // higher-indexed, non-conflicting, positive-sim event.
        let mut frontier: Vec<(u32, f64, usize)> = vec![(0, 0.0, 0)];
        while let Some((mask, sum, next)) = frontier.pop() {
            if (mask.count_ones() as usize) >= cap {
                continue;
            }
            for (v, &sim) in row.iter().enumerate().skip(next) {
                if sim <= 0.0 {
                    continue;
                }
                let ev = EventId(v as u32);
                let conflict = (0..nv).any(|w| {
                    mask >> w & 1 == 1 && inst.conflicts().conflicts(ev, EventId(w as u32))
                });
                if conflict {
                    continue;
                }
                let m2 = mask | 1 << v;
                let s2 = sum + sim;
                subsets.push((m2, s2));
                frontier.push((m2, s2, v + 1));
            }
        }
        user_subsets.push(subsets);
    }

    // Forward DP. dp[s] = best MaxSum using the users processed so far,
    // having consumed capacities encoded by (full - s)… we instead let
    // `s` encode *remaining* capacities directly; the initial state is
    // "everything remaining".
    let full_state = num_states - 1; // all digits at max = all capacity free
    let neg = f64::NEG_INFINITY;
    let mut dp = vec![neg; num_states];
    dp[full_state] = 0.0;
    // choice[u][s] = subset index the optimum takes at user u *arriving
    // in* state s (u8: subset counts are tiny).
    let mut choice: Vec<Vec<u8>> = Vec::with_capacity(nu);

    let mut next_dp = vec![neg; num_states];
    for subsets in &user_subsets {
        next_dp.fill(neg);
        let mut ch = vec![0u8; num_states];
        assert!(
            subsets.len() <= u8::MAX as usize + 1,
            "subset index fits u8"
        );
        for (s, &base) in dp.iter().enumerate() {
            if base == neg {
                continue;
            }
            for (idx, &(mask, sum)) in subsets.iter().enumerate() {
                // Decode digits only for the events in the mask.
                let mut s2 = s;
                let mut ok = true;
                let mut m = mask;
                while m != 0 {
                    let v = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let digit = (s / stride[v]) % radices[v];
                    if digit == 0 {
                        ok = false;
                        break;
                    }
                    s2 -= stride[v];
                }
                if !ok {
                    continue;
                }
                let cand = base + sum;
                if cand > next_dp[s2] {
                    next_dp[s2] = cand;
                    ch[s2] = idx as u8;
                }
            }
        }
        choice.push(ch);
        std::mem::swap(&mut dp, &mut next_dp);
    }

    // Find the best terminal state and walk back.
    let (mut state, _) = dp
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty dp");
    // Reconstruct choices from the last user backwards. We need, for
    // each user, the state they *arrived* in; recover it by reversing
    // the transition (adding the consumed capacity back).
    let mut picks: Vec<(UserId, u32)> = Vec::with_capacity(nu);
    for u in (0..nu).rev() {
        let idx = choice[u][state] as usize;
        let (mask, _) = user_subsets[u][idx];
        picks.push((UserId(u as u32), mask));
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            state += stride[v];
        }
    }

    let mut arrangement = Arrangement::empty_for(inst);
    for (u, mask) in picks {
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            let ev = EventId(v as u32);
            arrangement.push_unchecked(ev, u, inst.similarity(ev, u));
        }
    }
    Ok(arrangement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{exhaustive, greedy, prune};
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;

    #[test]
    fn matches_the_paper_optimum_on_the_toy() {
        let inst = toy::table1_instance();
        let dp = exact_dp(&inst).unwrap();
        assert!(
            (dp.max_sum() - toy::OPTIMAL_MAX_SUM).abs() < 1e-9,
            "got {}",
            dp.max_sum()
        );
        assert!(dp.validate(&inst).is_empty());
    }

    #[test]
    fn agrees_with_prune_and_exhaustive_on_random_matrices() {
        // Deterministic xorshift-driven instances.
        let mut x = 0x243F6A8885A308D3u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for trial in 0..25 {
            let nv = (next() % 4 + 1) as usize;
            let nu = (next() % 6 + 1) as usize;
            let rows: Vec<Vec<f64>> = (0..nv)
                .map(|_| (0..nu).map(|_| (next() % 101) as f64 / 100.0).collect())
                .collect();
            let cap_v: Vec<u32> = (0..nv).map(|_| (next() % 3 + 1) as u32).collect();
            let cap_u: Vec<u32> = (0..nu).map(|_| (next() % 3 + 1) as u32).collect();
            let mut conflicts = ConflictGraph::empty(nv);
            for i in 0..nv {
                for j in (i + 1)..nv {
                    if next() % 3 == 0 {
                        conflicts.add_pair(EventId(i as u32), EventId(j as u32));
                    }
                }
            }
            let inst = Instance::from_matrix(SimMatrix::from_rows(&rows), cap_v, cap_u, conflicts)
                .unwrap();
            let dp = exact_dp(&inst).unwrap();
            let p = prune(&inst).arrangement;
            let e = exhaustive(&inst).arrangement;
            assert!(
                (dp.max_sum() - p.max_sum()).abs() < 1e-9,
                "trial {trial}: dp {} != prune {}",
                dp.max_sum(),
                p.max_sum()
            );
            assert!((dp.max_sum() - e.max_sum()).abs() < 1e-9);
            assert!(dp.validate(&inst).is_empty(), "trial {trial}");
        }
    }

    #[test]
    fn solves_the_papers_literal_effectiveness_setting_fast() {
        // The setting that defeats branch-and-bound: |V| = 5, |U| = 15,
        // c_v ~ U[1, 10], d = 20 uniform. The DP is deterministic and
        // sub-second regardless of similarity concentration.
        use crate::similarity::SimilarityModel;
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut b = Instance::builder(20, SimilarityModel::Euclidean { t: 10_000.0 });
        for _ in 0..5 {
            let attrs: Vec<f64> = (0..20).map(|_| next() * 10_000.0).collect();
            b.event(&attrs, (next() * 9.0) as u32 + 1);
        }
        for _ in 0..15 {
            let attrs: Vec<f64> = (0..20).map(|_| next() * 10_000.0).collect();
            b.user(&attrs, (next() * 3.0) as u32 + 1);
        }
        let mut cf = ConflictGraph::empty(5);
        cf.add_pair(EventId(0), EventId(3));
        cf.add_pair(EventId(1), EventId(2));
        b.conflicts(cf);
        let inst = b.build().unwrap();
        let start = std::time::Instant::now();
        let dp = exact_dp(&inst).unwrap();
        assert!(
            start.elapsed().as_secs_f64() < 5.0,
            "DP took {:?}",
            start.elapsed()
        );
        assert!(dp.validate(&inst).is_empty());
        // And it dominates greedy, as an optimum must.
        assert!(dp.max_sum() + 1e-9 >= greedy(&inst).max_sum());
    }

    #[test]
    fn oversized_instances_are_rejected_cleanly() {
        let m = SimMatrix::from_rows(&vec![vec![0.5; 2]; 10]);
        let inst = Instance::from_matrix(
            m,
            vec![100; 10], // Π(101)^10 ≈ 1e20 states
            vec![1, 1],
            ConflictGraph::empty(10),
        )
        .unwrap();
        let err = exact_dp(&inst).unwrap_err();
        assert!(err.states > MAX_DP_STATES as u128);
        assert!(err.to_string().contains("state space"));
    }

    #[test]
    fn respects_conflicts_and_capacities() {
        let m = SimMatrix::from_rows(&[vec![0.9, 0.8], vec![0.7, 0.6], vec![0.5, 0.4]]);
        let inst = Instance::from_matrix(
            m,
            vec![1, 1, 2],
            vec![2, 2],
            ConflictGraph::from_pairs(3, [(EventId(0), EventId(1))]),
        )
        .unwrap();
        let dp = exact_dp(&inst).unwrap();
        assert!(dp.validate(&inst).is_empty());
        // Optimal: u0 gets {v0, v2} (0.9 + 0.5), u1 gets {v1, v2} (0.6 +
        // 0.4) → 2.4.
        assert!((dp.max_sum() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn empty_similarity_instance_yields_empty_arrangement() {
        let m = SimMatrix::from_rows(&[vec![0.0, 0.0]]);
        let inst = Instance::from_matrix(m, vec![3], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let dp = exact_dp(&inst).unwrap();
        assert!(dp.is_empty());
    }
}
