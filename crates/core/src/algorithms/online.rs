//! Online event-participant arrangement (an extension beyond the paper).
//!
//! The paper arranges a *known* user population offline. A deployed EBSN
//! also faces the streaming version: events are published, then users
//! sign up one at a time and must be answered immediately. This module
//! provides that primitive: an [`OnlineArranger`] holds the running
//! arrangement and assigns each arriving user their best feasible event
//! set — greedily by similarity, respecting capacities and conflicts —
//! optionally withholding seats from lukewarm matches via a similarity
//! threshold so that later, better-matched arrivals still find room.
//!
//! Every intermediate state is a feasible GEACC arrangement (the
//! property suite checks arbitrary arrival prefixes), and with threshold
//! 0 the final result equals running the per-user greedy offline in
//! arrival order. There is no constant competitive ratio in general —
//! an adversary can always burn capacity with early mediocre arrivals —
//! but the `online` bench shows thresholds recovering much of the
//! offline gap on capacity-tight workloads.

use crate::algorithms::NeighborOracle;
use crate::model::arrangement::Arrangement;
use crate::model::ids::{EventId, UserId};
use crate::Instance;

/// Configuration for [`OnlineArranger`].
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Assign a pair only if its similarity is at least this value.
    /// `0.0` (default) accepts any positive-similarity pair; higher
    /// values reserve capacity for better-matched future arrivals at
    /// the cost of rejecting present ones.
    pub threshold: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig { threshold: 0.0 }
    }
}

/// Streaming arranger: call [`OnlineArranger::arrive`] per user in
/// arrival order, then [`OnlineArranger::finish`].
#[derive(Debug, Clone)]
pub struct OnlineArranger<'a> {
    inst: &'a Instance,
    config: OnlineConfig,
    arrangement: Arrangement,
    cap_v: Vec<u32>,
    served: Vec<bool>,
    oracle: NeighborOracle<'a>,
}

impl<'a> OnlineArranger<'a> {
    /// Start with every event's full capacity available.
    pub fn new(inst: &'a Instance, config: OnlineConfig) -> Self {
        OnlineArranger {
            inst,
            config,
            arrangement: Arrangement::empty_for(inst),
            cap_v: inst.events().map(|v| inst.event_capacity(v)).collect(),
            served: vec![false; inst.num_users()],
            oracle: NeighborOracle::new(inst),
        }
    }

    /// Serve one arriving user: assign their best feasible events (by
    /// similarity, descending, ties toward lower event id) up to their
    /// capacity, subject to remaining seats, conflicts with their own
    /// assignments, and the configured threshold. Returns the events
    /// granted to this user.
    ///
    /// # Panics
    ///
    /// Panics if the user already arrived (each user arrives once).
    pub fn arrive(&mut self, u: UserId) -> Vec<EventId> {
        assert!(
            !std::mem::replace(&mut self.served[u.index()], true),
            "{u} arrived twice"
        );
        // The oracle streams this user's events in exactly the order the
        // greedy scan wants — similarity descending, ties toward lower
        // event id, positive similarities only — so serving an arrival is
        // a walk down the stream instead of an O(|V|) scan + sort. The
        // stream is consumed lazily: a user granted their top events
        // never pays for ranking the tail, and once similarity falls
        // below the threshold the walk stops early (the stream is
        // non-increasing).
        let mut granted = Vec::new();
        let cap_u = self.inst.user_capacity(u) as usize;
        while granted.len() < cap_u {
            let Some((v, sim)) = self.oracle.next_event_for_user(u) else {
                break;
            };
            if sim < self.config.threshold {
                break;
            }
            if self.cap_v[v.index()] == 0 {
                continue;
            }
            if self
                .inst
                .conflicts()
                .conflicts_with_any(v, self.arrangement.events_of(u))
            {
                continue;
            }
            self.arrangement.push_unchecked(v, u, sim);
            self.cap_v[v.index()] -= 1;
            granted.push(v);
        }
        granted
    }

    /// Users served so far.
    pub fn arrivals(&self) -> usize {
        self.served.iter().filter(|&&s| s).count()
    }

    /// Current (always-feasible) arrangement, read-only.
    pub fn arrangement(&self) -> &Arrangement {
        &self.arrangement
    }

    /// Finish the stream and take the arrangement.
    pub fn finish(self) -> Arrangement {
        self.arrangement
    }
}

/// Convenience: run a full arrival sequence and return the result.
///
/// # Panics
///
/// Panics if `order` repeats a user.
pub fn online_greedy(
    inst: &Instance,
    order: impl IntoIterator<Item = UserId>,
    config: OnlineConfig,
) -> Arrangement {
    let mut arranger = OnlineArranger::new(inst, config);
    for u in order {
        arranger.arrive(u);
    }
    arranger.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy;
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;

    #[test]
    fn every_prefix_is_feasible() {
        let inst = toy::table1_instance();
        let mut arranger = OnlineArranger::new(&inst, OnlineConfig::default());
        for u in inst.users() {
            arranger.arrive(u);
            assert!(
                arranger.arrangement().validate(&inst).is_empty(),
                "infeasible after {u}"
            );
        }
        let final_arr = arranger.finish();
        assert!(final_arr.max_sum() > 0.0);
    }

    #[test]
    fn arrival_order_matters() {
        // One seat, two users: whoever arrives first takes it.
        let m = SimMatrix::from_rows(&[vec![0.5, 0.9]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let first = online_greedy(&inst, [UserId(0), UserId(1)], OnlineConfig::default());
        assert!(first.contains(EventId(0), UserId(0)));
        let second = online_greedy(&inst, [UserId(1), UserId(0)], OnlineConfig::default());
        assert!(second.contains(EventId(0), UserId(1)));
        assert!(second.max_sum() > first.max_sum());
    }

    #[test]
    fn threshold_reserves_capacity_for_better_arrivals() {
        // Without a threshold the early lukewarm user (0.4) takes the
        // seat the later enthusiast (0.9) wanted.
        let m = SimMatrix::from_rows(&[vec![0.4, 0.9]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let naive = online_greedy(&inst, [UserId(0), UserId(1)], OnlineConfig::default());
        assert!((naive.max_sum() - 0.4).abs() < 1e-12);
        let reserved = online_greedy(
            &inst,
            [UserId(0), UserId(1)],
            OnlineConfig { threshold: 0.5 },
        );
        assert!((reserved.max_sum() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn conflicts_are_respected_per_user() {
        let inst = toy::table1_instance();
        let arr = online_greedy(&inst, inst.users(), OnlineConfig::default());
        // u0 likes both v0 (0.93) and v2 (0.86) but they conflict.
        let events = arr.events_of(UserId(0));
        assert!(!events.is_empty());
        assert!(!(events.contains(&EventId(0)) && events.contains(&EventId(2))));
        assert!(arr.validate(&inst).is_empty());
    }

    #[test]
    fn online_never_beats_offline_optimum_and_tracks_greedy() {
        let inst = toy::table1_instance();
        let online = online_greedy(&inst, inst.users(), OnlineConfig::default());
        let offline = greedy(&inst);
        let opt = crate::algorithms::prune(&inst).arrangement;
        assert!(online.max_sum() <= opt.max_sum() + 1e-9);
        // No guarantee vs offline greedy, but on the toy it lands close.
        assert!(online.max_sum() >= 0.5 * offline.max_sum());
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_is_rejected() {
        let inst = toy::table1_instance();
        let mut arranger = OnlineArranger::new(&inst, OnlineConfig::default());
        arranger.arrive(UserId(0));
        arranger.arrive(UserId(0));
    }

    #[test]
    fn arrivals_counter_tracks_serves() {
        let inst = toy::table1_instance();
        let mut arranger = OnlineArranger::new(&inst, OnlineConfig::default());
        assert_eq!(arranger.arrivals(), 0);
        arranger.arrive(UserId(2));
        arranger.arrive(UserId(0));
        assert_eq!(arranger.arrivals(), 2);
    }

    #[test]
    fn extreme_threshold_rejects_everyone() {
        let inst = toy::table1_instance();
        let arr = online_greedy(&inst, inst.users(), OnlineConfig { threshold: 0.99 });
        assert!(arr.is_empty());
    }
}
