//! MinCostFlow-GEACC (Algorithm 1 of the paper).
//!
//! Two phases:
//!
//! 1. **Relaxation.** Ignore conflicts. The relaxed problem is a min-cost
//!    flow: source → events (capacity `c_v`), one unit arc per
//!    event–user pair with cost `1 − sim`, users → sink (capacity `c_u`).
//!    The paper computes a min-cost flow for every amount
//!    `Δ ∈ [Δ_min, Δ_max]` and keeps the arrangement with the largest
//!    `MaxSum(M_∅^Δ)`. Because `Σ flow·sim = Δ − cost(F^Δ)` and sim = 0
//!    arcs contribute nothing, `MaxSum(M_∅^Δ) = Δ − cost(F^Δ)` exactly —
//!    so the sweep reduces to watching `Δ − cost` during a *single*
//!    incremental Successive-Shortest-Path run (each augmentation extends
//!    `F^Δ` to `F^{Δ+amount}`; SSP invariance makes every prefix optimal,
//!    the paper's Lemma 1). An ablation bench re-solves from scratch per
//!    `Δ` to confirm the algebraic identity empirically.
//! 2. **Conflict repair.** For each user, keep a maximum-weight-ish
//!    independent set of their assigned events, greedily by similarity
//!    (the exact MWIS is itself NP-hard, as the paper notes).
//!
//! Guarantee: `1 / max c_u` of the optimum (Theorem 2).

use crate::engine::CandidateGraph;
use crate::model::arrangement::Arrangement;
use crate::model::ids::{EventId, UserId};
use crate::parallel::Threads;
use crate::runtime::{BudgetMeter, SolveError, StopReason};
use crate::Instance;
use geacc_flow::assignment::BipartiteMatcher;

pub use geacc_flow::mincost::HeapKind as SspHeap;

/// Tolerance for cost comparisons during the Δ sweep.
const EPS: f64 = 1e-9;

/// Configuration for [`mincostflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McfConfig {
    /// Stop the Δ sweep as soon as an augmenting path of unit cost ≥ 1
    /// appears. Successive shortest paths have non-decreasing unit cost,
    /// so later Δ can only lower `Δ − cost`; the result is unchanged and
    /// the sweep often much shorter. Off by default to follow the
    /// paper's full `Δ_min..Δ_max` loop (the `mcf_sweep` ablation bench
    /// measures the gap).
    pub early_stop: bool,
    /// Solve each user's conflict repair *exactly* instead of greedily.
    /// The repair step is a per-user maximum-weight independent set; the
    /// paper keeps it greedy because MWIS is NP-hard in general, but a
    /// user's assigned set is capacity-bounded (≤ c_u events), so exact
    /// bitmask enumeration is affordable up to
    /// [`EXACT_REPAIR_LIMIT`] events and can only raise `MaxSum`.
    /// Off by default (the paper's Algorithm 1); users with more
    /// assigned events than the limit fall back to the greedy scan.
    pub exact_repair: bool,
    /// Which frontier structure the SSP Dijkstra uses. The default
    /// radix heap and the classic binary heap are bit-identical in
    /// every observable (see [`SspHeap`] and DESIGN.md §13); the knob
    /// exists for differential testing and benchmarking.
    pub heap: SspHeap,
}

/// Largest per-user assigned-event count repaired exactly under
/// [`McfConfig::exact_repair`] (2²⁰ subsets ≈ 1M, microseconds per user).
pub const EXACT_REPAIR_LIMIT: usize = 20;

/// Diagnostics from the relaxation phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxationInfo {
    /// `MaxSum(M_∅)` — the optimal conflict-free relaxation value
    /// (an upper bound on the constrained optimum, Corollary 1).
    pub max_sum: f64,
    /// The flow amount `Δ` at which the relaxation peaked.
    pub best_delta: i64,
    /// The saturation flow (`Δ_max` effectively reached).
    pub max_delta: i64,
}

/// Result of MinCostFlow-GEACC.
#[derive(Debug, Clone)]
pub struct McfResult {
    /// The final feasible arrangement (after conflict repair).
    pub arrangement: Arrangement,
    /// Relaxation diagnostics (`M_∅` value, peak Δ).
    pub relaxation: RelaxationInfo,
}

/// Run MinCostFlow-GEACC with default configuration.
pub fn mincostflow(inst: &Instance) -> McfResult {
    mincostflow_with(inst, McfConfig::default())
}

/// Run MinCostFlow-GEACC.
pub fn mincostflow_with(inst: &Instance, config: McfConfig) -> McfResult {
    let graph = CandidateGraph::build(inst, Threads::single());
    mincostflow_on(&graph, config, None)
        .expect("paper-facing instances are validated at construction")
        .0
}

/// The engine entry point: MinCostFlow-GEACC over a prebuilt candidate
/// graph. The flow network's cost rows are scattered straight from the
/// graph's CSR rows instead of recomputing attribute similarities.
///
/// With `meter: Some(_)`, the Δ sweep ticks it once per augmentation
/// and, when a limit trips, stops sweeping and materializes the best
/// `Δ*` seen so far for the (polynomial, fast) conflict-repair phase —
/// so the returned arrangement is always feasible, built from a
/// truncated relaxation instead of the full one. `None` (or an
/// unlimited meter) is bit-identical to [`mincostflow_with`].
///
/// # Errors
///
/// [`SolveError`] on pathological inputs — a non-finite similarity
/// (NaN/∞ arc cost would make shortest paths undefined) or a rejected
/// network shape — so the pipeline degrades gracefully instead of
/// panicking inside `catch_unwind`.
pub fn mincostflow_on(
    graph: &CandidateGraph,
    config: McfConfig,
    meter: Option<&BudgetMeter>,
) -> Result<(McfResult, Option<StopReason>), SolveError> {
    let inst = graph.instance();
    let nu = inst.num_users();
    let mut stopped: Option<StopReason> = None;

    // Phase 1a: sweep Δ on an incremental SSP solver, recording where
    // MaxSum(M_∅^Δ) = Δ − cost(F^Δ) peaks. Unit costs are non-decreasing
    // so the objective is concave in Δ; tracking step endpoints finds the
    // exact peak. A checkpoint taken at each new peak lets Phase 1b
    // rewind to `Δ*` instead of re-solving from scratch (the sweep flies
    // past the peak; SSP prefix optimality makes the rewound flow
    // identical to a fresh run stopped there).
    let mut matcher = build_matcher(graph)?;
    let solver = matcher.solver_mut();
    solver.set_heap(config.heap);
    let mut best_ms = 0.0;
    let mut best_delta = 0i64;
    let mut best_mark = solver.checkpoint();
    while let Some(step) = solver.augment_step(i64::MAX) {
        let ms = solver.flow() as f64 - solver.cost();
        if ms > best_ms + EPS {
            best_ms = ms;
            best_delta = solver.flow();
            best_mark = solver.checkpoint();
        }
        // One augmentation is a whole shortest-path computation —
        // macroscopic work — so use the every-tick slow checks; the
        // amortized variant could overrun a deadline by seconds here.
        if let Some(m) = meter {
            if let Some(reason) = m.tick_coarse() {
                stopped = Some(reason);
                break;
            }
        }
        if config.early_stop && step.unit_cost >= 1.0 - EPS {
            break;
        }
    }
    let max_delta = solver.flow();

    // Phase 1b: materialize M_∅ = F^{Δ*} by rewinding the sweep solver
    // to the peak checkpoint — O(pushes undone) instead of redoing the
    // whole sweep's Dijkstra work.
    let mut arrangement = Arrangement::empty_for(inst);
    let mut per_user: Vec<Vec<(f64, EventId)>> = vec![Vec::new(); nu];
    if best_delta > 0 {
        let solver = matcher.solver_mut();
        solver.rewind(&best_mark);
        debug_assert_eq!(solver.flow(), best_delta);
        debug_assert!((solver.flow() as f64 - solver.cost() - best_ms).abs() < 1e-6);
        for (v, u) in matcher.matched_pairs() {
            let (ev, us) = (EventId(v as u32), UserId(u as u32));
            let sim = inst.similarity(ev, us);
            if sim > 0.0 {
                per_user[u].push((sim, ev));
            }
        }

        // Phase 2 (lines 8–14): per-user independent set — greedy (the
        // paper's Algorithm 1) or exact bitmask MWIS when configured.
        for (u, list) in per_user.iter_mut().enumerate() {
            list.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let user = UserId(u as u32);
            if config.exact_repair && list.len() <= EXACT_REPAIR_LIMIT {
                for &(sim, v) in exact_independent_set(inst, list) {
                    arrangement.push_unchecked(v, user, sim);
                }
            } else {
                for &(sim, v) in list.iter() {
                    if !inst
                        .conflicts()
                        .conflicts_with_any(v, arrangement.events_of(user))
                    {
                        arrangement.push_unchecked(v, user, sim);
                    }
                }
            }
        }
    }

    Ok((
        McfResult {
            arrangement,
            relaxation: RelaxationInfo {
                max_sum: best_ms,
                best_delta,
                max_delta,
            },
        },
        stopped,
    ))
}

/// Exact maximum-weight independent set over one user's assigned events
/// by bitmask enumeration (`list.len() ≤ EXACT_REPAIR_LIMIT`). Returns
/// the winning subset as a sub-slice selection.
fn exact_independent_set<'l>(
    inst: &Instance,
    list: &'l [(f64, EventId)],
) -> Vec<&'l (f64, EventId)> {
    let n = list.len();
    debug_assert!(n <= EXACT_REPAIR_LIMIT);
    // Precompute pairwise conflict masks.
    let mut conflict_mask = vec![0u32; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if inst.conflicts().conflicts(list[i].1, list[j].1) {
                conflict_mask[i] |= 1 << j;
                conflict_mask[j] |= 1 << i;
            }
        }
    }
    let mut best_mask = 0u32;
    let mut best_weight = -1.0;
    'outer: for mask in 0u32..(1 << n) {
        let mut weight = 0.0;
        for i in 0..n {
            if mask >> i & 1 == 1 {
                if conflict_mask[i] & mask != 0 {
                    continue 'outer;
                }
                weight += list[i].0;
            }
        }
        if weight > best_weight {
            best_weight = weight;
            best_mask = mask;
        }
    }
    (0..n)
        .filter(|&i| best_mask >> i & 1 == 1)
        .map(|i| &list[i])
        .collect()
}

/// Construct the paper's flow network `G_F` as a bipartite matcher:
/// events on the left (capacity `c_v`), users on the right (capacity
/// `c_u`), unit cross arcs of cost `1 − sim` — including the paper's
/// `sim = 0` arcs (cost 1), which never help `MaxSum` but are part of
/// the construction. Rows are scattered from the shared candidate
/// graph, so the cost closure is a cheap lookup and the attribute
/// similarities are computed exactly once per instance.
///
/// Rejects non-finite similarities up front (NaN/∞ arc costs make SSP
/// distances undefined) and maps a network-construction failure to a
/// structured [`SolveError`] instead of panicking.
fn build_matcher(graph: &CandidateGraph) -> Result<BipartiteMatcher, SolveError> {
    let inst = graph.instance();
    let event_caps: Vec<u32> = inst.events().map(|v| inst.event_capacity(v)).collect();
    let user_caps: Vec<u32> = inst.users().map(|u| inst.user_capacity(u)).collect();
    let mut sims = Vec::with_capacity(inst.num_events());
    for v in inst.events() {
        let mut row = Vec::new();
        graph.scatter_row(v, &mut row);
        if !row.iter().all(|s| s.is_finite()) {
            return Err(SolveError::NonFiniteCost);
        }
        sims.push(row);
    }
    BipartiteMatcher::new(&event_caps, &user_caps, |v, u| 1.0 - sims[v][u])
        .map_err(|_| SolveError::MalformedNetwork)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;

    #[test]
    fn reproduces_paper_example_2() {
        // Fig. 1c: MinCostFlow-GEACC on the Table I toy yields 4.13.
        let inst = toy::table1_instance();
        let res = mincostflow(&inst);
        assert!(
            (res.arrangement.max_sum() - toy::MINCOSTFLOW_MAX_SUM).abs() < 1e-9,
            "got {}",
            res.arrangement.max_sum()
        );
        assert!(res.arrangement.validate(&inst).is_empty());
    }

    #[test]
    fn relaxation_upper_bounds_the_final_arrangement() {
        let inst = toy::table1_instance();
        let res = mincostflow(&inst);
        assert!(res.relaxation.max_sum >= res.arrangement.max_sum() - 1e-9);
        assert!(res.relaxation.best_delta <= res.relaxation.max_delta);
    }

    #[test]
    fn no_conflicts_means_no_repair_loss() {
        // With CF = ∅ the result is the optimal relaxation (Lemma 1).
        let m = SimMatrix::from_rows(&[vec![0.9, 0.1], vec![0.3, 0.8]]);
        let inst =
            Instance::from_matrix(m, vec![1, 1], vec![1, 1], ConflictGraph::empty(2)).unwrap();
        let res = mincostflow(&inst);
        assert!((res.arrangement.max_sum() - 1.7).abs() < 1e-9);
        assert!((res.relaxation.max_sum - 1.7).abs() < 1e-9);
    }

    #[test]
    fn zero_similarity_pairs_are_excluded_from_the_matching() {
        let m = SimMatrix::from_rows(&[vec![0.0, 0.6]]);
        let inst = Instance::from_matrix(m, vec![2], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let res = mincostflow(&inst);
        assert_eq!(res.arrangement.len(), 1);
        assert!(res.arrangement.contains(EventId(0), UserId(1)));
        assert!(res.arrangement.validate(&inst).is_empty());
    }

    #[test]
    fn exact_repair_never_loses_to_greedy_repair() {
        let inst = toy::table1_instance();
        let greedy_repair = mincostflow(&inst);
        let exact = mincostflow_with(
            &inst,
            McfConfig {
                exact_repair: true,
                ..McfConfig::default()
            },
        );
        assert!(exact.arrangement.validate(&inst).is_empty());
        assert!(exact.arrangement.max_sum() + 1e-12 >= greedy_repair.arrangement.max_sum());
    }

    #[test]
    fn exact_repair_beats_greedy_on_an_adversarial_conflict_chain() {
        // One user assigned three events in M_∅ with a path conflict
        // v0–v1, v1–v2. Greedy repair takes the single best event v1
        // (0.8) and is then blocked from both neighbours; exact repair
        // takes {v0, v2} = 1.4.
        let m = SimMatrix::from_rows(&[vec![0.7], vec![0.8], vec![0.7]]);
        let inst = Instance::from_matrix(
            m,
            vec![1, 1, 1],
            vec![3],
            ConflictGraph::from_pairs(3, [(EventId(0), EventId(1)), (EventId(1), EventId(2))]),
        )
        .unwrap();
        let greedy_repair = mincostflow(&inst);
        assert!((greedy_repair.arrangement.max_sum() - 0.8).abs() < 1e-9);
        let exact = mincostflow_with(
            &inst,
            McfConfig {
                exact_repair: true,
                ..McfConfig::default()
            },
        );
        assert!((exact.arrangement.max_sum() - 1.4).abs() < 1e-9);
        assert!(exact.arrangement.validate(&inst).is_empty());
    }

    #[test]
    fn exact_repair_equals_greedy_without_conflicts() {
        let m = SimMatrix::from_rows(&[vec![0.9, 0.1], vec![0.3, 0.8]]);
        let inst =
            Instance::from_matrix(m, vec![1, 1], vec![1, 1], ConflictGraph::empty(2)).unwrap();
        let a = mincostflow(&inst).arrangement;
        let b = mincostflow_with(
            &inst,
            McfConfig {
                exact_repair: true,
                ..McfConfig::default()
            },
        )
        .arrangement;
        assert_eq!(a, b);
    }

    #[test]
    fn early_stop_matches_full_sweep() {
        let inst = toy::table1_instance();
        let full = mincostflow_with(
            &inst,
            McfConfig {
                early_stop: false,
                ..Default::default()
            },
        );
        let fast = mincostflow_with(
            &inst,
            McfConfig {
                early_stop: true,
                ..Default::default()
            },
        );
        assert!((full.arrangement.max_sum() - fast.arrangement.max_sum()).abs() < 1e-9);
        assert!((full.relaxation.max_sum - fast.relaxation.max_sum).abs() < 1e-9);
        assert_eq!(full.relaxation.best_delta, fast.relaxation.best_delta);
    }

    #[test]
    fn conflict_repair_keeps_the_best_event_per_user() {
        // One user, two conflicting events; repair must keep the better.
        let m = SimMatrix::from_rows(&[vec![0.9], vec![0.7]]);
        let inst =
            Instance::from_matrix(m, vec![1, 1], vec![2], ConflictGraph::complete(2)).unwrap();
        let res = mincostflow(&inst);
        assert_eq!(res.arrangement.len(), 1);
        assert!(res.arrangement.contains(EventId(0), UserId(0)));
        // Relaxation had both: 1.6.
        assert!((res.relaxation.max_sum - 1.6).abs() < 1e-9);
    }

    #[test]
    fn all_zero_similarities_yield_empty_arrangement() {
        let m = SimMatrix::from_rows(&[vec![0.0, 0.0]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let res = mincostflow(&inst);
        assert!(res.arrangement.is_empty());
        assert_eq!(res.relaxation.best_delta, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let inst = toy::table1_instance();
        let a = mincostflow(&inst);
        let b = mincostflow(&inst);
        assert_eq!(a.arrangement, b.arrangement);
    }
}
