//! Local-search post-optimization (an extension beyond the paper).
//!
//! The paper's approximation algorithms leave a gap to the optimum
//! (Fig. 5c); its conclusion points at closing it. This module adds a
//! hill-climbing pass usable behind *any* of them: repeatedly apply the
//! best of three feasibility-preserving moves until a local optimum —
//!
//! - **add** — insert a feasible unmatched pair (Greedy-GEACC's output is
//!   maximal so this fires only after other moves open capacity);
//! - **upgrade-event** — replace `(v, u)` by `(v′, u)` with a higher
//!   similarity, keeping `u`'s other events;
//! - **upgrade-user** — replace `(v, u)` by `(v, u′)` with a higher
//!   similarity.
//!
//! Every accepted move strictly increases `MaxSum`, so termination is
//! guaranteed; feasibility is preserved move-by-move (and re-audited in
//! tests). The `local_search` ablation bench measures the gain over raw
//! Greedy-GEACC; on conflict-heavy instances the upgrades recover part of
//! what greedy's irrevocable early picks lost.

use crate::model::arrangement::Arrangement;
use crate::model::ids::{EventId, UserId};
use crate::Instance;

/// Configuration for [`improve`].
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchConfig {
    /// Upper bound on full improvement passes (a safety valve; passes
    /// stop earlier at the first pass with no accepted move).
    pub max_passes: usize,
    /// Minimum `MaxSum` gain for a move to be accepted — guards against
    /// cycling on floating-point noise.
    pub min_gain: f64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_passes: 32,
            min_gain: 1e-12,
        }
    }
}

/// Outcome of a local-search run.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// The (locally optimal) improved arrangement.
    pub arrangement: Arrangement,
    /// Number of accepted moves.
    pub moves: usize,
    /// Number of full passes executed.
    pub passes: usize,
}

/// Improve `arrangement` to a local optimum under the three moves.
pub fn improve(
    inst: &Instance,
    arrangement: Arrangement,
    config: LocalSearchConfig,
) -> LocalSearchResult {
    let mut current = arrangement;
    let mut moves = 0;
    let mut passes = 0;
    while passes < config.max_passes {
        passes += 1;
        let accepted = pass(inst, &mut current, config.min_gain);
        moves += accepted;
        if accepted == 0 {
            break;
        }
    }
    LocalSearchResult {
        arrangement: current,
        moves,
        passes,
    }
}

/// One pass: try every move site once; returns accepted-move count.
fn pass(inst: &Instance, current: &mut Arrangement, min_gain: f64) -> usize {
    let mut accepted = 0;

    // Upgrade moves over a snapshot of the current pairs (the arrangement
    // mutates under us; a stale pair is simply skipped).
    let pairs: Vec<(EventId, UserId)> = current.pairs().collect();
    for (v, u) in pairs {
        if !current.contains(v, u) {
            continue;
        }
        let old_sim = inst.similarity(v, u);

        // upgrade-event: best v′ for u strictly better than v.
        let mut best: Option<(EventId, f64)> = None;
        current.remove_pair(v, u, old_sim);
        for v2 in inst.events() {
            let sim2 = inst.similarity(v2, u);
            if sim2 > old_sim + min_gain
                && best.map_or(true, |(_, s)| sim2 > s)
                && current.can_add(inst, v2, u)
            {
                best = Some((v2, sim2));
            }
        }
        match best {
            Some((v2, sim2)) => {
                current.push_unchecked(v2, u, sim2);
                accepted += 1;
                continue;
            }
            None => current.push_unchecked(v, u, old_sim),
        }

        // upgrade-user: best u′ for v strictly better than u.
        let mut best: Option<(UserId, f64)> = None;
        current.remove_pair(v, u, old_sim);
        for u2 in inst.users() {
            let sim2 = inst.similarity(v, u2);
            if sim2 > old_sim + min_gain
                && best.map_or(true, |(_, s)| sim2 > s)
                && current.can_add(inst, v, u2)
            {
                best = Some((u2, sim2));
            }
        }
        match best {
            Some((u2, sim2)) => {
                current.push_unchecked(v, u2, sim2);
                accepted += 1;
            }
            None => current.push_unchecked(v, u, old_sim),
        }
    }

    // Fill: add every feasible unmatched pair (upgrades may have opened
    // capacity).
    for v in inst.events() {
        if current.attendees_of(v) >= inst.event_capacity(v) {
            continue;
        }
        for u in inst.users() {
            if current.try_add(inst, v, u).is_some() {
                accepted += 1;
            }
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{greedy, prune, random_v};
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_decreases_max_sum_and_stays_feasible() {
        let inst = toy::table1_instance();
        for seed in 0..10 {
            let start = random_v(&inst, &mut StdRng::seed_from_u64(seed));
            let before = start.max_sum();
            let res = improve(&inst, start, LocalSearchConfig::default());
            assert!(res.arrangement.max_sum() + 1e-12 >= before, "seed {seed}");
            assert!(res.arrangement.validate(&inst).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn improves_a_deliberately_bad_arrangement() {
        // v0 with u1 (0.3) when u0 (0.9) is free: upgrade-user fires.
        let m = SimMatrix::from_rows(&[vec![0.9, 0.3]]);
        let inst =
            crate::Instance::from_matrix(m, vec![1], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let mut bad = Arrangement::empty_for(&inst);
        bad.try_add(&inst, EventId(0), UserId(1)).unwrap();
        let res = improve(&inst, bad, LocalSearchConfig::default());
        assert!((res.arrangement.max_sum() - 0.9).abs() < 1e-12);
        assert!(res.moves >= 1);
    }

    #[test]
    fn local_optimum_is_a_fixed_point() {
        let inst = toy::table1_instance();
        let first = improve(&inst, greedy(&inst), LocalSearchConfig::default());
        let second = improve(
            &inst,
            first.arrangement.clone(),
            LocalSearchConfig::default(),
        );
        assert_eq!(second.moves, 0);
        assert_eq!(second.passes, 1);
        assert_eq!(first.arrangement, second.arrangement);
    }

    #[test]
    fn seeded_with_greedy_never_worse_than_greedy() {
        let inst = toy::table1_instance();
        let g = greedy(&inst);
        let g_sum = g.max_sum();
        let res = improve(&inst, g, LocalSearchConfig::default());
        assert!(res.arrangement.max_sum() + 1e-12 >= g_sum);
        // And never above the optimum.
        let opt = prune(&inst).arrangement.max_sum();
        assert!(res.arrangement.max_sum() <= opt + 1e-9);
    }

    #[test]
    fn empty_arrangement_gets_filled() {
        let inst = toy::table1_instance();
        let res = improve(
            &inst,
            Arrangement::empty_for(&inst),
            LocalSearchConfig::default(),
        );
        assert!(res.arrangement.max_sum() > 0.0);
        assert!(res.arrangement.validate(&inst).is_empty());
        // Fill alone reproduces a maximal arrangement; upgrades then act.
        let mut copy = res.arrangement.clone();
        for v in inst.events() {
            for u in inst.users() {
                assert!(copy.try_add(&inst, v, u).is_none());
            }
        }
    }

    #[test]
    fn pass_cap_limits_work() {
        let inst = toy::table1_instance();
        let res = improve(
            &inst,
            Arrangement::empty_for(&inst),
            LocalSearchConfig {
                max_passes: 1,
                min_gain: 1e-12,
            },
        );
        assert_eq!(res.passes, 1);
    }
}
