//! Incremental "next most-similar counterpart" streams.
//!
//! Greedy-GEACC consumes, for every event `v`, the users of positive
//! similarity in non-increasing `sim` order — and symmetrically for every
//! user — but typically only a short, capacity-bounded prefix of each
//! stream. Materializing all `|V|·|U|` candidate pairs up front would cost
//! gigabytes at the paper's scalability setting (|V| = 1000,
//! |U| = 100 000), so the default stream is *chunked*: each refill scans
//! the counterpart side once (`O(n·d)`, contiguous memory), selects the
//! next `chunk` candidates below the last yielded rank, and doubles
//! `chunk` for the next refill. Consuming `K` neighbours costs
//! `O(n·d·log K)` time and `O(K)` memory — the `σ(S)` the paper's
//! complexity analysis abstracts over, with linear-scan constants that
//! beat tree indexes at the paper's default d = 20 (see the
//! `index_ablation` bench).
//!
//! Streams order candidates by similarity descending, ties by id
//! ascending, and end at the first non-positive similarity (Definition 5
//! forbids matching `sim ≤ 0` pairs).

use crate::model::ids::{EventId, UserId};
use crate::parallel::{par_map, Threads};
use crate::Instance;

/// Rank key in the descending-similarity order: `a` precedes `b` iff
/// `a.sim > b.sim`, ties broken by smaller id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Rank {
    pub sim: f64,
    pub id: u32,
}

impl Rank {
    /// Whether `self` strictly precedes `other` in the stream order.
    #[inline]
    fn precedes(&self, other: &Rank) -> bool {
        self.sim > other.sim || (self.sim == other.sim && self.id < other.id)
    }
}

/// Initial refill size; doubles on every refill.
const INITIAL_CHUNK: usize = 8;

/// One direction's incremental stream (e.g. users for one event).
#[derive(Debug, Clone)]
pub(crate) struct ChunkedStream {
    /// Candidates for the current chunk, in *ascending* stream order so
    /// `pop()` yields the next one.
    buffer: Vec<Rank>,
    /// Rank of the last yielded candidate (refills continue strictly
    /// after it); `None` before the first yield.
    last: Option<Rank>,
    chunk: usize,
    exhausted: bool,
}

impl ChunkedStream {
    pub(crate) fn new() -> Self {
        ChunkedStream {
            buffer: Vec::new(),
            last: None,
            chunk: INITIAL_CHUNK,
            exhausted: false,
        }
    }

    /// A stream with its first chunk already selected from `sims`.
    ///
    /// Yields exactly the same sequence as a lazy stream — the first
    /// refill is a pure function of the similarity row — it just moves
    /// that refill's `O(n)` scan to construction time so
    /// [`NeighborOracle::prewarmed`] can run the scans in parallel.
    fn prefilled(sims: &[f64]) -> Self {
        let mut stream = ChunkedStream::new();
        stream.refill(sims);
        stream
    }

    /// Yield the next candidate, refilling from `sims` when the buffer
    /// runs dry. `sims[id]` is the similarity of candidate `id`.
    fn next(&mut self, sims: &[f64]) -> Option<Rank> {
        if let Some(r) = self.buffer.pop() {
            self.last = Some(r);
            return Some(r);
        }
        if self.exhausted {
            return None;
        }
        self.refill(sims);
        match self.buffer.pop() {
            Some(r) => {
                self.last = Some(r);
                Some(r)
            }
            None => {
                self.exhausted = true;
                None
            }
        }
    }

    /// Select the top-`chunk` candidates ranked strictly after `last`,
    /// keeping only positive similarities.
    fn refill(&mut self, sims: &[f64]) {
        debug_assert!(self.buffer.is_empty());
        // `buffer` doubles as the selection heap: a min-heap under stream
        // order (worst candidate at the root) capped at `chunk`.
        let cap = self.chunk;
        for (id, &sim) in sims.iter().enumerate() {
            if sim <= 0.0 {
                continue;
            }
            let r = Rank { sim, id: id as u32 };
            if let Some(last) = self.last {
                if !last.precedes(&r) {
                    continue;
                }
            }
            if self.buffer.len() < cap {
                self.buffer.push(r);
                if self.buffer.len() == cap {
                    // Heapify: min-heap by stream order (root = worst).
                    self.make_heap();
                }
            } else if r.precedes(&self.buffer[0]) {
                self.buffer[0] = r;
                self.sift_down(0);
            }
        }
        if self.buffer.len() < cap {
            // Fewer than `cap` survivors; not yet heapified.
            self.buffer
                .sort_by(|a, b| a.sim.total_cmp(&b.sim).then(b.id.cmp(&a.id)));
            // Ascending stream order = descending (sim, -id)… verify:
            // pop() must yield highest sim (lowest id on ties) first, so
            // sort worst-first: ascending sim, descending id.
        } else {
            // Heap holds the chunk's members; sort them worst-first.
            self.buffer
                .sort_by(|a, b| a.sim.total_cmp(&b.sim).then(b.id.cmp(&a.id)));
        }
        if self.buffer.len() < cap {
            self.exhausted = true;
        }
        self.chunk = self.chunk.saturating_mul(2);
    }

    fn make_heap(&mut self) {
        for i in (0..self.buffer.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    /// Min-heap under stream order: parent is preceded by (worse than)
    /// its children.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.buffer.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < n && self.buffer[worst].precedes(&self.buffer[l]) {
                worst = l;
            }
            if r < n && self.buffer[worst].precedes(&self.buffer[r]) {
                worst = r;
            }
            if worst == i {
                return;
            }
            self.buffer.swap(i, worst);
            i = worst;
        }
    }
}

/// Bidirectional neighbour oracle over an instance: every event streams
/// users, every user streams events.
///
/// Streams are created lazily by default ([`NeighborOracle::new`]); when
/// a consumer is known to touch most streams, [`NeighborOracle::prewarmed`]
/// builds every stream's first chunk up front on a scoped-thread pool.
/// Both constructors yield bit-identical streams.
#[derive(Debug, Clone)]
pub struct NeighborOracle<'a> {
    inst: &'a Instance,
    event_streams: Vec<Option<ChunkedStream>>,
    user_streams: Vec<Option<ChunkedStream>>,
    scratch: Vec<f64>,
}

impl<'a> NeighborOracle<'a> {
    /// An oracle whose streams materialize on first use.
    pub fn new(inst: &'a Instance) -> Self {
        NeighborOracle {
            inst,
            event_streams: vec![None; inst.num_events()],
            user_streams: vec![None; inst.num_users()],
            scratch: Vec::new(),
        }
    }

    /// An oracle with every stream's first chunk selected eagerly, the
    /// per-stream `O(n·d)` similarity scans spread over `threads`
    /// workers.
    ///
    /// Each stream's first refill depends only on its own similarity row
    /// or column, so the construction parallelizes embarrassingly and
    /// the resulting streams are identical to lazily-built ones at every
    /// thread count. Worth it when most streams will be consumed (e.g.
    /// Greedy-GEACC, which opens all `|V| + |U|` of them); for sparse
    /// access patterns prefer [`NeighborOracle::new`].
    pub fn prewarmed(inst: &'a Instance, threads: Threads) -> Self {
        let nv = inst.num_events();
        let nu = inst.num_users();
        let mut streams = par_map(threads, nv + nu, |i| {
            let mut sims = Vec::new();
            if i < nv {
                inst.similarity_row(EventId(i as u32), &mut sims);
            } else {
                inst.similarity_column(UserId((i - nv) as u32), &mut sims);
            }
            Some(ChunkedStream::prefilled(&sims))
        });
        let user_streams = streams.split_off(nv);
        NeighborOracle {
            inst,
            event_streams: streams,
            user_streams,
            scratch: Vec::new(),
        }
    }

    /// Next most-similar user for `v` (sim > 0), or `None` when exhausted.
    pub fn next_user_for_event(&mut self, v: EventId) -> Option<(UserId, f64)> {
        let stream = self.event_streams[v.index()].get_or_insert_with(ChunkedStream::new);
        if stream.buffer.is_empty() && !stream.exhausted {
            self.inst.similarity_row(v, &mut self.scratch);
        }
        stream.next(&self.scratch).map(|r| (UserId(r.id), r.sim))
    }

    /// Next most-similar event for `u` (sim > 0), or `None` when
    /// exhausted.
    pub fn next_event_for_user(&mut self, u: UserId) -> Option<(EventId, f64)> {
        let stream = self.user_streams[u.index()].get_or_insert_with(ChunkedStream::new);
        if stream.buffer.is_empty() && !stream.exhausted {
            self.inst.similarity_column(u, &mut self.scratch);
        }
        stream.next(&self.scratch).map(|r| (EventId(r.id), r.sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;

    fn instance(rows: &[Vec<f64>]) -> Instance {
        let nv = rows.len();
        let nu = rows[0].len();
        Instance::from_matrix(
            SimMatrix::from_rows(rows),
            vec![1; nv],
            vec![1; nu],
            ConflictGraph::empty(nv),
        )
        .unwrap()
    }

    #[test]
    fn event_stream_orders_by_similarity_desc() {
        let inst = instance(&[vec![0.2, 0.9, 0.5, 0.7]]);
        let mut o = NeighborOracle::new(&inst);
        let order: Vec<u32> = std::iter::from_fn(|| o.next_user_for_event(EventId(0)))
            .map(|(u, _)| u.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn ties_break_by_id_ascending() {
        let inst = instance(&[vec![0.5, 0.5, 0.5]]);
        let mut o = NeighborOracle::new(&inst);
        let order: Vec<u32> = std::iter::from_fn(|| o.next_user_for_event(EventId(0)))
            .map(|(u, _)| u.0)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn zero_similarity_candidates_are_never_yielded() {
        let inst = instance(&[vec![0.0, 0.4, 0.0]]);
        let mut o = NeighborOracle::new(&inst);
        assert_eq!(o.next_user_for_event(EventId(0)), Some((UserId(1), 0.4)));
        assert_eq!(o.next_user_for_event(EventId(0)), None);
        // Exhausted streams stay exhausted.
        assert_eq!(o.next_user_for_event(EventId(0)), None);
    }

    #[test]
    fn user_streams_traverse_events() {
        let inst = instance(&[vec![0.1], vec![0.9], vec![0.5]]);
        let mut o = NeighborOracle::new(&inst);
        let order: Vec<u32> = std::iter::from_fn(|| o.next_event_for_user(UserId(0)))
            .map(|(v, _)| v.0)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn streams_survive_many_refills() {
        // More candidates than several chunk doublings, with duplicates.
        let row: Vec<f64> = (0..100).map(|i| 0.01 + (i % 10) as f64 / 20.0).collect();
        let inst = instance(std::slice::from_ref(&row));
        let mut o = NeighborOracle::new(&inst);
        let mut got = Vec::new();
        while let Some((u, s)) = o.next_user_for_event(EventId(0)) {
            got.push((s, u.0));
        }
        assert_eq!(got.len(), 100);
        // Expected: sort by sim desc, id asc.
        let mut expected: Vec<(f64, u32)> = row
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        expected.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        assert_eq!(got, expected);
    }

    #[test]
    fn independent_streams_do_not_interfere() {
        let inst = instance(&[vec![0.9, 0.1], vec![0.2, 0.8]]);
        let mut o = NeighborOracle::new(&inst);
        assert_eq!(o.next_user_for_event(EventId(0)).unwrap().0, UserId(0));
        assert_eq!(o.next_user_for_event(EventId(1)).unwrap().0, UserId(1));
        assert_eq!(o.next_user_for_event(EventId(0)).unwrap().0, UserId(1));
        assert_eq!(o.next_user_for_event(EventId(1)).unwrap().0, UserId(0));
    }

    #[test]
    fn prewarmed_streams_match_lazy_streams() {
        // Big enough that par_map actually forks (n ≥ 32) and streams
        // need several refills.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|v| {
                (0..40)
                    .map(|u| ((v * 7 + u * 13) % 19) as f64 / 19.0)
                    .collect()
            })
            .collect();
        let inst = instance(&rows);
        for t in [1, 2, 4, 8] {
            let mut lazy = NeighborOracle::new(&inst);
            let mut warm = NeighborOracle::prewarmed(&inst, Threads::new(t));
            for v in inst.events() {
                loop {
                    let a = lazy.next_user_for_event(v);
                    let b = warm.next_user_for_event(v);
                    assert_eq!(a, b, "event {v:?}, threads {t}");
                    if a.is_none() {
                        break;
                    }
                }
            }
            for u in inst.users() {
                loop {
                    let a = lazy.next_event_for_user(u);
                    let b = warm.next_event_for_user(u);
                    assert_eq!(a, b, "user {u:?}, threads {t}");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn euclidean_model_streams_match_matrix_of_sims() {
        use crate::similarity::SimilarityModel;
        let mut b = Instance::builder(2, SimilarityModel::Euclidean { t: 10.0 });
        b.event(&[5.0, 5.0], 1);
        for i in 0..20 {
            b.user(&[(i % 10) as f64, (i / 2) as f64], 1);
        }
        let inst = b.build().unwrap();
        let mut o = NeighborOracle::new(&inst);
        let mut last = f64::INFINITY;
        let mut count = 0;
        while let Some((_, s)) = o.next_user_for_event(EventId(0)) {
            assert!(s <= last + 1e-15);
            assert!(s > 0.0);
            last = s;
            count += 1;
        }
        assert_eq!(count, 20); // all users have positive sim here
    }
}
