//! The five arrangement algorithms of the paper.
//!
//! | Algorithm | Function | Guarantee |
//! |---|---|---|
//! | Greedy-GEACC | [`greedy()`] | `1/(1 + max c_u)` |
//! | MinCostFlow-GEACC | [`mincostflow()`] | `1/max c_u` |
//! | Prune-GEACC | [`prune()`] | exact |
//! | Exhaustive | [`exhaustive`] | exact, no pruning |
//! | Random-V / Random-U | [`random_v`] / [`random_u`] | none (baselines) |
//!
//! The free functions above are the classic paper-facing entry points;
//! each one builds a [`CandidateGraph`][crate::engine::CandidateGraph]
//! and runs the corresponding `*_on` engine function
//! ([`greedy_on`], [`mincostflow_on`], [`prune_on`]) to completion.
//! Dynamic dispatch — picking an algorithm at runtime, budgets,
//! fallbacks, per-solver timing — lives in [`crate::engine`]
//! ([`solve_on`][crate::engine::solve_on] /
//! [`solve_instance`][crate::engine::solve_instance]).

pub mod bounds;
pub mod dp;
pub mod greedy;
pub mod localsearch;
pub mod mincostflow;
pub mod online;
pub mod oracle;
pub mod prune;
pub mod random;

pub use bounds::{optimality_gap, relaxation_upper_bound, trivial_upper_bound, GapReport};
pub use dp::{dp_state_space, exact_dp, DpTooLarge};
pub use greedy::{greedy, greedy_on, greedy_with, GreedyConfig};
pub use localsearch::{improve, LocalSearchConfig, LocalSearchResult};
pub use mincostflow::{
    mincostflow, mincostflow_on, mincostflow_with, McfConfig, McfResult, RelaxationInfo, SspHeap,
};
pub use online::{online_greedy, OnlineArranger, OnlineConfig};
pub use oracle::NeighborOracle;
pub use prune::{
    exhaustive, prune, prune_on, prune_with, BudgetedPrune, PruneConfig, PruneResult, SearchStats,
};
pub use random::{random_u, random_v};

/// Which algorithm to run, for callers that dispatch dynamically
/// (benchmark harness, CLI examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Greedy-GEACC.
    Greedy,
    /// MinCostFlow-GEACC (full Δ sweep).
    MinCostFlow,
    /// Prune-GEACC (exact; small instances only).
    Prune,
    /// Exhaustive search without pruning (exact; tiny instances only).
    Exhaustive,
    /// Capacity-vector DP (exact; extension — exponential in `|V|` only,
    /// immune to the similarity-concentration blowup of branch-and-bound).
    ExactDp,
    /// Random-V baseline with the given seed.
    RandomV { seed: u64 },
    /// Random-U baseline with the given seed.
    RandomU { seed: u64 },
    /// ALNS-GEACC (extension): adaptive large-neighborhood search with
    /// the given seed — destroy/repair anytime refinement, see
    /// [`crate::alns`].
    Alns { seed: u64 },
}

impl Algorithm {
    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Greedy => "Greedy-GEACC",
            Algorithm::MinCostFlow => "MinCostFlow-GEACC",
            Algorithm::Prune => "Prune-GEACC",
            Algorithm::Exhaustive => "Exhaustive",
            Algorithm::ExactDp => "Exact-DP",
            Algorithm::RandomV { .. } => "Random-V",
            Algorithm::RandomU { .. } => "Random-U",
            Algorithm::Alns { .. } => "ALNS-GEACC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Algorithm::Greedy.name(), "Greedy-GEACC");
        assert_eq!(Algorithm::RandomV { seed: 0 }.name(), "Random-V");
    }
}
