//! The five arrangement algorithms of the paper, plus a uniform
//! dispatcher.
//!
//! | Algorithm | Function | Guarantee |
//! |---|---|---|
//! | Greedy-GEACC | [`greedy`] | `1/(1 + max c_u)` |
//! | MinCostFlow-GEACC | [`mincostflow`] | `1/max c_u` |
//! | Prune-GEACC | [`prune`] | exact |
//! | Exhaustive | [`exhaustive`] | exact, no pruning |
//! | Random-V / Random-U | [`random_v`] / [`random_u`] | none (baselines) |

pub mod bounds;
pub mod dp;
pub mod greedy;
pub mod localsearch;
pub mod mincostflow;
pub mod online;
pub mod oracle;
pub mod prune;
pub mod random;

pub use bounds::{optimality_gap, relaxation_upper_bound, trivial_upper_bound, GapReport};
pub use dp::{exact_dp, DpTooLarge};
pub use greedy::{greedy, greedy_budgeted, greedy_with, GreedyConfig};
pub use localsearch::{improve, LocalSearchConfig, LocalSearchResult};
pub use mincostflow::{
    mincostflow, mincostflow_budgeted, mincostflow_with, McfConfig, McfResult, RelaxationInfo,
};
pub use online::{online_greedy, OnlineArranger, OnlineConfig};
pub use oracle::NeighborOracle;
pub use prune::{
    exhaustive, prune, prune_budgeted, prune_with, BudgetedPrune, PruneConfig, PruneResult,
    SearchStats,
};
pub use random::{random_u, random_v};

use crate::model::arrangement::Arrangement;
use crate::Instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which algorithm to run, for callers that dispatch dynamically
/// (benchmark harness, CLI examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Greedy-GEACC.
    Greedy,
    /// MinCostFlow-GEACC (full Δ sweep).
    MinCostFlow,
    /// Prune-GEACC (exact; small instances only).
    Prune,
    /// Exhaustive search without pruning (exact; tiny instances only).
    Exhaustive,
    /// Capacity-vector DP (exact; extension — exponential in `|V|` only,
    /// immune to the similarity-concentration blowup of branch-and-bound).
    ExactDp,
    /// Random-V baseline with the given seed.
    RandomV { seed: u64 },
    /// Random-U baseline with the given seed.
    RandomU { seed: u64 },
}

impl Algorithm {
    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Greedy => "Greedy-GEACC",
            Algorithm::MinCostFlow => "MinCostFlow-GEACC",
            Algorithm::Prune => "Prune-GEACC",
            Algorithm::Exhaustive => "Exhaustive",
            Algorithm::ExactDp => "Exact-DP",
            Algorithm::RandomV { .. } => "Random-V",
            Algorithm::RandomU { .. } => "Random-U",
        }
    }
}

/// Run `algorithm` on `instance` and return its arrangement.
pub fn solve(instance: &Instance, algorithm: Algorithm) -> Arrangement {
    match algorithm {
        Algorithm::Greedy => greedy(instance),
        Algorithm::MinCostFlow => mincostflow(instance).arrangement,
        Algorithm::Prune => prune(instance).arrangement,
        Algorithm::Exhaustive => exhaustive(instance).arrangement,
        Algorithm::ExactDp => exact_dp(instance)
            .expect("instance too large for the DP; use prune or an approximation"),
        Algorithm::RandomV { seed } => random_v(instance, &mut StdRng::seed_from_u64(seed)),
        Algorithm::RandomU { seed } => random_u(instance, &mut StdRng::seed_from_u64(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn solve_dispatches_every_algorithm_feasibly() {
        let inst = toy::table1_instance();
        for algo in [
            Algorithm::Greedy,
            Algorithm::MinCostFlow,
            Algorithm::Prune,
            Algorithm::Exhaustive,
            Algorithm::ExactDp,
            Algorithm::RandomV { seed: 1 },
            Algorithm::RandomU { seed: 1 },
        ] {
            let arr = solve(&inst, algo);
            assert!(
                arr.validate(&inst).is_empty(),
                "{} produced an infeasible arrangement",
                algo.name()
            );
        }
    }

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Algorithm::Greedy.name(), "Greedy-GEACC");
        assert_eq!(Algorithm::RandomV { seed: 0 }.name(), "Random-V");
    }
}
