//! Upper bounds on the optimal `MaxSum` — certificates without an exact
//! solve.
//!
//! The exact algorithms are exponential; an operator usually only needs
//! to know *how far* an approximation can be from optimal. Two bounds:
//!
//! - [`trivial_upper_bound`] — `O(|V|·|U|)` counting bound: each event
//!   contributes at most `c_v` pairs at its best similarity, each user at
//!   most `c_u` at theirs; both sums cap the optimum, take the smaller.
//!   (The event-side sum is exactly the `Σ s_v·c_v` quantity Prune-GEACC
//!   uses at its root.)
//! - [`relaxation_upper_bound`] — the conflict-free relaxation
//!   `MaxSum(M_∅)` via the min-cost-flow sweep (Corollary 1); tighter,
//!   at MinCostFlow-GEACC's phase-1 price.
//!
//! [`optimality_gap`] packages either bound with an arrangement's value
//! into the certificate ratio `MaxSum(M) / UB ≤ MaxSum(M) / OPT`.

use crate::algorithms::mincostflow::{mincostflow_with, McfConfig};
use crate::model::arrangement::Arrangement;
use crate::Instance;

/// The cheap counting bound (see module docs). Always ≥ the optimum.
pub fn trivial_upper_bound(inst: &Instance) -> f64 {
    let mut row = Vec::new();
    let mut event_side = 0.0;
    let mut best_for_user = vec![0.0f64; inst.num_users()];
    for v in inst.events() {
        inst.similarity_row(v, &mut row);
        let mut best = 0.0f64;
        for (u, &s) in row.iter().enumerate() {
            if s > best {
                best = s;
            }
            if s > best_for_user[u] {
                best_for_user[u] = s;
            }
        }
        event_side += best * inst.event_capacity(v) as f64;
    }
    let user_side: f64 = inst
        .users()
        .map(|u| best_for_user[u.index()] * inst.user_capacity(u) as f64)
        .sum();
    event_side.min(user_side)
}

/// The conflict-free relaxation value `MaxSum(M_∅)` (Corollary 1:
/// an upper bound on the constrained optimum). Cost: one incremental
/// min-cost-flow sweep.
pub fn relaxation_upper_bound(inst: &Instance) -> f64 {
    // Early-stop is exact for the bound (the sweep objective is concave).
    mincostflow_with(
        inst,
        McfConfig {
            early_stop: true,
            ..Default::default()
        },
    )
    .relaxation
    .max_sum
}

/// An arrangement's certified optimality interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapReport {
    /// The arrangement's `MaxSum` (a lower bound on the optimum).
    pub achieved: f64,
    /// The upper bound used.
    pub upper_bound: f64,
    /// `achieved / upper_bound` — the certified fraction of optimal
    /// (1.0 means provably optimal; 0/0 reports 1.0).
    pub certified_ratio: f64,
}

/// Certify `arrangement` against the relaxation bound (the tighter one).
pub fn optimality_gap(inst: &Instance, arrangement: &Arrangement) -> GapReport {
    let upper = relaxation_upper_bound(inst);
    let achieved = arrangement.max_sum();
    GapReport {
        achieved,
        upper_bound: upper,
        certified_ratio: if upper <= 0.0 {
            1.0
        } else {
            (achieved / upper).min(1.0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{greedy, prune};
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;

    #[test]
    fn both_bounds_dominate_the_true_optimum() {
        let inst = toy::table1_instance();
        let opt = prune(&inst).arrangement.max_sum();
        assert!(trivial_upper_bound(&inst) + 1e-9 >= opt);
        assert!(relaxation_upper_bound(&inst) + 1e-9 >= opt);
    }

    #[test]
    fn relaxation_is_tighter_than_trivial_on_the_toy() {
        let inst = toy::table1_instance();
        assert!(relaxation_upper_bound(&inst) <= trivial_upper_bound(&inst) + 1e-9);
    }

    #[test]
    fn relaxation_bound_matches_the_known_toy_value() {
        // Measured in the flow regression suite: MaxSum(M_∅) = 5.64.
        let inst = toy::table1_instance();
        assert!((relaxation_upper_bound(&inst) - 5.64).abs() < 1e-9);
    }

    #[test]
    fn gap_report_certifies_greedy_on_the_toy() {
        let inst = toy::table1_instance();
        let g = greedy(&inst);
        let gap = optimality_gap(&inst, &g);
        assert!((gap.achieved - toy::GREEDY_MAX_SUM).abs() < 1e-9);
        assert!((gap.upper_bound - 5.64).abs() < 1e-9);
        // 4.28 / 5.64 ≈ 0.759 — the certificate; true ratio is 4.28/4.39.
        assert!((gap.certified_ratio - 4.28 / 5.64).abs() < 1e-9);
        assert!(gap.certified_ratio <= 1.0);
    }

    #[test]
    fn without_conflicts_the_relaxation_certifies_mcf_as_optimal() {
        let m = SimMatrix::from_rows(&[vec![0.9, 0.1], vec![0.3, 0.8]]);
        let inst =
            Instance::from_matrix(m, vec![1, 1], vec![1, 1], ConflictGraph::empty(2)).unwrap();
        let mcf = crate::algorithms::mincostflow(&inst).arrangement;
        let gap = optimality_gap(&inst, &mcf);
        assert!((gap.certified_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_arrangement_certifies_zero() {
        let inst = toy::table1_instance();
        let gap = optimality_gap(&inst, &Arrangement::empty_for(&inst));
        assert_eq!(gap.achieved, 0.0);
        assert!(gap.certified_ratio < 0.01);
    }

    #[test]
    fn trivial_bound_uses_the_smaller_side() {
        // One high-capacity event, one low-capacity user: user side binds.
        let m = SimMatrix::from_rows(&[vec![1.0]]);
        let inst = Instance::from_matrix(m, vec![50], vec![1], ConflictGraph::empty(1)).unwrap();
        assert!((trivial_upper_bound(&inst) - 1.0).abs() < 1e-12);
    }
}
