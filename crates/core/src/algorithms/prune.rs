//! Prune-GEACC (Algorithms 3–4 of the paper): exact branch-and-bound,
//! sequential or parallel over scoped threads.
//!
//! The search enumerates the matched/unmatched state of every pair,
//! visiting events in non-increasing `s_v · c_v` order (`s_v` = the
//! similarity of `v`'s best user) and, within an event, users in
//! non-increasing similarity. Lemma 6 gives the upper bound that prunes a
//! subtree: the current partial `MaxSum`, plus `Σ s·c` over unvisited
//! events, plus the current pair's similarity times the event's remaining
//! capacity, cannot be exceeded by any completion. Greedy-GEACC seeds the
//! incumbent so pruning bites from the first recursion.
//!
//! ## Parallel execution and determinism
//!
//! With `PruneConfig::threads > 1` the top of the DFS is expanded
//! breadth-first into independent subtree tasks, which workers drain
//! from a shared queue while publishing the incumbent `MaxSum` through a
//! [`SharedBest`] (monotone CAS over the value's `f64` bits). The shared
//! incumbent is used *only* to prune — Lemma 6 pruning against any
//! feasible arrangement's value is sound, so stale reads cost work, not
//! correctness.
//!
//! The *result* is deterministic at every thread count:
//!
//! - **Value.** The descent test inflates the Lemma 6 bound by a
//!   relative slack covering floating-point accumulation error
//!   (`inflate`), making it a true upper bound on any completion's
//!   exact threaded sum. A subtree is pruned only when it provably
//!   contains no strict improvement, so the final `MaxSum` is
//!   `max(seed, M)` — `M` being the maximum over all complete leaves —
//!   regardless of exploration order. (The previous sequential-only
//!   revision pruned with an `EPS` tolerance in the opposite direction,
//!   which made the result order-dependent within `EPS`.)
//! - **Arrangement.** After the parallel phase fixes the optimal value,
//!   a sequential *certificate pass* re-descends only into subtrees
//!   whose inflated bound reaches that value and returns the first
//!   complete leaf attaining it in canonical DFS order — exactly the
//!   leaf the sequential search records. If no leaf beats the seed, the
//!   seed arrangement itself is returned, again matching the sequential
//!   path.
//!
//! [`SearchStats`] aggregates work counters across the frontier
//! expansion and all workers. Counters depend on incumbent-publication
//! timing and are therefore *not* deterministic across thread counts
//! (or runs, for `threads > 1`); only `MaxSum`, the arrangement, and
//! `max_depth` are. Fig. 6 uses the sequential path, whose stats are
//! reproducible.
//!
//! Complexity is exponential — the problem is NP-hard — so this is for
//! small instances (the paper uses `|V| = 5`, `|U| ≤ 15`).
//!
//! One deliberate deviation: Algorithm 4's feasibility test (its line 3)
//! omits `sim > 0`, but Definition 5 requires matched pairs to have
//! positive similarity; we enforce it. A zero-similarity pair adds
//! nothing to `MaxSum`, so the optimal *value* is unchanged — only
//! technically-infeasible optima are excluded.

use crate::algorithms::greedy::greedy_on;
use crate::engine::CandidateGraph;
use crate::model::arrangement::Arrangement;
use crate::model::ids::{EventId, UserId};
use crate::parallel::{SharedBest, Threads};
use crate::runtime::{BudgetMeter, StopReason};
use crate::Instance;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Relative slack by which [`inflate`] raises a Lemma 6 bound so it
/// upper-bounds any completion's floating-point sum. Partial sums are
/// threaded through the recursion (at most `|V|·|U|` additions of values
/// in `[0, 1]`), so the accumulated relative error is bounded by
/// `n · ε ≈ n · 2.2e-16`; `1e-11` covers every instance size the
/// exponential search can touch, with orders of magnitude to spare.
const BOUND_RELATIVE_SLACK: f64 = 1e-11;

/// A strict upper bound on the exact value of any completion below a
/// node with Lemma 6 bound `bound`, accounting for rounding in both the
/// bound's own arithmetic and the completion's running sum.
#[inline]
fn inflate(bound: f64) -> f64 {
    bound * (1.0 + BOUND_RELATIVE_SLACK)
}

/// Upper bound on frontier tasks created before the worker phase.
const MAX_FRONTIER_TASKS: usize = 512;

/// Upper bound on node expansions spent building the frontier.
const MAX_FRONTIER_EXPANSIONS: usize = 100_000;

/// Configuration for [`prune`].
#[derive(Debug, Clone, Copy)]
pub struct PruneConfig {
    /// Apply the Lemma 6 bound. `false` = the paper's exhaustive-search
    /// comparator (still exact, explores everything).
    pub enable_pruning: bool,
    /// Seed the incumbent with Greedy-GEACC's arrangement (Algorithm 3
    /// line 1). Ignored (treated as `false`) when pruning is disabled —
    /// the incumbent only matters as a bound.
    pub greedy_seed: bool,
    /// Worker budget. `Threads::single()` (the default) runs the
    /// classic sequential DFS; more workers split the search as
    /// described in the module docs. `MaxSum` and the arrangement are
    /// identical at every setting.
    pub threads: Threads,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            enable_pruning: true,
            greedy_seed: true,
            threads: Threads::single(),
        }
    }
}

/// Counters describing one branch-and-bound run (Fig. 6's metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Times the recursive `Search` procedure was entered (summed over
    /// frontier expansion and all workers when parallel).
    pub invocations: u64,
    /// Times the recursion reached the final pair and evaluated a
    /// complete matching.
    pub complete_searches: u64,
    /// Times the Lemma 6 bound cut a subtree.
    pub prunes: u64,
    /// Sum of the recursion depths (1-based pair index) at which prunes
    /// happened; divide by `prunes` for Fig. 6a's average.
    pub total_pruned_depth: u64,
    /// The deepest possible recursion, `|V| · |U|`.
    pub max_depth: u64,
}

impl SearchStats {
    /// Average recursion depth at which pruning took place (Fig. 6a).
    pub fn avg_pruned_depth(&self) -> f64 {
        if self.prunes == 0 {
            0.0
        } else {
            self.total_pruned_depth as f64 / self.prunes as f64
        }
    }

    fn absorb(&mut self, other: &SearchStats) {
        self.invocations += other.invocations;
        self.complete_searches += other.complete_searches;
        self.prunes += other.prunes;
        self.total_pruned_depth += other.total_pruned_depth;
    }
}

/// Result of the exact search.
#[derive(Debug, Clone)]
pub struct PruneResult {
    /// An optimal feasible arrangement.
    pub arrangement: Arrangement,
    /// Search counters.
    pub stats: SearchStats,
}

/// Result of a budget-bounded exact search ([`prune_on`]).
#[derive(Debug, Clone)]
pub struct BudgetedPrune {
    /// The arrangement: the proven optimum when `stopped` is `None`, the
    /// best feasible incumbent found before the budget tripped otherwise
    /// (at worst the greedy seed, never worse than it).
    pub result: PruneResult,
    /// Why the search stopped early, if it did.
    pub stopped: Option<StopReason>,
}

/// Run Prune-GEACC with default configuration (pruning + greedy seed,
/// sequential).
pub fn prune(inst: &Instance) -> PruneResult {
    prune_with(inst, PruneConfig::default())
}

/// The paper's exhaustive-search comparator: identical enumeration with
/// the bound disabled.
pub fn exhaustive(inst: &Instance) -> PruneResult {
    prune_with(
        inst,
        PruneConfig {
            enable_pruning: false,
            greedy_seed: false,
            ..PruneConfig::default()
        },
    )
}

/// Precomputed, read-only search state shared by every worker.
struct SearchContext<'a> {
    inst: &'a Instance,
    /// Per-event neighbour lists: users by similarity desc, id asc —
    /// the "j-NN of v" order of Algorithm 4. Zero-similarity users stay
    /// in the list (they occupy recursion depth, as in the paper's
    /// Fig. 6 depth accounting) but can never be matched.
    neighbors: Vec<Vec<(f64, u32)>>,
    /// L: events by `s_v · c_v` non-increasing (Algorithm 3 line 5).
    order: Vec<u32>,
    /// `suffix[i] = Σ_{k ≥ i} s·c` over L; the "unvisited events" term
    /// of Lemma 6 at position `i` is `suffix[i + 1]`.
    suffix: Vec<f64>,
    pruning: bool,
}

impl<'a> SearchContext<'a> {
    fn new(graph: &CandidateGraph<'a>, pruning: bool) -> Self {
        let inst = graph.instance();
        let nv = inst.num_events();
        let nu = inst.num_users();
        // Per-event list = the graph's sorted row (sim desc, id asc over
        // the positive pairs) followed by the zero-similarity users in
        // id-ascending order — exactly the fully-sorted dense row: every
        // zero ties at 0.0 and loses to every positive similarity.
        let mut neighbors: Vec<Vec<(f64, u32)>> = Vec::with_capacity(nv);
        let mut positive = vec![false; nu];
        for v in inst.events() {
            let (users, sims) = graph.sorted_row(v);
            let mut nbrs: Vec<(f64, u32)> = Vec::with_capacity(nu);
            nbrs.extend(sims.iter().zip(users.iter()).map(|(&s, &u)| (s, u)));
            for &u in users {
                positive[u as usize] = true;
            }
            for u in 0..nu as u32 {
                if !positive[u as usize] {
                    nbrs.push((0.0, u));
                }
            }
            for &u in users {
                positive[u as usize] = false;
            }
            neighbors.push(nbrs);
        }

        let mut order: Vec<u32> = (0..nv as u32).collect();
        let weight = |v: u32| neighbors[v as usize][0].0 * inst.event_capacity(EventId(v)) as f64;
        order.sort_by(|&a, &b| weight(b).total_cmp(&weight(a)).then(a.cmp(&b)));

        let mut suffix = vec![0.0; nv + 1];
        for i in (0..nv).rev() {
            suffix[i] = suffix[i + 1] + weight(order[i]);
        }

        SearchContext {
            inst,
            neighbors,
            order,
            suffix,
            pruning,
        }
    }
}

/// Run the exact search with explicit configuration.
pub fn prune_with(inst: &Instance, config: PruneConfig) -> PruneResult {
    let graph = CandidateGraph::build(inst, config.threads);
    prune_on(&graph, config, None).result
}

/// The engine entry point: the exact search over a prebuilt candidate
/// graph. `meter: None` is the classic meterless path; with `Some`, the
/// search ticks the meter once per `Search` invocation and, when a
/// limit trips, unwinds and returns the best feasible incumbent found
/// so far (the greedy seed at worst) together with the [`StopReason`].
///
/// Determinism: when `meter` carries a *node* budget the search is
/// forced onto the sequential path regardless of `config.threads`, so a
/// fixed node budget stops at the same tree node — and returns the same
/// incumbent — on every run. Wall-clock/memory/cancellation budgets keep
/// the configured parallelism and make no such promise. An unlimited
/// meter leaves the result bit-identical to [`prune_with`].
pub fn prune_on(
    graph: &CandidateGraph,
    config: PruneConfig,
    meter: Option<&BudgetMeter>,
) -> BudgetedPrune {
    let inst = graph.instance();
    let nv = inst.num_events();
    let nu = inst.num_users();
    let ctx = SearchContext::new(graph, config.enable_pruning);

    let incumbent = if config.enable_pruning && config.greedy_seed {
        greedy_on(graph, None).0
    } else {
        Arrangement::empty_for(inst)
    };

    let max_depth = (nv * nu) as u64;
    if nv == 0 || nu == 0 {
        return BudgetedPrune {
            result: PruneResult {
                arrangement: incumbent,
                stats: SearchStats {
                    max_depth,
                    ..SearchStats::default()
                },
            },
            stopped: None,
        };
    }
    // Node budgets promise a deterministic stopping node; worker
    // interleaving would break that, so they force the sequential path.
    let threads = if meter.is_some_and(BudgetMeter::has_node_budget) {
        Threads::single()
    } else {
        config.threads
    };
    if threads.get() == 1 {
        let mut search = Search::fresh(&ctx, &incumbent, None, meter);
        search.run(0, 0, 0.0);
        let mut stats = search.stats;
        stats.max_depth = max_depth;
        return BudgetedPrune {
            result: PruneResult {
                arrangement: search.best,
                stats,
            },
            stopped: search.stopped,
        };
    }
    prune_parallel(&ctx, threads, incumbent, max_depth, meter)
}

/// The parallel driver: frontier expansion → worker phase → certificate
/// pass (see module docs).
///
/// Budget/panic handling: every phase polls `meter`. Each worker returns
/// its best *arrangement together with its value* — never the value
/// alone — so a budget-stopped (or surviving) worker can only raise the
/// final incumbent if its certificate arrangement comes with it; the
/// [`SharedBest`] cell remains a pruning hint and is never read back
/// into the result. A worker panic is re-raised verbatim on the
/// unbudgeted path; under a meter it is absorbed as
/// [`StopReason::WorkerPanicked`] and the surviving workers' best
/// incumbent is returned.
fn prune_parallel(
    ctx: &SearchContext<'_>,
    threads: Threads,
    incumbent: Arrangement,
    max_depth: u64,
    meter: Option<&BudgetMeter>,
) -> BudgetedPrune {
    let seed_value = incumbent.max_sum();

    // Phase 0 (sequential, deterministic): expand the top of the DFS
    // breadth-first into independent subtree tasks. Leaves completed
    // during expansion feed the incumbent value directly.
    let target_tasks = (8 * threads.get()).clamp(32, MAX_FRONTIER_TASKS);
    let mut expansion = Search::fresh(ctx, &incumbent, None, meter);
    let mut queue: VecDeque<Task> = VecDeque::new();
    queue.push_back(Task {
        i: 0,
        j: 0,
        cur: 0.0,
        cap_v: expansion.cap_v.clone(),
        cap_u: expansion.cap_u.clone(),
        pairs: Vec::new(),
    });
    let mut expansions = 0;
    while queue.len() < target_tasks
        && expansions < MAX_FRONTIER_EXPANSIONS
        && expansion.stopped.is_none()
    {
        let Some(task) = queue.pop_front() else { break };
        expansion.expand_one(task, &mut queue);
        expansions += 1;
    }
    let mut stats = expansion.stats;
    stats.max_depth = max_depth;
    if expansion.stopped.is_some() {
        // The budget tripped before any worker started; the expansion's
        // local best (seeded with the incumbent) is the answer.
        return BudgetedPrune {
            result: PruneResult {
                arrangement: expansion.best,
                stats,
            },
            stopped: expansion.stopped,
        };
    }
    let tasks: Vec<Task> = queue.into();
    let mut best_value = expansion.best_sum;
    let mut best_arrangement = expansion.best;
    let mut stopped: Option<StopReason> = None;
    let mut worker_panicked = false;

    // Phase A (parallel): drain the task queue; publish incumbents
    // through the shared cell, prune against it.
    if !tasks.is_empty() {
        let shared = SharedBest::new(best_value);
        let cursor = AtomicUsize::new(0);
        let workers = threads.get().min(tasks.len());
        type WorkerReturn = (f64, Arrangement, SearchStats, Option<StopReason>);
        let worker_results: Vec<std::thread::Result<WorkerReturn>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (shared, cursor, tasks) = (&shared, &cursor, &tasks);
                    let incumbent = &incumbent;
                    scope.spawn(move || {
                        let mut search = Search::fresh(ctx, incumbent, Some(shared), meter);
                        loop {
                            if search.stopped.is_some() {
                                break;
                            }
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(idx) else { break };
                            search.run_task(task);
                        }
                        (search.best_sum, search.best, search.stats, search.stopped)
                    })
                })
                .collect();
            // Join every handle (panics included) so no payload is
            // left to poison the scope itself.
            handles.into_iter().map(|h| h.join()).collect()
        });
        for result in worker_results {
            match result {
                Ok((value, arrangement, worker_stats, worker_stopped)) => {
                    stats.absorb(&worker_stats);
                    if value > best_value {
                        best_value = value;
                        best_arrangement = arrangement;
                    }
                    stopped = stopped.or(worker_stopped);
                }
                Err(payload) => {
                    if meter.is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    worker_panicked = true;
                }
            }
        }
    }

    // The meter's latched reason is canonical (it is the limit that
    // actually tripped first); a panic without a tripped limit reports
    // as WorkerPanicked.
    let stopped = meter
        .and_then(|m| m.stop_reason())
        .or(stopped)
        .or(worker_panicked.then_some(StopReason::WorkerPanicked));
    if stopped.is_some() {
        // Incomplete search: no certificate pass (the optimum is not
        // fixed). Return the best incumbent whose arrangement we hold.
        return BudgetedPrune {
            result: PruneResult {
                arrangement: best_arrangement,
                stats,
            },
            stopped,
        };
    }

    // Phase B (sequential, deterministic): recover the canonical optimal
    // arrangement — the first leaf in DFS order attaining `best_value`.
    // Skipped when nothing beat the seed; its work is not added to the
    // stats (it re-certifies, it does not search).
    if best_value > seed_value {
        let mut certificate = Search::fresh(ctx, &incumbent, None, meter);
        certificate.target = Some(best_value);
        certificate.run(0, 0, 0.0);
        if certificate.stopped.is_some() {
            // A wall-clock budget expired mid-certificate: the workers'
            // arrangement has the same value, just a non-canonical
            // tie-break. Report the stop honestly.
            return BudgetedPrune {
                result: PruneResult {
                    arrangement: best_arrangement,
                    stats,
                },
                stopped: certificate.stopped,
            };
        }
        assert!(
            certificate.done,
            "certificate pass must rediscover the optimal leaf (value {best_value})"
        );
        debug_assert_eq!(certificate.best_sum.to_bits(), best_value.to_bits());
        BudgetedPrune {
            result: PruneResult {
                arrangement: certificate.best,
                stats,
            },
            stopped: None,
        }
    } else {
        BudgetedPrune {
            result: PruneResult {
                arrangement: incumbent,
                stats,
            },
            stopped: None,
        }
    }
}

/// A suspended `run(i, j, cur)` call: the pair position about to be
/// enumerated plus the mutable state accumulated above it.
#[derive(Debug, Clone)]
struct Task {
    i: usize,
    j: usize,
    cur: f64,
    cap_v: Vec<u32>,
    cap_u: Vec<u32>,
    pairs: Vec<(EventId, UserId)>,
}

struct Search<'a> {
    ctx: &'a SearchContext<'a>,
    cap_v: Vec<u32>,
    cap_u: Vec<u32>,
    current: Arrangement,
    /// Exact `MaxSum` of the best arrangement this search has seen. Kept
    /// separately from `best.max_sum()` and compared against the
    /// recursion's *threaded* partial sum: backtracking by
    /// `add x; … ; subtract x` is not exact in floating point, and over
    /// billions of search nodes the cached sum in `current` drifts
    /// enough to flip bound comparisons (this was a real observed bug —
    /// prune and exhaustive disagreed on the optimum of a d = 2
    /// instance after ~10⁹ nodes).
    best_sum: f64,
    best: Arrangement,
    stats: SearchStats,
    /// Globally best incumbent, published by other workers. Read for
    /// pruning only — see the module docs' safety argument.
    shared: Option<&'a SharedBest>,
    /// Certificate mode: descend only where the inflated bound reaches
    /// this value and stop at the first complete leaf attaining it.
    target: Option<f64>,
    /// Set when certificate mode found its leaf; unwinds the recursion.
    done: bool,
    /// Budget ledger, ticked once per `Search` invocation. `None` (the
    /// unbudgeted entry points) costs nothing on the hot path.
    meter: Option<&'a BudgetMeter>,
    /// Set when the meter tripped; unwinds the recursion like `done`,
    /// leaving `best`/`best_sum` as the incumbent to return.
    stopped: Option<StopReason>,
}

impl<'a> Search<'a> {
    fn fresh(
        ctx: &'a SearchContext<'a>,
        incumbent: &Arrangement,
        shared: Option<&'a SharedBest>,
        meter: Option<&'a BudgetMeter>,
    ) -> Self {
        let inst = ctx.inst;
        Search {
            ctx,
            cap_v: inst.events().map(|v| inst.event_capacity(v)).collect(),
            cap_u: inst.users().map(|u| inst.user_capacity(u)).collect(),
            current: Arrangement::empty_for(inst),
            best_sum: incumbent.max_sum(),
            best: incumbent.clone(),
            stats: SearchStats::default(),
            shared,
            target: None,
            done: false,
            meter,
            stopped: None,
        }
    }

    /// The best incumbent visible to this search's bound test.
    #[inline]
    fn visible_best(&self) -> f64 {
        match self.shared {
            Some(shared) => self.best_sum.max(shared.get()),
            None => self.best_sum,
        }
    }

    /// Whether the bound test allows descending into a subtree with
    /// Lemma 6 bound `bound`.
    #[inline]
    fn may_descend(&self, bound: f64) -> bool {
        if !self.ctx.pruning && self.target.is_none() {
            return true;
        }
        match self.target {
            // Certificate: any subtree that can attain the target.
            Some(target) => inflate(bound) >= target,
            // Search: any subtree that can strictly improve.
            None => inflate(bound) > self.visible_best(),
        }
    }

    /// 1-based global recursion depth of pair `(i, j)` — the paper's
    /// Fig. 6a unit.
    fn depth(&self, i: usize, j: usize) -> u64 {
        (i * self.ctx.inst.num_users() + j + 1) as u64
    }

    /// Resume this search at a suspended frontier task.
    fn run_task(&mut self, task: &Task) {
        self.cap_v.copy_from_slice(&task.cap_v);
        self.cap_u.copy_from_slice(&task.cap_u);
        self.current = Arrangement::empty_for(self.ctx.inst);
        for &(v, u) in &task.pairs {
            self.current
                .push_unchecked(v, u, self.ctx.inst.similarity(v, u));
        }
        self.run(task.i, task.j, task.cur);
    }

    /// Algorithm 4: enumerate both states of the pair at position
    /// `(i, j)` — event `L[i]`, its `j`-th nearest user. `cur` is the
    /// exact partial `MaxSum` of the visited pairs, threaded through the
    /// recursion (never recovered by subtraction — see `best_sum`).
    fn run(&mut self, i: usize, j: usize, cur: f64) {
        if self.done || self.stopped.is_some() {
            return;
        }
        if let Some(meter) = self.meter {
            if let Some(reason) = meter.tick() {
                self.stopped = Some(reason);
                return;
            }
        }
        self.stats.invocations += 1;
        let v = EventId(self.ctx.order[i]);
        let (sim, uid) = self.ctx.neighbors[v.index()][j];
        let u = UserId(uid);

        let feasible = sim > 0.0
            && self.cap_v[v.index()] > 0
            && self.cap_u[u.index()] > 0
            && !self
                .ctx
                .inst
                .conflicts()
                .conflicts_with_any(v, self.current.events_of(u));
        if feasible {
            // Matched state (lines 4–19).
            self.current.push_unchecked(v, u, sim);
            self.cap_v[v.index()] -= 1;
            self.cap_u[u.index()] -= 1;
            self.advance(i, j, cur + sim);
            self.cap_v[v.index()] += 1;
            self.cap_u[u.index()] += 1;
            self.current.remove_pair(v, u, sim);
        }
        // Unmatched state (line 20).
        self.advance(i, j, cur);
    }

    /// Lines 6–17: move to the next pair (or finish), applying the
    /// bound before each descent.
    fn advance(&mut self, i: usize, j: usize, cur: f64) {
        if self.done || self.stopped.is_some() {
            return;
        }
        match self.step(i, j, cur) {
            Step::Complete => self.complete(cur),
            Step::Descend { i, j } => self.run(i, j, cur),
            Step::Pruned => {}
        }
    }

    /// The position transition shared by recursive descent and frontier
    /// expansion: where does the search go after finishing pair
    /// `(i, j)` with partial sum `cur`? Prune accounting happens here.
    fn step(&mut self, i: usize, j: usize, cur: f64) -> Step {
        let v = EventId(self.ctx.order[i]);
        let last_j = self.ctx.inst.num_users() - 1;
        let (next_i, next_j, bound) = if j == last_j || self.cap_v[v.index()] == 0 {
            // Done with this event; next event or complete.
            if i == self.ctx.order.len() - 1 {
                return Step::Complete;
            }
            (i + 1, 0, cur + self.ctx.suffix[i + 1])
        } else {
            let (next_sim, _) = self.ctx.neighbors[v.index()][j + 1];
            let bound = cur + self.ctx.suffix[i + 1] + next_sim * self.cap_v[v.index()] as f64;
            (i, j + 1, bound)
        };
        if self.may_descend(bound) {
            Step::Descend {
                i: next_i,
                j: next_j,
            }
        } else {
            self.stats.prunes += 1;
            self.stats.total_pruned_depth += self.depth(next_i, next_j);
            Step::Pruned
        }
    }

    /// A complete matching with exact value `cur` was reached.
    fn complete(&mut self, cur: f64) {
        self.stats.complete_searches += 1;
        match self.target {
            Some(target) => {
                if cur >= target {
                    self.best_sum = cur;
                    self.best = self.rebuild_current();
                    self.done = true;
                }
            }
            None => {
                if cur > self.visible_best() {
                    self.best_sum = cur;
                    self.best = self.rebuild_current();
                }
                if let Some(shared) = self.shared {
                    shared.offer(cur);
                }
            }
        }
    }

    /// Frontier expansion: enumerate the node `(task.i, task.j)` exactly
    /// as [`Search::run`] would, but emit the descents as new tasks
    /// instead of recursing. Completions and prunes are recorded
    /// normally (against this search's local, deterministic incumbent).
    fn expand_one(&mut self, task: Task, out: &mut VecDeque<Task>) {
        if let Some(meter) = self.meter {
            if let Some(reason) = meter.tick() {
                self.stopped = Some(reason);
                return;
            }
        }
        self.stats.invocations += 1;
        let Task {
            i,
            j,
            cur,
            mut cap_v,
            mut cap_u,
            mut pairs,
        } = task;
        let v = EventId(self.ctx.order[i]);
        let (sim, uid) = self.ctx.neighbors[v.index()][j];
        let u = UserId(uid);

        // Mirror of the feasibility test in `run`, over task state. The
        // conflict check scans the task's matched pairs (few at frontier
        // depth) instead of an `Arrangement`.
        let events_of_u: Vec<EventId> = pairs
            .iter()
            .filter(|&&(_, pu)| pu == u)
            .map(|&(pv, _)| pv)
            .collect();
        let feasible = sim > 0.0
            && cap_v[v.index()] > 0
            && cap_u[u.index()] > 0
            && !self
                .ctx
                .inst
                .conflicts()
                .conflicts_with_any(v, &events_of_u);
        if feasible {
            cap_v[v.index()] -= 1;
            cap_u[u.index()] -= 1;
            pairs.push((v, u));
            self.emit(i, j, cur + sim, &cap_v, &cap_u, &pairs, out);
            pairs.pop();
            cap_v[v.index()] += 1;
            cap_u[u.index()] += 1;
        }
        self.emit(i, j, cur, &cap_v, &cap_u, &pairs, out);
    }

    /// Task-state counterpart of [`Search::advance`].
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        i: usize,
        j: usize,
        cur: f64,
        cap_v: &[u32],
        cap_u: &[u32],
        pairs: &[(EventId, UserId)],
        out: &mut VecDeque<Task>,
    ) {
        // `step` reads event capacity from `self.cap_v`; shadow it with
        // the task's state for the duration of the transition.
        let saved = std::mem::replace(&mut self.cap_v, cap_v.to_vec());
        let step = self.step(i, j, cur);
        self.cap_v = saved;
        match step {
            Step::Complete => {
                // Completions at frontier depth carry their pairs in the
                // task; rebuild the arrangement from them.
                self.stats.complete_searches += 1;
                if cur > self.best_sum {
                    self.best_sum = cur;
                    let mut snapshot = Arrangement::empty_for(self.ctx.inst);
                    for &(v, u) in pairs {
                        snapshot.push_unchecked(v, u, self.ctx.inst.similarity(v, u));
                    }
                    self.best = snapshot;
                }
            }
            Step::Descend { i, j } => out.push_back(Task {
                i,
                j,
                cur,
                cap_v: cap_v.to_vec(),
                cap_u: cap_u.to_vec(),
                pairs: pairs.to_vec(),
            }),
            Step::Pruned => {}
        }
    }

    /// Snapshot `current` with a freshly accumulated `MaxSum` (the cached
    /// sum inside `current` has backtracking drift; rebuilding from the
    /// instance's similarities is exact for the ≤ `Σc_u` pairs involved).
    fn rebuild_current(&self) -> Arrangement {
        let mut snapshot = Arrangement::empty_for(self.ctx.inst);
        for (v, u) in self.current.pairs() {
            snapshot.push_unchecked(v, u, self.ctx.inst.similarity(v, u));
        }
        snapshot
    }
}

/// Where the search goes after finishing a pair position.
enum Step {
    Complete,
    Descend { i: usize, j: usize },
    Pruned,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;

    #[test]
    fn finds_the_paper_optimum_on_the_toy() {
        let inst = toy::table1_instance();
        let res = prune(&inst);
        assert!(
            (res.arrangement.max_sum() - toy::OPTIMAL_MAX_SUM).abs() < 1e-9,
            "got {}",
            res.arrangement.max_sum()
        );
        assert!(res.arrangement.validate(&inst).is_empty());
    }

    #[test]
    fn exhaustive_agrees_with_prune() {
        let inst = toy::table1_instance();
        let a = prune(&inst);
        let b = exhaustive(&inst);
        assert!((a.arrangement.max_sum() - b.arrangement.max_sum()).abs() < 1e-9);
    }

    #[test]
    fn pruning_reduces_work() {
        let inst = toy::table1_instance();
        let pruned = prune(&inst);
        let full = exhaustive(&inst);
        assert!(pruned.stats.invocations < full.stats.invocations);
        assert!(pruned.stats.complete_searches <= full.stats.complete_searches);
        assert!(pruned.stats.prunes > 0);
        assert_eq!(full.stats.prunes, 0);
        assert!(pruned.stats.avg_pruned_depth() > 0.0);
        assert!(pruned.stats.avg_pruned_depth() <= pruned.stats.max_depth as f64);
    }

    #[test]
    fn max_depth_is_v_times_u() {
        let inst = toy::table1_instance();
        assert_eq!(prune(&inst).stats.max_depth, 15);
    }

    #[test]
    fn dominates_both_approximations() {
        let inst = toy::table1_instance();
        let opt = prune(&inst).arrangement.max_sum();
        assert!(opt >= crate::algorithms::greedy::greedy(&inst).max_sum() - 1e-9);
        assert!(
            opt >= crate::algorithms::mincostflow::mincostflow(&inst)
                .arrangement
                .max_sum()
                - 1e-9
        );
    }

    #[test]
    fn single_pair_instance() {
        let m = SimMatrix::from_rows(&[vec![0.4]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1], ConflictGraph::empty(1)).unwrap();
        let res = prune(&inst);
        assert_eq!(res.arrangement.len(), 1);
        assert!((res.arrangement.max_sum() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn complete_conflicts_reduce_to_assignment() {
        // Every event conflicts: each user attends ≤ 1 event; the optimum
        // is the best per-user column pick subject to event capacities.
        let m = SimMatrix::from_rows(&[vec![0.9, 0.1], vec![0.8, 0.7]]);
        let inst =
            Instance::from_matrix(m, vec![1, 1], vec![2, 2], ConflictGraph::complete(2)).unwrap();
        let res = prune(&inst);
        // Best: {v0,u0}=0.9 + {v1,u1}=0.7 = 1.6.
        assert!((res.arrangement.max_sum() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn greedy_seed_never_changes_the_optimum() {
        let inst = toy::table1_instance();
        let with = prune_with(
            &inst,
            PruneConfig {
                enable_pruning: true,
                greedy_seed: true,
                ..PruneConfig::default()
            },
        );
        let without = prune_with(
            &inst,
            PruneConfig {
                enable_pruning: true,
                greedy_seed: false,
                ..PruneConfig::default()
            },
        );
        assert!((with.arrangement.max_sum() - without.arrangement.max_sum()).abs() < 1e-9);
        // The seed can only help pruning.
        assert!(with.stats.invocations <= without.stats.invocations);
    }

    #[test]
    fn zero_capacity_event_contributes_nothing() {
        let m = SimMatrix::from_rows(&[vec![0.9], vec![0.8]]);
        let inst = Instance::from_matrix(m, vec![0, 1], vec![1], ConflictGraph::empty(2)).unwrap();
        let res = prune(&inst);
        assert_eq!(res.arrangement.len(), 1);
        assert!((res.arrangement.max_sum() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit_on_the_toy() {
        let inst = toy::table1_instance();
        let sequential = prune(&inst);
        for threads in [2, 3, 4, 8] {
            let parallel = prune_with(
                &inst,
                PruneConfig {
                    threads: Threads::new(threads),
                    ..PruneConfig::default()
                },
            );
            assert_eq!(
                parallel.arrangement.max_sum().to_bits(),
                sequential.arrangement.max_sum().to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                parallel.arrangement, sequential.arrangement,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_exhaustive_matches_sequential() {
        let inst = toy::table1_instance();
        let sequential = exhaustive(&inst);
        let parallel = prune_with(
            &inst,
            PruneConfig {
                enable_pruning: false,
                greedy_seed: false,
                threads: Threads::new(4),
            },
        );
        assert_eq!(
            parallel.arrangement.max_sum().to_bits(),
            sequential.arrangement.max_sum().to_bits()
        );
        assert_eq!(parallel.arrangement, sequential.arrangement);
    }

    #[test]
    fn parallel_handles_degenerate_instances() {
        // Single pair: the frontier collapses to (almost) nothing.
        let m = SimMatrix::from_rows(&[vec![0.4]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1], ConflictGraph::empty(1)).unwrap();
        let res = prune_with(
            &inst,
            PruneConfig {
                threads: Threads::new(8),
                ..PruneConfig::default()
            },
        );
        assert_eq!(res.arrangement.len(), 1);
        assert!((res.arrangement.max_sum() - 0.4).abs() < 1e-12);

        // All-zero similarities: optimum is the empty arrangement.
        let m = SimMatrix::from_rows(&[vec![0.0, 0.0]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let res = prune_with(
            &inst,
            PruneConfig {
                threads: Threads::new(4),
                ..PruneConfig::default()
            },
        );
        assert!(res.arrangement.is_empty());
    }
}
