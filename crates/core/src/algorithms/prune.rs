//! Prune-GEACC (Algorithms 3–4 of the paper): exact branch-and-bound.
//!
//! The search enumerates the matched/unmatched state of every pair,
//! visiting events in non-increasing `s_v · c_v` order (`s_v` = the
//! similarity of `v`'s best user) and, within an event, users in
//! non-increasing similarity. Lemma 6 gives the upper bound that prunes a
//! subtree: the current partial `MaxSum`, plus `Σ s·c` over unvisited
//! events, plus the current pair's similarity times the event's remaining
//! capacity, cannot be exceeded by any completion. Greedy-GEACC seeds the
//! incumbent so pruning bites from the first recursion.
//!
//! [`SearchStats`] mirrors the four panels of the paper's Fig. 6: average
//! recursion depth at prune time, running time (measured by the bench
//! harness), number of complete searches, and number of `Search`
//! invocations. Disabling `enable_pruning` yields the "exhaustive search
//! without pruning" comparator of that figure.
//!
//! Complexity is exponential — the problem is NP-hard — so this is for
//! small instances (the paper uses `|V| = 5`, `|U| ≤ 15`).
//!
//! One deliberate deviation: Algorithm 4's feasibility test (its line 3)
//! omits `sim > 0`, but Definition 5 requires matched pairs to have
//! positive similarity; we enforce it. A zero-similarity pair adds
//! nothing to `MaxSum`, so the optimal *value* is unchanged — only
//! technically-infeasible optima are excluded.

use crate::algorithms::greedy::greedy;
use crate::model::arrangement::Arrangement;
use crate::model::ids::{EventId, UserId};
use crate::Instance;

/// Slack for the strict `bound > incumbent` descent test.
const EPS: f64 = 1e-12;

/// Configuration for [`prune`].
#[derive(Debug, Clone, Copy)]
pub struct PruneConfig {
    /// Apply the Lemma 6 bound. `false` = the paper's exhaustive-search
    /// comparator (still exact, explores everything).
    pub enable_pruning: bool,
    /// Seed the incumbent with Greedy-GEACC's arrangement (Algorithm 3
    /// line 1). Ignored (treated as `false`) when pruning is disabled —
    /// the incumbent only matters as a bound.
    pub greedy_seed: bool,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig { enable_pruning: true, greedy_seed: true }
    }
}

/// Counters describing one branch-and-bound run (Fig. 6's metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Times the recursive `Search` procedure was entered.
    pub invocations: u64,
    /// Times the recursion reached the final pair and evaluated a
    /// complete matching.
    pub complete_searches: u64,
    /// Times the Lemma 6 bound cut a subtree.
    pub prunes: u64,
    /// Sum of the recursion depths (1-based pair index) at which prunes
    /// happened; divide by `prunes` for Fig. 6a's average.
    pub total_pruned_depth: u64,
    /// The deepest possible recursion, `|V| · |U|`.
    pub max_depth: u64,
}

impl SearchStats {
    /// Average recursion depth at which pruning took place (Fig. 6a).
    pub fn avg_pruned_depth(&self) -> f64 {
        if self.prunes == 0 {
            0.0
        } else {
            self.total_pruned_depth as f64 / self.prunes as f64
        }
    }
}

/// Result of the exact search.
#[derive(Debug, Clone)]
pub struct PruneResult {
    /// An optimal feasible arrangement.
    pub arrangement: Arrangement,
    /// Search counters.
    pub stats: SearchStats,
}

/// Run Prune-GEACC with default configuration (pruning + greedy seed).
pub fn prune(inst: &Instance) -> PruneResult {
    prune_with(inst, PruneConfig::default())
}

/// The paper's exhaustive-search comparator: identical enumeration with
/// the bound disabled.
pub fn exhaustive(inst: &Instance) -> PruneResult {
    prune_with(inst, PruneConfig { enable_pruning: false, greedy_seed: false })
}

/// Run the exact search with explicit configuration.
pub fn prune_with(inst: &Instance, config: PruneConfig) -> PruneResult {
    let nv = inst.num_events();
    let nu = inst.num_users();

    // Per-event neighbour lists: users by similarity desc, id asc —
    // the "j-NN of v" order of Algorithm 4. Zero-similarity users stay in
    // the list (they occupy recursion depth, as in the paper's Fig. 6
    // depth accounting) but can never be matched.
    let mut row = Vec::new();
    let mut neighbors: Vec<Vec<(f64, u32)>> = Vec::with_capacity(nv);
    for v in inst.events() {
        inst.similarity_row(v, &mut row);
        let mut nbrs: Vec<(f64, u32)> =
            row.iter().enumerate().map(|(u, &s)| (s, u as u32)).collect();
        nbrs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        neighbors.push(nbrs);
    }

    // L: events by s_v · c_v non-increasing (Algorithm 3 line 5).
    let mut order: Vec<u32> = (0..nv as u32).collect();
    let weight = |v: u32| {
        neighbors[v as usize][0].0 * inst.event_capacity(EventId(v)) as f64
    };
    order.sort_by(|&a, &b| weight(b).total_cmp(&weight(a)).then(a.cmp(&b)));

    // suffix[i] = Σ_{k ≥ i} s·c over L; sum_remain at position i is
    // suffix[i + 1].
    let mut suffix = vec![0.0; nv + 1];
    for i in (0..nv).rev() {
        suffix[i] = suffix[i + 1] + weight(order[i]);
    }

    let incumbent = if config.enable_pruning && config.greedy_seed {
        greedy(inst)
    } else {
        Arrangement::empty_for(inst)
    };

    let mut search = Search {
        inst,
        neighbors: &neighbors,
        order: &order,
        suffix: &suffix,
        pruning: config.enable_pruning,
        cap_v: inst.events().map(|v| inst.event_capacity(v)).collect(),
        cap_u: inst.users().map(|u| inst.user_capacity(u)).collect(),
        current: Arrangement::empty_for(inst),
        best_sum: incumbent.max_sum(),
        best: incumbent,
        stats: SearchStats {
            max_depth: (nv * nu) as u64,
            ..SearchStats::default()
        },
    };
    if nv > 0 && nu > 0 {
        search.run(0, 0, 0.0);
    }
    PruneResult { arrangement: search.best, stats: search.stats }
}

struct Search<'a> {
    inst: &'a Instance,
    neighbors: &'a [Vec<(f64, u32)>],
    order: &'a [u32],
    suffix: &'a [f64],
    pruning: bool,
    cap_v: Vec<u32>,
    cap_u: Vec<u32>,
    current: Arrangement,
    /// Exact `MaxSum` of the incumbent. Kept separately from
    /// `best.max_sum()` and compared against the recursion's *threaded*
    /// partial sum: backtracking by `add x; … ; subtract x` is not exact
    /// in floating point, and over billions of search nodes the cached
    /// sum in `current` drifts enough to flip bound comparisons (this
    /// was a real observed bug — prune and exhaustive disagreed on the
    /// optimum of a d = 2 instance after ~10⁹ nodes).
    best_sum: f64,
    best: Arrangement,
    stats: SearchStats,
}

impl Search<'_> {
    /// 1-based global recursion depth of pair `(i, j)` — the paper's
    /// Fig. 6a unit.
    fn depth(&self, i: usize, j: usize) -> u64 {
        (i * self.inst.num_users() + j + 1) as u64
    }

    /// Algorithm 4: enumerate both states of the pair at position
    /// `(i, j)` — event `L[i]`, its `j`-th nearest user. `cur` is the
    /// exact partial `MaxSum` of the visited pairs, threaded through the
    /// recursion (never recovered by subtraction — see `best_sum`).
    fn run(&mut self, i: usize, j: usize, cur: f64) {
        self.stats.invocations += 1;
        let v = EventId(self.order[i]);
        let (sim, uid) = self.neighbors[v.index()][j];
        let u = UserId(uid);

        let feasible = sim > 0.0
            && self.cap_v[v.index()] > 0
            && self.cap_u[u.index()] > 0
            && !self.inst.conflicts().conflicts_with_any(v, self.current.events_of(u));
        if feasible {
            // Matched state (lines 4–19).
            self.current.push_unchecked(v, u, sim);
            self.cap_v[v.index()] -= 1;
            self.cap_u[u.index()] -= 1;
            self.advance(i, j, cur + sim);
            self.cap_v[v.index()] += 1;
            self.cap_u[u.index()] += 1;
            self.current.remove_pair(v, u, sim);
        }
        // Unmatched state (line 20).
        self.advance(i, j, cur);
    }

    /// Lines 6–17: move to the next pair (or finish), applying the
    /// Lemma 6 bound before each descent.
    fn advance(&mut self, i: usize, j: usize, cur: f64) {
        let v = EventId(self.order[i]);
        let last_j = self.inst.num_users() - 1;
        if j == last_j || self.cap_v[v.index()] == 0 {
            // Done with this event; next event or complete.
            if i == self.order.len() - 1 {
                self.stats.complete_searches += 1;
                if cur > self.best_sum {
                    self.best_sum = cur;
                    self.best = self.rebuild_current();
                }
            } else {
                let bound = cur + self.suffix[i + 1];
                if !self.pruning || bound > self.best_sum + EPS {
                    self.run(i + 1, 0, cur);
                } else {
                    self.stats.prunes += 1;
                    self.stats.total_pruned_depth += self.depth(i + 1, 0);
                }
            }
        } else {
            let (next_sim, _) = self.neighbors[v.index()][j + 1];
            let bound = cur + self.suffix[i + 1] + next_sim * self.cap_v[v.index()] as f64;
            if !self.pruning || bound > self.best_sum + EPS {
                self.run(i, j + 1, cur);
            } else {
                self.stats.prunes += 1;
                self.stats.total_pruned_depth += self.depth(i, j + 1);
            }
        }
    }

    /// Snapshot `current` with a freshly accumulated `MaxSum` (the cached
    /// sum inside `current` has backtracking drift; rebuilding from the
    /// instance's similarities is exact for the ≤ `Σc_u` pairs involved).
    fn rebuild_current(&self) -> Arrangement {
        let mut snapshot = Arrangement::empty_for(self.inst);
        for (v, u) in self.current.pairs() {
            snapshot.push_unchecked(v, u, self.inst.similarity(v, u));
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;

    #[test]
    fn finds_the_paper_optimum_on_the_toy() {
        let inst = toy::table1_instance();
        let res = prune(&inst);
        assert!(
            (res.arrangement.max_sum() - toy::OPTIMAL_MAX_SUM).abs() < 1e-9,
            "got {}",
            res.arrangement.max_sum()
        );
        assert!(res.arrangement.validate(&inst).is_empty());
    }

    #[test]
    fn exhaustive_agrees_with_prune() {
        let inst = toy::table1_instance();
        let a = prune(&inst);
        let b = exhaustive(&inst);
        assert!((a.arrangement.max_sum() - b.arrangement.max_sum()).abs() < 1e-9);
    }

    #[test]
    fn pruning_reduces_work() {
        let inst = toy::table1_instance();
        let pruned = prune(&inst);
        let full = exhaustive(&inst);
        assert!(pruned.stats.invocations < full.stats.invocations);
        assert!(pruned.stats.complete_searches <= full.stats.complete_searches);
        assert!(pruned.stats.prunes > 0);
        assert_eq!(full.stats.prunes, 0);
        assert!(pruned.stats.avg_pruned_depth() > 0.0);
        assert!(pruned.stats.avg_pruned_depth() <= pruned.stats.max_depth as f64);
    }

    #[test]
    fn max_depth_is_v_times_u() {
        let inst = toy::table1_instance();
        assert_eq!(prune(&inst).stats.max_depth, 15);
    }

    #[test]
    fn dominates_both_approximations() {
        let inst = toy::table1_instance();
        let opt = prune(&inst).arrangement.max_sum();
        assert!(opt >= crate::algorithms::greedy::greedy(&inst).max_sum() - 1e-9);
        assert!(
            opt >= crate::algorithms::mincostflow::mincostflow(&inst)
                .arrangement
                .max_sum()
                - 1e-9
        );
    }

    #[test]
    fn single_pair_instance() {
        let m = SimMatrix::from_rows(&[vec![0.4]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1], ConflictGraph::empty(1)).unwrap();
        let res = prune(&inst);
        assert_eq!(res.arrangement.len(), 1);
        assert!((res.arrangement.max_sum() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn complete_conflicts_reduce_to_assignment() {
        // Every event conflicts: each user attends ≤ 1 event; the optimum
        // is the best per-user column pick subject to event capacities.
        let m = SimMatrix::from_rows(&[vec![0.9, 0.1], vec![0.8, 0.7]]);
        let inst = Instance::from_matrix(
            m,
            vec![1, 1],
            vec![2, 2],
            ConflictGraph::complete(2),
        )
        .unwrap();
        let res = prune(&inst);
        // Best: {v0,u0}=0.9 + {v1,u1}=0.7 = 1.6.
        assert!((res.arrangement.max_sum() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn greedy_seed_never_changes_the_optimum() {
        let inst = toy::table1_instance();
        let with = prune_with(&inst, PruneConfig { enable_pruning: true, greedy_seed: true });
        let without =
            prune_with(&inst, PruneConfig { enable_pruning: true, greedy_seed: false });
        assert!(
            (with.arrangement.max_sum() - without.arrangement.max_sum()).abs() < 1e-9
        );
        // The seed can only help pruning.
        assert!(with.stats.invocations <= without.stats.invocations);
    }

    #[test]
    fn zero_capacity_event_contributes_nothing() {
        let m = SimMatrix::from_rows(&[vec![0.9], vec![0.8]]);
        let inst =
            Instance::from_matrix(m, vec![0, 1], vec![1], ConflictGraph::empty(2)).unwrap();
        let res = prune(&inst);
        assert_eq!(res.arrangement.len(), 1);
        assert!((res.arrangement.max_sum() - 0.8).abs() < 1e-12);
    }
}
