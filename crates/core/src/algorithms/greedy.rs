//! Greedy-GEACC (Algorithm 2 of the paper).
//!
//! Globally greedy: a heap `H` holds the best known candidate pair per
//! frontier node; each iteration pops the most similar pair overall, adds
//! it to the matching if it is feasible, and advances the participating
//! nodes' neighbour streams to their *next feasible unvisited* candidate.
//! Conflicts are avoided from the beginning (unlike MinCostFlow-GEACC,
//! which repairs them afterwards), and the result is a
//! `1/(1 + max c_u)`-approximation (Theorem 3).
//!
//! Stream discipline (mirrors the paper's Lemmas 2–5 exactly):
//!
//! - a pair enters `H` at most once (the paper's "{v,u} ∉ H" test,
//!   extended over the pair's whole lifetime);
//! - scanning for a node's next candidate skips pairs that are already
//!   *visited* (popped from `H`) and pairs that are infeasible *at scan
//!   time* — both can never be matched later, because capacities only
//!   shrink and a user's matched-event set only grows;
//! - a feasible candidate that is already waiting in `H` ends the scan
//!   without a push (Example 3's `{v₁, u₃}` case).
//!
//! The pushed/popped membership sets are flat bitsets keyed
//! `v·|U| + u` whenever the pair domain fits a fixed memory budget
//! (`PairSet`) — O(1) untyped loads instead of SipHash on the hot scan
//! path — falling back to a `HashSet` for outsized domains.
//!
//! Neighbour streams are cursors over the shared
//! [`CandidateGraph`]'s similarity-sorted rows and columns — the same
//! (sim desc, id asc) yield order the chunked `NeighborOracle` streams
//! produced, so the arrangement is unchanged, but the candidate index is
//! built once per instance and shared with every other solver.

use crate::engine::CandidateGraph;
use crate::model::arrangement::Arrangement;
use crate::model::ids::{EventId, UserId};
use crate::parallel::Threads;
use crate::runtime::{BudgetMeter, StopReason};
use crate::Instance;
use std::collections::{BinaryHeap, HashSet};

/// Configuration for [`greedy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyConfig {
    /// Worker budget for building the shared candidate graph (the
    /// `O((|V| + |U|)·n·d)` setup scan). The greedy iteration itself is
    /// inherently sequential; the arrangement is identical at every
    /// setting.
    pub threads: Threads,
}

/// Membership set over pair keys `v·|U| + u`.
///
/// Greedy's `pushed`/`popped` sets are hit once per stream-scan step, so
/// lookup cost is on the algorithm's critical path. When the full pair
/// domain fits [`PairSet::BUDGET_BITS`] (16 MiB of bits — covers the
/// paper's largest scalability setting, `|V|·|U| = 10⁸`), membership is
/// one word index; beyond that, a `HashSet` keeps memory proportional to
/// pairs actually seen (which scanning discipline keeps near-linear).
#[derive(Debug)]
enum PairSet {
    Bits(Vec<u64>),
    Hash(HashSet<u64>),
}

impl PairSet {
    /// Largest pair domain (in bits) given a dense bitset: `2^27` bits =
    /// 16 MiB per set.
    const BUDGET_BITS: u64 = 1 << 27;

    fn with_domain(num_pairs: u64) -> Self {
        if num_pairs <= Self::BUDGET_BITS {
            PairSet::Bits(vec![0u64; num_pairs.div_ceil(64) as usize])
        } else {
            PairSet::Hash(HashSet::new())
        }
    }

    /// Insert `key`; returns `true` if it was not already present.
    #[inline]
    fn insert(&mut self, key: u64) -> bool {
        match self {
            PairSet::Bits(words) => {
                let (w, b) = ((key / 64) as usize, key % 64);
                let mask = 1u64 << b;
                let fresh = words[w] & mask == 0;
                words[w] |= mask;
                fresh
            }
            PairSet::Hash(set) => set.insert(key),
        }
    }

    #[inline]
    fn contains(&self, key: u64) -> bool {
        match self {
            PairSet::Bits(words) => words[(key / 64) as usize] & (1u64 << (key % 64)) != 0,
            PairSet::Hash(set) => set.contains(&key),
        }
    }
}

/// Run Greedy-GEACC; returns a feasible arrangement.
pub fn greedy(inst: &Instance) -> Arrangement {
    greedy_with(inst, GreedyConfig::default())
}

/// Run Greedy-GEACC with explicit configuration.
pub fn greedy_with(inst: &Instance, config: GreedyConfig) -> Arrangement {
    let graph = CandidateGraph::build(inst, config.threads);
    greedy_on(&graph, None).0
}

/// The engine entry point: Greedy-GEACC over a prebuilt candidate
/// graph. The graph's sorted rows/columns *are* the neighbour streams,
/// so no per-solve index work remains.
///
/// With `meter: Some(_)`, the heap loop (and the initialization scans)
/// tick it and, when a limit trips, return the pairs matched so far —
/// a feasible prefix of the greedy arrangement (greedy never
/// unmatches, so any prefix is feasible) — together with the
/// [`StopReason`]. `None` (or an unlimited meter) is bit-identical to
/// [`greedy_with`].
pub fn greedy_on(
    graph: &CandidateGraph,
    meter: Option<&BudgetMeter>,
) -> (Arrangement, Option<StopReason>) {
    let inst = graph.instance();
    let nu = inst.num_users() as u64;
    let key = |v: EventId, u: UserId| v.0 as u64 * nu + u.0 as u64;

    let mut arrangement = Arrangement::empty_for(inst);
    // Per-node stream cursors into the graph's sorted rows/columns.
    let mut event_pos = vec![0usize; inst.num_events()];
    let mut user_pos = vec![0usize; inst.num_users()];
    // Remaining capacities.
    let mut cap_v: Vec<u32> = inst.events().map(|v| inst.event_capacity(v)).collect();
    let mut cap_u: Vec<u32> = inst.users().map(|u| inst.user_capacity(u)).collect();
    // Pairs ever pushed into H / already popped from it.
    let num_pairs = inst.num_events() as u64 * nu;
    let mut pushed = PairSet::with_domain(num_pairs);
    let mut popped = PairSet::with_domain(num_pairs);
    let mut heap: BinaryHeap<HeapPair> = BinaryHeap::new();

    // Scan `v`'s stream for its next feasible unvisited user; push the
    // pair unless it is already waiting in H. The cursor consumes
    // skipped entries exactly like the chunked streams did: a pair
    // infeasible at scan time can never become feasible again.
    let scan_event = |v: EventId,
                      event_pos: &mut [usize],
                      arrangement: &Arrangement,
                      cap_u: &[u32],
                      pushed: &mut PairSet,
                      popped: &PairSet,
                      heap: &mut BinaryHeap<HeapPair>| {
        let (users, sims) = graph.sorted_row(v);
        let pos = &mut event_pos[v.index()];
        while *pos < users.len() {
            let (u, sim) = (UserId(users[*pos]), sims[*pos]);
            *pos += 1;
            let k = key(v, u);
            if popped.contains(k) {
                continue; // visited
            }
            let feasible = cap_u[u.index()] > 0
                && !inst
                    .conflicts()
                    .conflicts_with_any(v, arrangement.events_of(u));
            if !feasible {
                continue; // can never become feasible again
            }
            if pushed.insert(k) {
                heap.push(HeapPair { sim, v, u });
            }
            return;
        }
    };
    let scan_user = |u: UserId,
                     user_pos: &mut [usize],
                     arrangement: &Arrangement,
                     cap_v: &[u32],
                     pushed: &mut PairSet,
                     popped: &PairSet,
                     heap: &mut BinaryHeap<HeapPair>| {
        let (events, sims) = graph.sorted_col(u);
        let pos = &mut user_pos[u.index()];
        while *pos < events.len() {
            let (v, sim) = (EventId(events[*pos]), sims[*pos]);
            *pos += 1;
            let k = key(v, u);
            if popped.contains(k) {
                continue;
            }
            let feasible = cap_v[v.index()] > 0
                && !inst
                    .conflicts()
                    .conflicts_with_any(v, arrangement.events_of(u));
            if !feasible {
                continue;
            }
            if pushed.insert(k) {
                heap.push(HeapPair { sim, v, u });
            }
            return;
        }
    };

    // One unit of budgeted work: a heap pop or an initialization scan.
    macro_rules! tick {
        () => {
            if let Some(m) = meter {
                if let Some(reason) = m.tick() {
                    return (arrangement, Some(reason));
                }
            }
        };
    }

    // Initialization (lines 1–9): each side's first NN.
    for v in inst.events() {
        tick!();
        if cap_v[v.index()] > 0 {
            scan_event(
                v,
                &mut event_pos,
                &arrangement,
                &cap_u,
                &mut pushed,
                &popped,
                &mut heap,
            );
        }
    }
    for u in inst.users() {
        tick!();
        if cap_u[u.index()] > 0 {
            scan_user(
                u,
                &mut user_pos,
                &arrangement,
                &cap_v,
                &mut pushed,
                &popped,
                &mut heap,
            );
        }
    }

    // Iteration (lines 11–23).
    while let Some(HeapPair { sim, v, u }) = heap.pop() {
        tick!();
        popped.insert(key(v, u));
        if cap_v[v.index()] > 0
            && cap_u[u.index()] > 0
            && !inst
                .conflicts()
                .conflicts_with_any(v, arrangement.events_of(u))
        {
            arrangement.push_unchecked(v, u, sim);
            cap_v[v.index()] -= 1;
            cap_u[u.index()] -= 1;
        }
        if cap_v[v.index()] > 0 {
            scan_event(
                v,
                &mut event_pos,
                &arrangement,
                &cap_u,
                &mut pushed,
                &popped,
                &mut heap,
            );
        }
        if cap_u[u.index()] > 0 {
            scan_user(
                u,
                &mut user_pos,
                &arrangement,
                &cap_v,
                &mut pushed,
                &popped,
                &mut heap,
            );
        }
    }
    (arrangement, None)
}

/// Heap entry ordered by similarity (max first), ties by `(v, u)`
/// ascending for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapPair {
    sim: f64,
    v: EventId,
    u: UserId,
}

impl Eq for HeapPair {}

impl PartialOrd for HeapPair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapPair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| other.v.cmp(&self.v))
            .then_with(|| other.u.cmp(&self.u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::conflict::ConflictGraph;
    use crate::similarity::SimMatrix;
    use crate::toy;

    #[test]
    fn reproduces_paper_example_3() {
        // Fig. 2: Greedy-GEACC on the Table I toy ends at MaxSum 4.28.
        let inst = toy::table1_instance();
        let m = greedy(&inst);
        assert!((m.max_sum() - 4.28).abs() < 1e-9, "got {}", m.max_sum());
        assert!(m.validate(&inst).is_empty());
        // The first greedy pick is the globally best pair {v1, u1}.
        assert!(m.contains(EventId(0), UserId(0)));
        // v3 conflicts with v1, so u1 attends only v1.
        assert!(!m.contains(EventId(2), UserId(0)));
    }

    #[test]
    fn respects_capacities() {
        let m = SimMatrix::from_rows(&[vec![0.9, 0.8, 0.7]]);
        let inst =
            Instance::from_matrix(m, vec![2], vec![1, 1, 1], ConflictGraph::empty(1)).unwrap();
        let res = greedy(&inst);
        assert_eq!(res.len(), 2);
        assert!(res.contains(EventId(0), UserId(0)));
        assert!(res.contains(EventId(0), UserId(1)));
        assert!(res.validate(&inst).is_empty());
    }

    #[test]
    fn complete_conflict_graph_limits_users_to_one_event() {
        let m = SimMatrix::from_rows(&[vec![0.9, 0.8], vec![0.7, 0.6], vec![0.5, 0.4]]);
        let inst = Instance::from_matrix(m, vec![2, 2, 2], vec![3, 3], ConflictGraph::complete(3))
            .unwrap();
        let res = greedy(&inst);
        assert!(res.validate(&inst).is_empty());
        for u in inst.users() {
            assert!(res.events_of(u).len() <= 1);
        }
        // Greedy takes the two best non-conflicting pairs: {v0,u0}, {v0,u1}.
        assert!((res.max_sum() - 1.7).abs() < 1e-9);
    }

    #[test]
    fn zero_similarity_instance_yields_empty_matching() {
        let m = SimMatrix::from_rows(&[vec![0.0, 0.0]]);
        let inst = Instance::from_matrix(m, vec![1], vec![1, 1], ConflictGraph::empty(1)).unwrap();
        let res = greedy(&inst);
        assert!(res.is_empty());
    }

    #[test]
    fn zero_capacity_nodes_are_skipped() {
        let m = SimMatrix::from_rows(&[vec![0.9, 0.8], vec![0.7, 0.6]]);
        let inst =
            Instance::from_matrix(m, vec![0, 1], vec![1, 0], ConflictGraph::empty(2)).unwrap();
        let res = greedy(&inst);
        assert!(res.validate(&inst).is_empty());
        assert_eq!(res.len(), 1);
        assert!(res.contains(EventId(1), UserId(0)));
    }

    #[test]
    fn greedy_is_maximal() {
        // Lemma 5: no unmatched pair can be added to the result.
        let m = SimMatrix::from_rows(&[
            vec![0.9, 0.2, 0.5, 0.4],
            vec![0.3, 0.8, 0.1, 0.6],
            vec![0.7, 0.4, 0.6, 0.2],
        ]);
        let inst = Instance::from_matrix(
            m,
            vec![2, 1, 2],
            vec![2, 1, 1, 2],
            ConflictGraph::from_pairs(3, [(EventId(0), EventId(2))]),
        )
        .unwrap();
        let res = greedy(&inst);
        assert!(res.validate(&inst).is_empty());
        let mut copy = res.clone();
        for v in inst.events() {
            for u in inst.users() {
                assert!(
                    copy.try_add(&inst, v, u).is_none(),
                    "greedy result not maximal: could still add ({v}, {u})"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let inst = toy::table1_instance();
        let a = greedy(&inst);
        let b = greedy(&inst);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_at_every_thread_count() {
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|v| {
                (0..24)
                    .map(|u| ((v * 11 + u * 5) % 17) as f64 / 17.0)
                    .collect()
            })
            .collect();
        let inst = Instance::from_matrix(
            SimMatrix::from_rows(&rows),
            vec![3; 8],
            vec![2; 24],
            ConflictGraph::from_pairs(8, [(EventId(0), EventId(3)), (EventId(2), EventId(5))]),
        )
        .unwrap();
        let sequential = greedy(&inst);
        for t in [2, 4, 8] {
            let parallel = greedy_with(
                &inst,
                GreedyConfig {
                    threads: Threads::new(t),
                },
            );
            assert_eq!(parallel, sequential, "threads = {t}");
        }
    }

    #[test]
    fn pair_set_bits_and_hash_agree() {
        let mut bits = PairSet::with_domain(1000);
        let mut hash = PairSet::Hash(HashSet::new());
        assert!(matches!(bits, PairSet::Bits(_)));
        for k in [0u64, 1, 63, 64, 65, 999, 64, 0] {
            assert_eq!(bits.insert(k), hash.insert(k), "insert {k}");
        }
        for k in 0..1000u64 {
            assert_eq!(bits.contains(k), hash.contains(k), "contains {k}");
        }
    }

    #[test]
    fn pair_set_falls_back_to_hash_beyond_budget() {
        let huge = PairSet::BUDGET_BITS + 1;
        let mut set = PairSet::with_domain(huge);
        assert!(matches!(set, PairSet::Hash(_)));
        assert!(set.insert(huge - 1));
        assert!(!set.insert(huge - 1));
        assert!(set.contains(huge - 1));
        assert!(!set.contains(0));
    }

    #[test]
    fn heap_tie_breaks_are_deterministic() {
        // All similarities equal: the arrangement is fully determined by
        // the documented (v, u) ascending tie-break.
        let m = SimMatrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        let inst =
            Instance::from_matrix(m, vec![1, 1], vec![1, 1], ConflictGraph::empty(2)).unwrap();
        let res = greedy(&inst);
        assert!(res.contains(EventId(0), UserId(0)));
        assert!(res.contains(EventId(1), UserId(1)));
    }

    #[test]
    fn user_capacity_one_with_dense_conflicts() {
        // A user wanted by every event but able to attend only one; the
        // winner must be the highest-similarity event.
        let m = SimMatrix::from_rows(&[vec![0.3], vec![0.9], vec![0.6]]);
        let inst =
            Instance::from_matrix(m, vec![1, 1, 1], vec![3], ConflictGraph::complete(3)).unwrap();
        let res = greedy(&inst);
        assert_eq!(res.len(), 1);
        assert!(res.contains(EventId(1), UserId(0)));
    }

    #[test]
    fn matches_paper_iteration_trace_on_toy() {
        // The full Example 3 trace commits to exactly these seven pairs.
        let inst = toy::table1_instance();
        let res = greedy(&inst);
        let expected = [
            (0u32, 0u32), // {v1,u1} 0.93
            (0, 2),       // {v1,u3} 0.84
            (2, 3),       // {v3,u4} 0.79
            (2, 4),       // {v3,u5} 0.68
            (0, 1),       // {v1,u2} 0.43
            (1, 4),       // {v2,u5} 0.40
            (1, 3),       // {v2,u4} 0.21
        ];
        for (v, u) in expected {
            assert!(
                res.contains(EventId(v), UserId(u)),
                "missing pair (v{v}, u{u})"
            );
        }
        assert_eq!(res.len(), 7);
    }
}
