//! End-to-end tests over a real TCP socket: a full client session, the
//! shutdown drain, and admission control under overload.

use geacc_server::{protocol, MetricsSnapshot, Server, ServerConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking line-protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed).unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::from_str(line.trim()).expect("response is JSON")
    }

    fn call(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn ok_data(response: &Value) -> &Value {
    assert_eq!(
        protocol::get(response, "ok"),
        Some(&Value::Bool(true)),
        "expected success, got {response:?}"
    );
    protocol::get(response, "data").expect("ok response has data")
}

fn err_code(response: &Value) -> &str {
    assert_eq!(protocol::get(response, "ok"), Some(&Value::Bool(false)));
    protocol::get_str(
        protocol::get(response, "error").expect("error body"),
        "code",
    )
    .unwrap()
}

fn spawn_server(config: ServerConfig) -> (std::net::SocketAddr, ServerHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, ServerHandle(handle))
}

struct ServerHandle(std::thread::JoinHandle<MetricsSnapshot>);

impl ServerHandle {
    fn join(self) -> MetricsSnapshot {
        self.0.join().expect("server thread")
    }
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        default_timeout_ms: 10_000,
        ..ServerConfig::default()
    }
}

fn load_line() -> String {
    let inst = geacc_core::toy::table1_instance();
    format!(
        r#"{{"op": "load", "id": 1, "instance": {}}}"#,
        serde_json::to_string(&inst).unwrap()
    )
}

/// Branch-and-bound's worst case (narrow similarity band, dense
/// conflicts, deep trees): unbudgeted Prune-GEACC effectively never
/// finishes, so a budgeted solve reliably occupies a worker for its
/// whole timeout.
fn pathological_load_line() -> String {
    use geacc_core::{ConflictGraph, EventId, Instance, SimMatrix};
    let (nv, nu) = (8usize, 24usize);
    let values: Vec<f64> = (0..nv * nu)
        .map(|i| 0.55 + 0.01 * ((i * 37 % 97) as f64 / 97.0))
        .collect();
    let conflicts = ConflictGraph::from_pairs(
        nv,
        (0..nv as u32).flat_map(|i| {
            (i + 1..nv as u32)
                .filter(move |j| (i * 7 + j * 13) % 3 != 0)
                .map(move |j| (EventId(i), EventId(j)))
        }),
    );
    let inst = Instance::from_matrix(
        SimMatrix::from_flat(nv, nu, values),
        vec![6; nv],
        vec![8; nu],
        conflicts,
    )
    .unwrap();
    format!(
        r#"{{"op": "load", "instance": {}}}"#,
        serde_json::to_string(&inst).unwrap()
    )
}

#[test]
fn full_session_over_tcp() {
    let (addr, handle) = spawn_server(test_config());
    let mut client = Client::connect(addr);

    let loaded = client.call(&load_line());
    assert_eq!(protocol::get_u64(&loaded, "id"), Some(1));
    assert_eq!(protocol::get_u64(ok_data(&loaded), "epoch"), Some(0));

    let mutated =
        client.call(r#"{"op": "mutate", "id": 2, "mutation": {"AddConflict": {"a": 1, "b": 2}}}"#);
    assert_eq!(protocol::get_u64(ok_data(&mutated), "epoch"), Some(1));

    // A second connection sees the same live state.
    let mut other = Client::connect(addr);
    let stats = other.call(r#"{"op": "stats", "id": 3}"#);
    let arranger = protocol::get(ok_data(&stats), "arranger").unwrap();
    assert_eq!(protocol::get_u64(arranger, "epoch"), Some(1));

    // Malformed and unknown requests answer structured errors without
    // killing the connection.
    let bad = client.call("this is not json");
    assert_eq!(err_code(&bad), "bad_json");
    let unknown = client.call(r#"{"op": "florp", "id": 4}"#);
    assert_eq!(err_code(&unknown), "unknown_op");
    let still_alive = client.call(r#"{"op": "query_user", "id": 5, "user": 0}"#);
    assert!(protocol::get(ok_data(&still_alive), "events").is_some());

    let bye = client.call(r#"{"op": "shutdown", "id": 6}"#);
    assert_eq!(
        protocol::get(ok_data(&bye), "stopping"),
        Some(&Value::Bool(true))
    );
    let metrics = handle.join();
    assert_eq!(metrics.connections, 2);
    assert!(metrics.requests.get("mutate").copied() == Some(1));
    assert_eq!(metrics.mutations_applied, 1);
    assert!(metrics.latency_count >= 6);
}

#[test]
fn pipelined_requests_echo_ids() {
    let (addr, handle) = spawn_server(test_config());
    let mut client = Client::connect(addr);
    ok_data(&client.call(&load_line()));

    // Fire a burst without reading, then collect. Responses may be
    // reordered by the worker pool; ids must let us match them up.
    let n = 10u64;
    for i in 0..n {
        client.send(&format!(
            r#"{{"op": "query_user", "id": {}, "user": {}}}"#,
            100 + i,
            i % 5
        ));
    }
    let mut seen: Vec<u64> = (0..n)
        .map(|_| {
            let response = client.recv();
            ok_data(&response);
            protocol::get_u64(&response, "id").expect("echoed id")
        })
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (100..100 + n).collect::<Vec<_>>());

    client.call(r#"{"op": "shutdown"}"#);
    handle.join();
}

#[test]
fn overload_rejects_with_structured_errors() {
    // One worker stuck on a slow solve + a queue of depth 1 ⇒ further
    // requests must be rejected as `overloaded`, never queued unbounded.
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        default_timeout_ms: 10_000,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr);
    ok_data(&client.call(&pathological_load_line()));

    // Occupy the single worker: a hard exact solve that runs its full
    // 1s budget.
    client.send(r#"{"op": "solve", "id": 1, "algorithm": "prune", "timeout_ms": 1000}"#);
    std::thread::sleep(Duration::from_millis(100));

    // Saturate: pipeline a burst of mutates without reading. With the
    // worker busy, at most one request fits the depth-1 queue; the rest
    // bounce with a structured error the moment they arrive. (The burst
    // must be queue-class ops — the event loop answers reads like
    // `stats` inline no matter how wedged the workers are.)
    let mut flood = Client::connect(addr);
    let n = 20;
    for i in 0..n {
        flood.send(&format!(
            r#"{{"op": "mutate", "id": {}, "mutation": {{"SetCapacity": {{"side": "User", "id": 3, "capacity": 2}}}}}}"#,
            1000 + i
        ));
    }
    let mut overloaded = 0;
    let mut admitted = 0;
    for _ in 0..n {
        let response = flood.recv();
        match protocol::get(&response, "ok") {
            Some(Value::Bool(true)) => admitted += 1,
            _ => {
                assert_eq!(err_code(&response), "overloaded");
                overloaded += 1;
            }
        }
    }
    assert!(overloaded > 0, "expected overload rejections");
    assert!(admitted < n, "queue must not absorb the whole burst");

    // The stuck solve still completes and the server still answers.
    ok_data(&client.recv());
    ok_data(&client.call(r#"{"op": "stats"}"#));
    client.call(r#"{"op": "shutdown"}"#);
    let metrics = handle.join();
    assert_eq!(metrics.rejected, overloaded);
    assert!(metrics.errors >= overloaded);
}

#[test]
fn snapshot_and_restore_across_server_instances() {
    let dir = std::env::temp_dir().join("geacc-server-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.json");
    let path_str = path.to_str().unwrap();

    let (addr, handle) = spawn_server(test_config());
    let mut client = Client::connect(addr);
    ok_data(&client.call(&load_line()));
    ok_data(&client.call(
        r#"{"op": "mutate", "mutation": {"AddUser": {"attrs": [0.7, 0.4, 0.9], "capacity": 2}}}"#,
    ));
    ok_data(&client.call(r#"{"op": "mutate", "mutation": {"CloseEvent": {"event": 1}}}"#));
    let saved = client.call(&format!(r#"{{"op": "snapshot", "path": "{path_str}"}}"#));
    assert_eq!(protocol::get_u64(ok_data(&saved), "mutations"), Some(2));
    let before = client.call(r#"{"op": "query_event", "event": 0}"#);
    client.call(r#"{"op": "shutdown"}"#);
    handle.join();

    let (addr, handle) = spawn_server(test_config());
    let mut client = Client::connect(addr);
    let restored = client.call(&format!(r#"{{"op": "restore", "path": "{path_str}"}}"#));
    assert_eq!(protocol::get_u64(ok_data(&restored), "epoch"), Some(2));
    let after = client.call(r#"{"op": "query_event", "event": 0}"#);
    assert_eq!(ok_data(&before), ok_data(&after));
    client.call(r#"{"op": "shutdown"}"#);
    handle.join();
    std::fs::remove_file(&path).ok();
}
