//! End-to-end self-healing tests: unattended lease-based failover (kill
//! the primary, no human `promote`), the deterministic cut-point sweep
//! under supervision (the promoted node serves exactly the acked prefix
//! it was shipped, bit-identically), partition failover with the old
//! primary self-fencing and rejoining as a replica, a retry that
//! straddles the promotion (exactly-once via the shipped dedup table),
//! and the `primary_hint` self-correction of a misconfigured client.

use geacc_server::chaos::{ChaosPlan, ChaosProxy, LinePolicy};
use geacc_server::client::{ClientConfig, RetryClient};
use geacc_server::{protocol, recovery, wal, MetricsSnapshot, Server, ServerConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A blocking line-protocol client (same shape as tests/replication.rs).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::from_str(line.trim()).expect("response is JSON")
    }

    fn call(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn ok_data(response: &Value) -> &Value {
    assert_eq!(
        protocol::get(response, "ok"),
        Some(&Value::Bool(true)),
        "expected success, got {response:?}"
    );
    protocol::get(response, "data").expect("ok response has data")
}

fn err_body(response: &Value) -> &Value {
    assert_eq!(
        protocol::get(response, "ok"),
        Some(&Value::Bool(false)),
        "expected error, got {response:?}"
    );
    protocol::get(response, "error").expect("error body")
}

struct ServerHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<MetricsSnapshot>,
}

impl ServerHandle {
    fn spawn(config: ServerConfig) -> ServerHandle {
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle();
        let thread = std::thread::spawn(move || server.run().expect("server run"));
        ServerHandle { addr, stop, thread }
    }

    /// Unannounced death: raise the stop flag without a structured
    /// shutdown — every socket goes dark, nothing is handed over. The
    /// closest an in-process harness gets to `kill -9` (the real
    /// kill -9 run lives in scripts/ci.sh).
    fn crash(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }

    fn shutdown(self) -> MetricsSnapshot {
        if let Ok(stream) = TcpStream::connect(&self.addr) {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            let _ = writer.write_all(b"{\"op\": \"shutdown\"}\n");
            let mut line = String::new();
            let _ = BufReader::new(stream).read_line(&mut line);
        }
        self.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("server thread")
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("geacc-sup-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        default_timeout_ms: 10_000,
        wal_dir: Some(dir.to_path_buf()),
        fsync: geacc_server::FsyncPolicy::Always,
        ..ServerConfig::default()
    }
}

/// Reserve a concrete local address before the server exists, so nodes
/// with circular peer lists (r1 probes r2, r2 probes r1) can be
/// configured up front.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

fn load_line() -> String {
    let inst = geacc_core::toy::table1_instance();
    format!(
        r#"{{"op": "load", "instance": {}}}"#,
        serde_json::to_string(&inst).unwrap()
    )
}

/// The mutation stream every test replays: valid on the toy instance.
fn mutation_bodies() -> Vec<&'static str> {
    vec![
        r#"{"AddConflict": {"a": 0, "b": 1}}"#,
        r#"{"SetCapacity": {"side": "User", "id": 0, "capacity": 1}}"#,
        r#"{"SetCapacity": {"side": "Event", "id": 1, "capacity": 4}}"#,
    ]
}

/// Poll `probe` until it returns Some or the deadline passes.
fn wait_for<T>(what: &str, timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// health() over a *fresh* connection each time: across a failover the
/// node under a persistent connection may die, which would poison the
/// helper for every later probe.
fn health_at(addr: &str) -> Option<Value> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer
        .write_all(b"{\"op\": \"health\", \"id\": 0}\n")
        .ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    let response: Value = serde_json::from_str(line.trim()).ok()?;
    protocol::get(&response, "data").cloned()
}

fn health(client: &mut Client) -> Value {
    ok_data(&client.call(r#"{"op": "health"}"#)).clone()
}

fn fingerprint(health: &Value) -> u64 {
    protocol::get_u64(health, "fingerprint").expect("health has fingerprint")
}

fn supervised(config: ServerConfig, node_id: u64, peers: Vec<String>) -> ServerConfig {
    ServerConfig {
        supervise: true,
        lease_interval_ms: 50,
        missed_leases: 3,
        node_id: Some(node_id),
        peers,
        ..config
    }
}

/// The headline scenario: a supervised primary with two supervised
/// replicas dies unannounced; with no human in the loop the lower
/// node-id replica (equal offsets) promotes itself, the loser re-points
/// at the winner, a topology-aware client seeded at the *loser* lands
/// its write on the winner, and the promoted state is exactly the acked
/// state — WAL bit-identical.
#[test]
fn unattended_failover_elects_highest_ranked_replica() {
    let primary_dir = tmp_dir("auto-primary");
    let r1_dir = tmp_dir("auto-r1");
    let r2_dir = tmp_dir("auto-r2");
    let r1_addr = free_addr();
    let r2_addr = free_addr();

    let primary = ServerHandle::spawn(supervised(
        ServerConfig {
            accept_replicas: true,
            ..durable_config(&primary_dir)
        },
        10,
        Vec::new(),
    ));
    let r1 = ServerHandle::spawn(supervised(
        ServerConfig {
            addr: r1_addr.clone(),
            replica_of: Some(primary.addr.clone()),
            ..durable_config(&r1_dir)
        },
        1,
        vec![r2_addr.clone()],
    ));
    let r2 = ServerHandle::spawn(supervised(
        ServerConfig {
            addr: r2_addr.clone(),
            replica_of: Some(primary.addr.clone()),
            ..durable_config(&r2_dir)
        },
        2,
        vec![r1_addr.clone()],
    ));

    // Both replicas must be attached before the first write, so their
    // WALs are byte prefixes of the primary's (a late joiner would be
    // bootstrapped from a snapshot and skip the Load record).
    for addr in [&r1_addr, &r2_addr] {
        wait_for("replica to attach", Duration::from_secs(10), || {
            let h = health_at(addr)?;
            (protocol::get(&h, "connected") == Some(&Value::Bool(true))).then_some(())
        });
    }

    let mut on_primary = Client::connect(&primary.addr);
    ok_data(&on_primary.call(&load_line()));
    for mutation in mutation_bodies() {
        ok_data(&on_primary.call(&format!(r#"{{"op": "mutate", "mutation": {mutation}}}"#)));
    }
    let want = fingerprint(&health(&mut on_primary));
    for addr in [&r1_addr, &r2_addr] {
        wait_for("replica to converge", Duration::from_secs(10), || {
            let h = health_at(addr)?;
            (protocol::get_u64(&h, "fingerprint") == Some(want)).then_some(())
        });
    }
    let primary_wal = std::fs::read(recovery::wal_path(&primary_dir)).unwrap();
    drop(on_primary);
    primary.crash();

    // No `promote` from here on. r1 and r2 have identical offsets, so
    // the rank tiebreak (lowest node id) must elect r1.
    wait_for("r1 to self-promote", Duration::from_secs(15), || {
        let h = health_at(&r1_addr)?;
        (protocol::get_str(&h, "role") == Some("primary")
            && protocol::get_str(&h, "status") == Some("ok"))
        .then_some(())
    });
    let promoted = health_at(&r1_addr).unwrap();
    assert!(protocol::get_u64(&promoted, "generation") >= Some(1));
    assert_eq!(protocol::get_u64(&promoted, "fingerprint"), Some(want));

    // The loser stays a replica and re-points at the winner.
    wait_for("r2 to follow the winner", Duration::from_secs(15), || {
        let h = health_at(&r2_addr)?;
        (protocol::get_str(&h, "role") == Some("replica")
            && protocol::get_str(&h, "primary_hint") == Some(r1_addr.as_str()))
        .then_some(())
    });

    // The promoted WAL is the dead primary's acked log, byte for byte.
    let r1_wal = std::fs::read(recovery::wal_path(&r1_dir)).unwrap();
    assert_eq!(r1_wal, primary_wal, "promoted WAL diverged from acked log");

    // A client seeded at the *loser* self-routes to the winner.
    let mut client = RetryClient::new(
        r2_addr.clone(),
        ClientConfig {
            request_timeout: Duration::from_secs(20),
            max_retries: 30,
            seed: 11,
            ..ClientConfig::default()
        },
    );
    let mutation: Value =
        serde_json::from_str(r#"{"SetCapacity": {"side": "User", "id": 2, "capacity": 3}}"#)
            .unwrap();
    let applied = client.mutate(mutation).expect("write lands on the winner");
    assert!(protocol::get_u64(&applied, "epoch").is_some());
    assert_eq!(client.current_addr(), r1_addr.as_str());
    assert!(client.stats().redirects >= 1, "{:?}", client.stats());

    // And the loser keeps replicating — now from the new primary.
    let new_want = fingerprint(&health_at(&r1_addr).unwrap());
    assert_ne!(new_want, want);
    wait_for("r2 to stream from r1", Duration::from_secs(15), || {
        let h = health_at(&r2_addr)?;
        (protocol::get_u64(&h, "fingerprint") == Some(new_want)).then_some(())
    });

    // Unattended promotion is visible in the metrics.
    let mut on_r1 = Client::connect(&r1_addr);
    let stats = on_r1.call(r#"{"op": "stats"}"#);
    let server = protocol::get(ok_data(&stats), "server").unwrap().clone();
    assert!(protocol::get_u64(&server, "sup_promotions") >= Some(1));

    r2.shutdown();
    r1.shutdown();
}

/// The acceptance sweep: lease expiry × stream cut points. For every
/// record boundary k the chaos proxy pins the replica at exactly k
/// shipped records while heartbeats keep flowing — a slow stream must
/// NOT trigger an election (the supervisor probes the upstream directly
/// before electing). Only a full partition expires the lease; then the
/// replica self-promotes and must serve precisely the replay of the
/// first k acked records, with a WAL bit-identical to the primary's
/// k-record prefix and a durably bumped generation. Zero split-brain:
/// the promotion happens at a generation that fences the old primary.
#[test]
fn cut_point_sweep_under_supervision_promotes_exact_acked_prefix() {
    let mutations = mutation_bodies();
    let total_records = 1 + mutations.len() as u64; // load + mutations

    for (lease_ms, missed) in [(40u64, 2u32), (80, 3)] {
        for k in 1..=total_records {
            let tag = format!("sweep-{lease_ms}-{k}");
            let primary_dir = tmp_dir(&format!("{tag}-primary"));
            let replica_dir = tmp_dir(&format!("{tag}-replica"));
            let primary = ServerHandle::spawn(ServerConfig {
                accept_replicas: true,
                ..durable_config(&primary_dir)
            });

            let plan = ChaosPlan {
                seed: 0xFA11 ^ k ^ lease_ms,
                server_to_client: LinePolicy {
                    cut_after_matching: Some((r#""repl":"record""#.to_string(), k)),
                    ..LinePolicy::default()
                },
                ..ChaosPlan::default()
            };
            let proxy = ChaosProxy::spawn(primary.addr.parse().unwrap(), plan).unwrap();
            let replica = ServerHandle::spawn(ServerConfig {
                replica_of: Some(proxy.addr().to_string()),
                supervise: true,
                lease_interval_ms: lease_ms,
                missed_leases: missed,
                node_id: Some(5),
                ..durable_config(&replica_dir)
            });

            // Attach before writing so the replica's WAL is a byte
            // prefix of the primary's (no snapshot shortcut).
            wait_for("replica attach", Duration::from_secs(10), || {
                let h = health_at(&replica.addr)?;
                (protocol::get(&h, "connected") == Some(&Value::Bool(true))).then_some(())
            });

            let mut on_primary = Client::connect(&primary.addr);
            ok_data(&on_primary.call(&load_line()));
            for mutation in &mutations {
                ok_data(
                    &on_primary.call(&format!(r#"{{"op": "mutate", "mutation": {mutation}}}"#)),
                );
            }

            let primary_wal = std::fs::read(recovery::wal_path(&primary_dir)).unwrap();
            let scan = wal::scan(&primary_wal).unwrap();
            assert_eq!(scan.records.len() as u64, total_records);
            let boundary = if k == total_records {
                scan.valid_len
            } else {
                scan.records[k as usize].offset
            };

            let mut on_replica = Client::connect(&replica.addr);
            wait_for(
                &format!("replica to stall at boundary {k}"),
                Duration::from_secs(10),
                || {
                    let stats = on_replica.call(r#"{"op": "stats"}"#);
                    let replication = protocol::get(ok_data(&stats), "replication")?.clone();
                    (protocol::get_u64(&replication, "remote_offset") == Some(boundary))
                        .then_some(())
                },
            );

            // A stalled stream is not a dead primary: with heartbeats
            // (and a direct health probe) still answering, the replica
            // must sit out several full promote windows without
            // electing itself.
            if k == 1 {
                let promote_window = Duration::from_millis(lease_ms * u64::from(missed + 2));
                std::thread::sleep(promote_window * 3);
                let h = health_at(&replica.addr).unwrap();
                assert_eq!(
                    protocol::get_str(&h, "role"),
                    Some("replica"),
                    "replica promoted under a slow-but-alive primary"
                );
            }

            // Now the primary really is unreachable from the replica.
            proxy.partition(true);
            wait_for(
                &format!("self-promotion at boundary {k}"),
                Duration::from_secs(15),
                || {
                    let h = health_at(&replica.addr)?;
                    (protocol::get_str(&h, "role") == Some("primary")
                        && protocol::get_str(&h, "status") == Some("ok"))
                    .then_some(())
                },
            );

            // Exactly the replay of the first k acked records.
            let prefix: Vec<_> = scan.records[..k as usize]
                .iter()
                .map(|r| r.record.clone())
                .collect();
            let expected = recovery::replay_prefix(&prefix, geacc_core::DynamicConfig::default())
                .expect("prefix starts with load");
            let h = health_at(&replica.addr).unwrap();
            assert_eq!(
                protocol::get_u64(&h, "fingerprint"),
                Some(expected.arranger.fingerprint()),
                "promoted state diverged from replay of the first {k} records"
            );
            assert_eq!(
                protocol::get_u64(&h, "epoch"),
                Some(expected.arranger.epoch())
            );
            // The generation bump is durable and fences the old
            // primary's generation.
            assert!(protocol::get_u64(&h, "generation") >= Some(1));
            let meta = geacc_server::repl::load_meta(&replica_dir).unwrap();
            assert!(meta.generation >= 1, "generation bump not persisted");

            let replica_wal = std::fs::read(recovery::wal_path(&replica_dir)).unwrap();
            assert_eq!(
                replica_wal,
                primary_wal[..boundary as usize],
                "replica WAL is not a byte-identical prefix at k={k}"
            );

            // Writable, unattended.
            let resumed = on_replica.call(
                r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 3, "capacity": 2}}}"#,
            );
            ok_data(&resumed);

            replica.shutdown();
            drop(proxy);
            primary.shutdown();
            std::fs::remove_dir_all(&primary_dir).ok();
            std::fs::remove_dir_all(&replica_dir).ok();
        }
    }
}

/// Partition failover, observed continuously: the old primary fences
/// itself (structured `lease_lost` refusals) before any replica's
/// promote window elapses, a replica promotes at a higher generation,
/// and when the old primary can see the winner it demotes itself and
/// rejoins as a replica — zero human operations, and at no sampled
/// instant are two nodes simultaneously willing to ack writes.
#[test]
fn partitioned_primary_fences_then_rejoins_as_replica() {
    let primary_dir = tmp_dir("part-primary");
    let r1_dir = tmp_dir("part-r1");
    let r2_dir = tmp_dir("part-r2");
    let primary_addr = free_addr();
    let r1_addr = free_addr();
    let r2_addr = free_addr();

    // The primary is supervised with its replicas as peers (probation:
    // it boots fenced until it has probed them). Replicas reach the
    // primary through ONE shared proxy — the partition we will cut —
    // while inter-node probes use the real addresses.
    let primary = ServerHandle::spawn(supervised(
        ServerConfig {
            addr: primary_addr.clone(),
            accept_replicas: true,
            ..durable_config(&primary_dir)
        },
        10,
        vec![r1_addr.clone(), r2_addr.clone()],
    ));
    let proxy = ChaosProxy::spawn(primary_addr.parse().unwrap(), ChaosPlan::default()).unwrap();
    let r1 = ServerHandle::spawn(supervised(
        ServerConfig {
            addr: r1_addr.clone(),
            replica_of: Some(proxy.addr().to_string()),
            ..durable_config(&r1_dir)
        },
        1,
        vec![r2_addr.clone()],
    ));
    let r2 = ServerHandle::spawn(supervised(
        ServerConfig {
            addr: r2_addr.clone(),
            replica_of: Some(proxy.addr().to_string()),
            ..durable_config(&r2_dir)
        },
        2,
        vec![r1_addr.clone()],
    ));

    // Probation lifts once the primary has seen its peers healthy.
    wait_for(
        "primary to leave probation",
        Duration::from_secs(10),
        || {
            let h = health_at(&primary_addr)?;
            (protocol::get_str(&h, "status") == Some("ok")).then_some(())
        },
    );

    let mut on_primary = Client::connect(&primary.addr);
    ok_data(&on_primary.call(&load_line()));
    for mutation in mutation_bodies() {
        ok_data(&on_primary.call(&format!(r#"{{"op": "mutate", "mutation": {mutation}}}"#)));
    }
    let want = fingerprint(&health(&mut on_primary));
    for addr in [&r1_addr, &r2_addr] {
        wait_for("replica to converge", Duration::from_secs(10), || {
            let h = health_at(addr)?;
            (protocol::get_u64(&h, "fingerprint") == Some(want)).then_some(())
        });
    }

    // Continuous split-brain watch: sample every node's health and
    // count, per sampling round, how many would ack a write (primary
    // role, not fenced). The rounds are fast (<10ms) against windows
    // of >=100ms, so an overlap would be caught.
    let watch_stop = Arc::new(AtomicBool::new(false));
    let watch = {
        let stop = Arc::clone(&watch_stop);
        let addrs = [primary_addr.clone(), r1_addr.clone(), r2_addr.clone()];
        std::thread::spawn(move || {
            let mut max_writable = 0usize;
            let mut last_gen: [u64; 3] = [0; 3];
            let mut regressions = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let mut writable = 0usize;
                for (i, addr) in addrs.iter().enumerate() {
                    let Some(h) = health_at(addr) else { continue };
                    let role = protocol::get_str(&h, "role");
                    let status = protocol::get_str(&h, "status");
                    if role == Some("primary") && status != Some("fenced") {
                        writable += 1;
                    }
                    if let Some(generation) = protocol::get_u64(&h, "generation") {
                        if generation < last_gen[i] {
                            regressions += 1;
                        }
                        last_gen[i] = generation;
                    }
                }
                max_writable = max_writable.max(writable);
                std::thread::sleep(Duration::from_millis(5));
            }
            (max_writable, regressions)
        })
    };

    // Cut the replication path. Probes still flow on the real
    // addresses, which is exactly the asymmetric case the fence
    // ordering must survive.
    proxy.partition(true);

    // The old primary fences itself and refuses writes structurally.
    wait_for("old primary to self-fence", Duration::from_secs(10), || {
        let denied = Client::connect(&primary_addr).call(
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 1, "capacity": 2}}}"#,
        );
        if protocol::get(&denied, "ok") == Some(&Value::Bool(false)) {
            let error = err_body(&denied);
            (protocol::get_str(error, "code") == Some("lease_lost")).then_some(())
        } else {
            None
        }
    });

    // r1 (lower node id, equal offset) promotes at a higher generation.
    wait_for("r1 to self-promote", Duration::from_secs(15), || {
        let h = health_at(&r1_addr)?;
        (protocol::get_str(&h, "role") == Some("primary")
            && protocol::get_str(&h, "status") == Some("ok")
            && protocol::get_u64(&h, "generation") >= Some(1))
        .then_some(())
    });

    // The fenced old primary sees the senior generation via its peer
    // probes, demotes itself, and rejoins as a replica of the winner.
    wait_for(
        "old primary to demote and rejoin",
        Duration::from_secs(15),
        || {
            let h = health_at(&primary_addr)?;
            (protocol::get_str(&h, "role") == Some("replica")
                && protocol::get_str(&h, "primary_hint") == Some(r1_addr.as_str()))
            .then_some(())
        },
    );

    // No acked write was lost: the winner serves the exact pre-cut state.
    assert_eq!(
        protocol::get_u64(&health_at(&r1_addr).unwrap(), "fingerprint"),
        Some(want)
    );

    // A client still pointed at the deposed primary self-corrects: its
    // `read_only` rejection carries the winner as `primary_hint`.
    let denied = Client::connect(&primary_addr).call(
        r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 1, "capacity": 2}}}"#,
    );
    let error = err_body(&denied);
    assert_eq!(protocol::get_str(error, "code"), Some("read_only"));
    assert_eq!(
        protocol::get_str(error, "primary_hint"),
        Some(r1_addr.as_str())
    );
    let mut client = RetryClient::new(
        primary_addr.clone(),
        ClientConfig {
            request_timeout: Duration::from_secs(20),
            max_retries: 30,
            seed: 5,
            ..ClientConfig::default()
        },
    );
    let mutation: Value =
        serde_json::from_str(r#"{"SetCapacity": {"side": "User", "id": 1, "capacity": 2}}"#)
            .unwrap();
    client.mutate(mutation).expect("client follows the hint");
    assert_eq!(client.current_addr(), r1_addr.as_str());

    // Everyone converges on the new primary's state — including the
    // deposed primary, now streaming as a replica.
    let new_want = fingerprint(&health_at(&r1_addr).unwrap());
    for addr in [&primary_addr, &r2_addr] {
        wait_for("cluster to reconverge", Duration::from_secs(20), || {
            let h = health_at(addr)?;
            (protocol::get_u64(&h, "fingerprint") == Some(new_want)
                && protocol::get_str(&h, "role") == Some("replica"))
            .then_some(())
        });
    }

    watch_stop.store(true, Ordering::SeqCst);
    let (max_writable, regressions) = watch.join().unwrap();
    assert!(
        max_writable <= 1,
        "split brain: {max_writable} nodes were simultaneously willing to ack writes"
    );
    assert_eq!(regressions, 0, "a node's generation went backwards");

    // The deposed node records its own fencing and demotion.
    let stats = Client::connect(&primary_addr).call(r#"{"op": "stats"}"#);
    let server = protocol::get(ok_data(&stats), "server").unwrap().clone();
    assert!(protocol::get_u64(&server, "sup_fenced") >= Some(1));
    assert!(protocol::get_u64(&server, "sup_demotions") >= Some(1));

    r2.shutdown();
    r1.shutdown();
    primary.shutdown();
}

/// Satellite: a retry that straddles the promotion. The client's ack is
/// cut after the primary applied (and shipped) the mutation; the
/// primary then dies; the client's resend — same `(client_id, seq)` —
/// lands on the self-promoted replica, whose dedup table was rebuilt
/// from the shipped WAL, and is answered as a duplicate instead of
/// double-applied.
#[test]
fn ack_lost_retry_across_promotion_applies_exactly_once() {
    let primary_dir = tmp_dir("straddle-primary");
    let replica_dir = tmp_dir("straddle-replica");
    let primary_addr = free_addr();

    // Client traffic reaches the primary through a chaos proxy that
    // cuts the SECOND mutate ack (the first `"delta"` line passes, the
    // budget is then exhausted and every later one cuts). The primary
    // advertises the proxy address, so hint-following clients route
    // through it.
    let plan = ChaosPlan {
        seed: 0x5eed,
        server_to_client: LinePolicy {
            cut_after_matching: Some((r#""delta""#.to_string(), 1)),
            ..LinePolicy::default()
        },
        ..ChaosPlan::default()
    };
    let proxy = ChaosProxy::spawn(primary_addr.parse().unwrap(), plan).unwrap();
    let primary = ServerHandle::spawn(ServerConfig {
        addr: primary_addr.clone(),
        accept_replicas: true,
        supervise: true,
        lease_interval_ms: 50,
        missed_leases: 2,
        node_id: Some(10),
        advertise: Some(proxy.addr().to_string()),
        ..durable_config(&primary_dir)
    });
    let replica = ServerHandle::spawn(ServerConfig {
        replica_of: Some(primary_addr.clone()),
        supervise: true,
        lease_interval_ms: 50,
        missed_leases: 2,
        node_id: Some(1),
        ..durable_config(&replica_dir)
    });

    let mut on_primary = Client::connect(&primary_addr);
    ok_data(&on_primary.call(&load_line()));
    wait_for("replica to attach", Duration::from_secs(10), || {
        let h = health_at(&replica.addr)?;
        (protocol::get_u64(&h, "epoch") == Some(0)).then_some(())
    });

    // The client is seeded at the replica: its first write is refused
    // `read_only` with the primary's advertised (proxy) address as the
    // hint, which it follows.
    let mut client = RetryClient::new(
        replica.addr.clone(),
        ClientConfig {
            request_timeout: Duration::from_secs(30),
            max_retries: 60,
            backoff_cap: Duration::from_millis(100),
            seed: 3,
            client_id: "straddler".to_string(),
            ..ClientConfig::default()
        },
    );
    let m1: Value =
        serde_json::from_str(r#"{"SetCapacity": {"side": "User", "id": 0, "capacity": 2}}"#)
            .unwrap();
    let applied = client.mutate(m1).expect("first keyed mutate lands");
    assert!(protocol::get_u64(&applied, "epoch").is_some());
    assert_eq!(client.current_addr(), proxy.addr().to_string().as_str());

    // Second keyed mutate: the primary applies + ships it, but the ack
    // never reaches the client. The client keeps retrying (every resend
    // through the proxy is answered from the primary's dedup cache —
    // and cut again). Run it on its own thread while we kill the
    // primary under it.
    let m2: Value =
        serde_json::from_str(r#"{"SetCapacity": {"side": "Event", "id": 1, "capacity": 3}}"#)
            .unwrap();
    let straddle = std::thread::spawn(move || {
        let result = client.mutate(m2);
        (result, client.stats(), client.current_addr().to_string())
    });

    // Wait until the mutation has been applied AND shipped (the replica
    // reaches epoch 2: load=0, m1=1, m2=2), then crash the primary.
    wait_for("m2 to reach the replica", Duration::from_secs(15), || {
        let h = health_at(&replica.addr)?;
        (protocol::get_u64(&h, "epoch") == Some(2)).then_some(())
    });
    drop(on_primary);
    primary.crash();

    // Unattended: the replica's lease expires and it promotes itself.
    wait_for("replica to self-promote", Duration::from_secs(15), || {
        let h = health_at(&replica.addr)?;
        (protocol::get_str(&h, "role") == Some("primary")
            && protocol::get_str(&h, "status") == Some("ok"))
        .then_some(())
    });

    let (result, stats, final_addr) = straddle.join().unwrap();
    let replay = result.expect("straddling retry succeeds after failover");
    assert_eq!(
        protocol::get(&replay, "deduped"),
        Some(&Value::Bool(true)),
        "resend was answered by application, not the shipped dedup table: {replay:?}"
    );
    assert_eq!(final_addr, replica.addr, "retry did not land on the winner");
    assert!(stats.redirects >= 1, "{stats:?}");

    // Exactly once: the promoted node's epoch counts each mutation one
    // time (a double-apply would read 3).
    let h = health_at(&replica.addr).unwrap();
    assert_eq!(protocol::get_u64(&h, "epoch"), Some(2));

    replica.shutdown();
    drop(proxy);
}

/// Satellite: even with no supervision anywhere, a replica knows its
/// upstream and hands it out as `primary_hint` on `read_only`
/// rejections, so a client misconfigured to write at the replica
/// self-corrects in one hop.
#[test]
fn unsupervised_replica_hints_its_primary_to_misconfigured_clients() {
    let primary_dir = tmp_dir("hint-primary");
    let replica_dir = tmp_dir("hint-replica");
    let primary = ServerHandle::spawn(ServerConfig {
        accept_replicas: true,
        ..durable_config(&primary_dir)
    });
    let replica = ServerHandle::spawn(ServerConfig {
        replica_of: Some(primary.addr.clone()),
        ..durable_config(&replica_dir)
    });

    let mut on_primary = Client::connect(&primary.addr);
    ok_data(&on_primary.call(&load_line()));
    wait_for("replica to attach", Duration::from_secs(10), || {
        let h = health_at(&replica.addr)?;
        (protocol::get_u64(&h, "epoch") == Some(0)).then_some(())
    });

    // The raw rejection names the primary.
    let denied = Client::connect(&replica.addr).call(
        r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 0, "capacity": 2}}}"#,
    );
    let error = err_body(&denied);
    assert_eq!(protocol::get_str(error, "code"), Some("read_only"));
    assert_eq!(
        protocol::get_str(error, "primary_hint"),
        Some(primary.addr.as_str())
    );
    // Health exposes the same topology.
    let h = health_at(&replica.addr).unwrap();
    assert_eq!(
        protocol::get_str(&h, "primary_hint"),
        Some(primary.addr.as_str())
    );

    // A retrying client seeded at the replica lands the write on the
    // primary in one redirect.
    let mut client = RetryClient::new(replica.addr.clone(), ClientConfig::default());
    let mutation: Value =
        serde_json::from_str(r#"{"SetCapacity": {"side": "User", "id": 0, "capacity": 2}}"#)
            .unwrap();
    let applied = client.mutate(mutation).expect("hint self-corrects");
    assert_eq!(protocol::get_u64(&applied, "epoch"), Some(1));
    assert_eq!(client.current_addr(), primary.addr.as_str());
    assert_eq!(client.stats().redirects, 1, "{:?}", client.stats());

    replica.shutdown();
    primary.shutdown();
}
