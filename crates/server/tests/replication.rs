//! End-to-end replication tests: live streaming into a read-only
//! follower, the deterministic crash-point sweep (cut the stream at
//! every record boundary, promote, check the promoted node serves the
//! exact acked prefix bit-identically), generation fencing of a stale
//! primary, `retry_after_ms` + the retrying client under overload, and
//! a property check that client-side retry storms never double-apply a
//! keyed mutation.

use geacc_server::chaos::{ChaosPlan, ChaosProxy, LinePolicy};
use geacc_server::client::{ClientConfig, RetryClient};
use geacc_server::{protocol, recovery, wal, MetricsSnapshot, Server, ServerConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A blocking line-protocol client (same shape as tests/server.rs).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::from_str(line.trim()).expect("response is JSON")
    }

    fn call(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn ok_data(response: &Value) -> &Value {
    assert_eq!(
        protocol::get(response, "ok"),
        Some(&Value::Bool(true)),
        "expected success, got {response:?}"
    );
    protocol::get(response, "data").expect("ok response has data")
}

fn err_body(response: &Value) -> &Value {
    assert_eq!(
        protocol::get(response, "ok"),
        Some(&Value::Bool(false)),
        "expected error, got {response:?}"
    );
    protocol::get(response, "error").expect("error body")
}

struct ServerHandle {
    addr: String,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<MetricsSnapshot>,
}

impl ServerHandle {
    fn spawn(config: ServerConfig) -> ServerHandle {
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle();
        let thread = std::thread::spawn(move || server.run().expect("server run"));
        ServerHandle { addr, stop, thread }
    }

    fn shutdown(self) -> MetricsSnapshot {
        // Structured shutdown if the socket still answers, stop flag
        // either way (a fenced replica loop only watches the flag).
        if let Ok(stream) = TcpStream::connect(&self.addr) {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            let _ = writer.write_all(b"{\"op\": \"shutdown\"}\n");
            let mut line = String::new();
            let _ = BufReader::new(stream).read_line(&mut line);
        }
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        self.thread.join().expect("server thread")
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("geacc-repl-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        default_timeout_ms: 10_000,
        wal_dir: Some(dir.to_path_buf()),
        fsync: geacc_server::FsyncPolicy::Always,
        ..ServerConfig::default()
    }
}

fn load_line() -> String {
    let inst = geacc_core::toy::table1_instance();
    format!(
        r#"{{"op": "load", "instance": {}}}"#,
        serde_json::to_string(&inst).unwrap()
    )
}

/// Branch-and-bound's worst case (narrow similarity band, dense
/// conflicts, deep trees): a budgeted Prune-GEACC solve reliably
/// occupies a worker for its whole timeout (same shape tests/server.rs
/// uses for its overload test).
fn pathological_load_line() -> String {
    use geacc_core::{ConflictGraph, EventId, Instance, SimMatrix};
    let (nv, nu) = (8usize, 24usize);
    let values: Vec<f64> = (0..nv * nu)
        .map(|i| 0.55 + 0.01 * ((i * 37 % 97) as f64 / 97.0))
        .collect();
    let conflicts = ConflictGraph::from_pairs(
        nv,
        (0..nv as u32).flat_map(|i| {
            (i + 1..nv as u32)
                .filter(move |j| (i * 7 + j * 13) % 3 != 0)
                .map(move |j| (EventId(i), EventId(j)))
        }),
    );
    let inst = Instance::from_matrix(
        SimMatrix::from_flat(nv, nu, values),
        vec![6; nv],
        vec![8; nu],
        conflicts,
    )
    .unwrap();
    format!(
        r#"{{"op": "load", "instance": {}}}"#,
        serde_json::to_string(&inst).unwrap()
    )
}

/// The mutation stream every test replays: valid on the toy instance.
fn mutation_bodies() -> Vec<&'static str> {
    vec![
        r#"{"AddConflict": {"a": 0, "b": 1}}"#,
        r#"{"SetCapacity": {"side": "User", "id": 0, "capacity": 1}}"#,
        r#"{"SetCapacity": {"side": "Event", "id": 1, "capacity": 4}}"#,
    ]
}

/// Poll `probe` until it returns Some or the deadline passes.
fn wait_for<T>(what: &str, timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn health(client: &mut Client) -> Value {
    ok_data(&client.call(r#"{"op": "health"}"#)).clone()
}

fn fingerprint(health: &Value) -> u64 {
    protocol::get_u64(health, "fingerprint").expect("health has fingerprint")
}

/// Replica streams the primary's records live, matches its state
/// exactly, and refuses writes with a structured `read_only` error.
#[test]
fn replica_follows_live_and_rejects_writes() {
    let primary_dir = tmp_dir("live-primary");
    let replica_dir = tmp_dir("live-replica");
    let primary = ServerHandle::spawn(ServerConfig {
        accept_replicas: true,
        ..durable_config(&primary_dir)
    });
    let replica = ServerHandle::spawn(ServerConfig {
        replica_of: Some(primary.addr.clone()),
        ..durable_config(&replica_dir)
    });

    let mut on_primary = Client::connect(&primary.addr);
    ok_data(&on_primary.call(&load_line()));
    for mutation in mutation_bodies() {
        ok_data(&on_primary.call(&format!(r#"{{"op": "mutate", "mutation": {mutation}}}"#)));
    }
    let primary_health = health(&mut on_primary);
    let want = fingerprint(&primary_health);

    let mut on_replica = Client::connect(&replica.addr);
    wait_for("replica to converge", Duration::from_secs(10), || {
        let h = health(&mut on_replica);
        (protocol::get_u64(&h, "fingerprint") == Some(want)).then_some(())
    });

    let h = health(&mut on_replica);
    assert_eq!(protocol::get_str(&h, "status"), Some("replica"));
    assert_eq!(protocol::get_str(&h, "role"), Some("replica"));
    assert_eq!(protocol::get_u64(&h, "lag_records"), Some(0));
    assert_eq!(protocol::get_u64(&h, "lag_bytes"), Some(0));
    assert_eq!(
        protocol::get_u64(&h, "epoch"),
        protocol::get_u64(&primary_health, "epoch")
    );

    // Reads serve; writes refuse with a structured error.
    let query = on_replica.call(r#"{"op": "query_user", "user": 0}"#);
    assert!(protocol::get(ok_data(&query), "events").is_some());
    let denied = on_replica.call(
        r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 1, "capacity": 2}}}"#,
    );
    assert_eq!(
        protocol::get_str(err_body(&denied), "code"),
        Some("read_only")
    );

    // The stats section agrees with health on both roles.
    let stats = on_replica.call(r#"{"op": "stats"}"#);
    let replication = protocol::get(ok_data(&stats), "replication").unwrap();
    assert_eq!(protocol::get_str(replication, "role"), Some("replica"));
    assert_eq!(protocol::get_u64(replication, "lag_records"), Some(0));
    let stats = on_primary.call(r#"{"op": "stats"}"#);
    let replication = protocol::get(ok_data(&stats), "replication").unwrap();
    assert_eq!(protocol::get_str(replication, "role"), Some("primary"));
    assert_eq!(protocol::get_u64(replication, "replicas"), Some(1));

    replica.shutdown();
    primary.shutdown();
}

/// A replica that joins *after* the primary has state catches up via
/// the snapshot path, then streams the tail.
#[test]
fn late_replica_catches_up_via_snapshot() {
    let primary_dir = tmp_dir("snap-primary");
    let replica_dir = tmp_dir("snap-replica");
    let primary = ServerHandle::spawn(ServerConfig {
        accept_replicas: true,
        ..durable_config(&primary_dir)
    });
    let mut on_primary = Client::connect(&primary.addr);
    ok_data(&on_primary.call(&load_line()));
    for mutation in mutation_bodies() {
        ok_data(&on_primary.call(&format!(r#"{{"op": "mutate", "mutation": {mutation}}}"#)));
    }
    let want = fingerprint(&health(&mut on_primary));

    let replica = ServerHandle::spawn(ServerConfig {
        replica_of: Some(primary.addr.clone()),
        ..durable_config(&replica_dir)
    });
    let mut on_replica = Client::connect(&replica.addr);
    wait_for("snapshot catch-up", Duration::from_secs(10), || {
        let h = health(&mut on_replica);
        (protocol::get_u64(&h, "fingerprint") == Some(want)).then_some(())
    });

    // And it keeps following: one more mutation flows through.
    ok_data(&on_primary.call(
        r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 2, "capacity": 3}}}"#,
    ));
    let want = fingerprint(&health(&mut on_primary));
    wait_for("post-snapshot tail", Duration::from_secs(10), || {
        let h = health(&mut on_replica);
        (protocol::get_u64(&h, "fingerprint") == Some(want)).then_some(())
    });

    replica.shutdown();
    primary.shutdown();
}

/// The tentpole acceptance sweep: for every record boundary k, cut the
/// replication stream after exactly k shipped records (the chaos cut
/// budget is global, so reconnects cannot sneak past it), promote the
/// replica, and check the promoted node serves precisely the replay of
/// the first k acked records — with a WAL that is bit-identical to the
/// primary's first k-record prefix.
#[test]
fn crash_point_sweep_promotes_the_exact_acked_prefix() {
    let mutations = mutation_bodies();
    let total_records = 1 + mutations.len() as u64; // load + mutations

    for k in 1..=total_records {
        let primary_dir = tmp_dir(&format!("sweep-primary-{k}"));
        let replica_dir = tmp_dir(&format!("sweep-replica-{k}"));
        let primary = ServerHandle::spawn(ServerConfig {
            accept_replicas: true,
            ..durable_config(&primary_dir)
        });

        // The proxy sits on the replica→primary path and cuts the
        // primary→replica direction before the (k+1)th record line.
        let plan = ChaosPlan {
            seed: 0xC0FFEE ^ k,
            server_to_client: LinePolicy {
                cut_after_matching: Some((r#""repl":"record""#.to_string(), k)),
                ..LinePolicy::default()
            },
            ..ChaosPlan::default()
        };
        let proxy = ChaosProxy::spawn(primary.addr.parse().unwrap(), plan).unwrap();
        let replica = ServerHandle::spawn(ServerConfig {
            replica_of: Some(proxy.addr().to_string()),
            ..durable_config(&replica_dir)
        });

        // Wait until the replica is attached before writing, so its WAL
        // is a byte prefix of the primary's (no snapshot shortcut).
        let mut on_replica = Client::connect(&replica.addr);
        wait_for("replica attach", Duration::from_secs(10), || {
            let h = health(&mut on_replica);
            (protocol::get(&h, "connected") == Some(&Value::Bool(true))).then_some(())
        });

        let mut on_primary = Client::connect(&primary.addr);
        ok_data(&on_primary.call(&load_line()));
        for mutation in &mutations {
            ok_data(&on_primary.call(&format!(r#"{{"op": "mutate", "mutation": {mutation}}}"#)));
        }

        // Record boundaries come from the primary's own WAL.
        let primary_wal = std::fs::read(recovery::wal_path(&primary_dir)).unwrap();
        let scan = wal::scan(&primary_wal).unwrap();
        assert_eq!(scan.records.len() as u64, total_records);
        let boundary = if k == total_records {
            scan.valid_len
        } else {
            scan.records[k as usize].offset
        };

        wait_for(
            &format!("replica to stall at boundary {k}"),
            Duration::from_secs(10),
            || {
                let stats = on_replica.call(r#"{"op": "stats"}"#);
                let replication = protocol::get(ok_data(&stats), "replication")?.clone();
                (protocol::get_u64(&replication, "remote_offset") == Some(boundary)).then_some(())
            },
        );

        // Promote. The replica becomes a primary at a higher generation
        // and stops following.
        let promoted = ok_data(&on_replica.call(r#"{"op": "promote"}"#)).clone();
        assert_eq!(
            protocol::get(&promoted, "promoted"),
            Some(&Value::Bool(true))
        );
        assert!(protocol::get_u64(&promoted, "generation") >= Some(1));

        // The promoted node serves exactly the replay of the acked
        // k-record prefix.
        let prefix: Vec<_> = scan.records[..k as usize]
            .iter()
            .map(|r| r.record.clone())
            .collect();
        let expected = recovery::replay_prefix(&prefix, geacc_core::DynamicConfig::default())
            .expect("prefix starts with load");
        let h = health(&mut on_replica);
        assert_eq!(protocol::get_str(&h, "role"), Some("primary"));
        assert_eq!(
            protocol::get_u64(&h, "fingerprint"),
            Some(expected.arranger.fingerprint()),
            "promoted state diverged from replay of the first {k} records"
        );
        assert_eq!(
            protocol::get_u64(&h, "epoch"),
            Some(expected.arranger.epoch())
        );

        // Bit-identical WAL prefix: the replica's log is the primary's
        // first `boundary` bytes, verbatim.
        let replica_wal = std::fs::read(recovery::wal_path(&replica_dir)).unwrap();
        assert_eq!(
            replica_wal,
            primary_wal[..boundary as usize],
            "replica WAL is not a byte-identical prefix at k={k}"
        );

        // And it accepts writes now.
        let resumed = on_replica.call(
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 3, "capacity": 2}}}"#,
        );
        ok_data(&resumed);

        replica.shutdown();
        drop(proxy);
        primary.shutdown();
        std::fs::remove_dir_all(&primary_dir).ok();
        std::fs::remove_dir_all(&replica_dir).ok();
    }
}

/// Generation fencing: once a replica has been promoted, pointing its
/// data directory back at the stale old primary is refused at the
/// handshake, and its state stays intact.
#[test]
fn stale_primary_is_fenced_after_promotion() {
    let primary_dir = tmp_dir("fence-primary");
    let replica_dir = tmp_dir("fence-replica");
    let primary = ServerHandle::spawn(ServerConfig {
        accept_replicas: true,
        ..durable_config(&primary_dir)
    });
    let replica = ServerHandle::spawn(ServerConfig {
        replica_of: Some(primary.addr.clone()),
        ..durable_config(&replica_dir)
    });

    let mut on_primary = Client::connect(&primary.addr);
    ok_data(&on_primary.call(&load_line()));
    ok_data(&on_primary.call(
        r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 0, "capacity": 2}}}"#,
    ));
    let want = fingerprint(&health(&mut on_primary));

    let mut on_replica = Client::connect(&replica.addr);
    wait_for("replica to converge", Duration::from_secs(10), || {
        let h = health(&mut on_replica);
        (protocol::get_u64(&h, "fingerprint") == Some(want)).then_some(())
    });
    let promoted = ok_data(&on_replica.call(r#"{"op": "promote"}"#)).clone();
    assert_eq!(
        protocol::get(&promoted, "promoted"),
        Some(&Value::Bool(true))
    );
    let promoted_generation = protocol::get_u64(&promoted, "generation").unwrap();
    replica.shutdown();

    // Restart the promoted node's directory as a replica of the stale
    // primary: its persisted generation outranks the primary's, so the
    // handshake is refused and nothing is applied or reset.
    let rejoined = ServerHandle::spawn(ServerConfig {
        replica_of: Some(primary.addr.clone()),
        ..durable_config(&replica_dir)
    });
    let mut on_rejoined = Client::connect(&rejoined.addr);
    wait_for("fencing to trip", Duration::from_secs(10), || {
        let stats = on_rejoined.call(r#"{"op": "stats"}"#);
        let server = protocol::get(ok_data(&stats), "server")?.clone();
        (protocol::get_u64(&server, "repl_fenced") >= Some(1)).then_some(())
    });
    let h = health(&mut on_rejoined);
    assert_eq!(protocol::get(&h, "connected"), Some(&Value::Bool(false)));
    assert_eq!(protocol::get_u64(&h, "fingerprint"), Some(want));
    assert_eq!(
        protocol::get_u64(&h, "generation"),
        Some(promoted_generation)
    );

    rejoined.shutdown();
    primary.shutdown();
}

/// `overloaded` rejections carry the configured `retry_after_ms` hint,
/// and the retrying client rides them out to a successful mutate.
#[test]
fn retry_client_rides_out_overload_with_the_server_hint() {
    let handle = ServerHandle::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        default_timeout_ms: 10_000,
        retry_after_ms: 7,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&handle.addr);
    ok_data(&client.call(&pathological_load_line()));

    // Occupy the single worker with a budgeted solve, then fill the
    // depth-1 queue with a mutate, so the next queued arrival is
    // rejected immediately. (Reads like `stats` can't exercise this any
    // more — the event loop answers them inline, never queueing them.)
    client.send(r#"{"op": "solve", "id": 1, "algorithm": "prune", "timeout_ms": 700}"#);
    std::thread::sleep(Duration::from_millis(100));
    let mut filler = Client::connect(&handle.addr);
    filler.send(
        r#"{"op": "mutate", "id": 2, "mutation": {"SetCapacity": {"side": "User", "id": 1, "capacity": 2}}}"#,
    );
    std::thread::sleep(Duration::from_millis(50));

    let mut probe = Client::connect(&handle.addr);
    let rejected = probe.call(
        r#"{"op": "mutate", "id": 3, "mutation": {"SetCapacity": {"side": "User", "id": 2, "capacity": 2}}}"#,
    );
    let error = err_body(&rejected);
    assert_eq!(protocol::get_str(error, "code"), Some("overloaded"));
    assert_eq!(protocol::get_u64(error, "retry_after_ms"), Some(7));

    // The retrying client backs off on the hint and lands the mutation
    // once the worker frees up.
    let mut retry = RetryClient::new(
        handle.addr.clone(),
        ClientConfig {
            seed: 42,
            ..ClientConfig::default()
        },
    );
    let mutation: Value =
        serde_json::from_str(r#"{"SetCapacity": {"side": "User", "id": 0, "capacity": 3}}"#)
            .unwrap();
    let applied = retry.mutate(mutation).expect("retries ride out overload");
    assert!(protocol::get_u64(&applied, "epoch").is_some());
    assert!(
        retry.stats().retries >= 1,
        "expected at least one retry, stats: {:?}",
        retry.stats()
    );

    // Drain the in-flight responses so shutdown is orderly.
    ok_data(&filler.recv());
    client.recv();
    handle.shutdown();
}

/// Chaos duplication on the replication stream: record lines delivered
/// twice are applied once (the replica skips offsets below its cursor),
/// so the follower still converges to the primary's exact state.
#[test]
fn duplicated_record_lines_apply_once() {
    let primary_dir = tmp_dir("dup-primary");
    let replica_dir = tmp_dir("dup-replica");
    let primary = ServerHandle::spawn(ServerConfig {
        accept_replicas: true,
        ..durable_config(&primary_dir)
    });
    let plan = ChaosPlan {
        seed: 7,
        server_to_client: LinePolicy {
            dup_pct: 60,
            ..LinePolicy::default()
        },
        ..ChaosPlan::default()
    };
    let proxy = ChaosProxy::spawn(primary.addr.parse().unwrap(), plan).unwrap();
    let replica = ServerHandle::spawn(ServerConfig {
        replica_of: Some(proxy.addr().to_string()),
        ..durable_config(&replica_dir)
    });

    // Attach before writing so the replica's WAL is a byte prefix of
    // the primary's (no snapshot shortcut hiding the Load record).
    let mut on_replica = Client::connect(&replica.addr);
    wait_for("replica attach", Duration::from_secs(10), || {
        let h = health(&mut on_replica);
        (protocol::get(&h, "connected") == Some(&Value::Bool(true))).then_some(())
    });

    let mut on_primary = Client::connect(&primary.addr);
    ok_data(&on_primary.call(&load_line()));
    for mutation in mutation_bodies() {
        ok_data(&on_primary.call(&format!(r#"{{"op": "mutate", "mutation": {mutation}}}"#)));
    }
    let want = fingerprint(&health(&mut on_primary));

    wait_for(
        "replica to converge through dups",
        Duration::from_secs(10),
        || {
            let h = health(&mut on_replica);
            (protocol::get_u64(&h, "fingerprint") == Some(want)).then_some(())
        },
    );
    // The WAL stayed a clean prefix (each record applied exactly once).
    let replica_wal = std::fs::read(recovery::wal_path(&replica_dir)).unwrap();
    let primary_wal = std::fs::read(recovery::wal_path(&primary_dir)).unwrap();
    assert_eq!(replica_wal, primary_wal);

    replica.shutdown();
    drop(proxy);
    primary.shutdown();
}

/// Property: replaying every keyed mutation 0–3 extra times (a client
/// retry storm after reconnects) yields exactly the state of the
/// retry-free run — the dedup table absorbs the repeats.
mod dedup_storm {
    use super::*;
    use geacc_core::parallel::Threads;
    use geacc_server::{ServerMetrics, Service};
    use proptest::prelude::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn service() -> Service {
        Service::new(
            Arc::new(ServerMetrics::default()),
            Arc::new(AtomicBool::new(false)),
            Threads::single(),
            0.2,
        )
    }

    fn call(svc: &Service, line: &str) -> Value {
        let req = protocol::parse_request(line).unwrap();
        svc.handle(&req, Instant::now() + Duration::from_secs(5))
            .unwrap_or_else(|e| panic!("{line} failed: {e:?}"))
    }

    fn mutation_json(choice: u8) -> String {
        // Capacity churn over the toy ids; all apply cleanly or fail
        // deterministically, either way identically on both runs.
        let side = if choice % 2 == 0 { "User" } else { "Event" };
        let id = (choice / 2) % 3;
        let capacity = 1 + (choice % 4);
        format!(r#"{{"SetCapacity": {{"side": "{side}", "id": {id}, "capacity": {capacity}}}}}"#)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn retry_storms_never_double_apply(
            choices in proptest::collection::vec(0u8..24, 1..12),
            repeats in proptest::collection::vec(0usize..4, 1..12),
        ) {
            let clean = service();
            let stormy = service();
            call(&clean, &super::load_line());
            call(&stormy, &super::load_line());

            for (i, choice) in choices.iter().enumerate() {
                let mutation = mutation_json(*choice);
                let line = format!(
                    r#"{{"op": "mutate", "client_id": "storm", "seq": {i}, "mutation": {mutation}}}"#
                );
                let clean_response = call(&clean, &line);
                // The stormy run sends the same keyed request 1 + r
                // times, as a client that lost the ack would. Replays
                // answer from the dedup cache with the original ack,
                // byte for byte.
                let r = repeats[i % repeats.len()];
                let first = call(&stormy, &line);
                for _ in 0..r {
                    let replayed = call(&stormy, &line);
                    prop_assert_eq!(&replayed, &first, "replayed ack diverged");
                }
                prop_assert_eq!(
                    protocol::get_u64(&first, "epoch"),
                    protocol::get_u64(&clean_response, "epoch")
                );
            }

            let clean_health = call(&clean, r#"{"op": "health"}"#);
            let stormy_health = call(&stormy, r#"{"op": "health"}"#);
            prop_assert_eq!(
                protocol::get_u64(&stormy_health, "epoch"),
                protocol::get_u64(&clean_health, "epoch"),
                "retry storm changed the epoch"
            );
            prop_assert_eq!(
                protocol::get_u64(&stormy_health, "fingerprint"),
                protocol::get_u64(&clean_health, "fingerprint"),
                "retry storm changed the arrangement"
            );
        }
    }
}
