//! Property tests for the durability contract, driven by the
//! deterministic fault-injecting sink: crash the "disk" after every
//! possible byte budget and check that what recovery sees is always
//! either a clean prefix or a truncatable torn tail — never corruption,
//! never a panic — and that every *acked* record survives.
//!
//! A separate property flips single bits in a clean log to check the
//! detection side: scan either reports structured corruption with an
//! offset, or degrades to a strict prefix of the original records.

use geacc_core::{toy, DynamicConfig, IncrementalArranger, Mutation, Side};
use geacc_server::recovery;
use geacc_server::wal::{scan, FaultSink, FsyncPolicy, WalRecord, WalWriter};
use proptest::prelude::*;

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    // Capacity churn around the toy instance's ids. Some ids fall out
    // of range on purpose: those mutations fail at apply time yet still
    // occupy WAL records, exercising recovery's skip path.
    (
        prop_oneof![Just(Side::User), Just(Side::Event)],
        0u32..4,
        1u32..5,
    )
        .prop_map(|(side, id, capacity)| Mutation::SetCapacity { side, id, capacity })
}

fn record_stream() -> impl Strategy<Value = Vec<WalRecord>> {
    proptest::collection::vec(mutation_strategy(), 1..20).prop_map(|mutations| {
        let mut records = vec![WalRecord::Load {
            instance: toy::table1_instance(),
        }];
        records.extend(
            mutations
                .into_iter()
                .map(|mutation| WalRecord::Mutation { mutation }),
        );
        records
    })
}

/// Append `records` into a sink that crashes after `budget` bytes.
/// Returns the bytes the "disk" kept and how many appends were acked.
fn crash_after(records: &[WalRecord], budget: usize) -> (Vec<u8>, usize) {
    let mut writer = WalWriter::with_sink(FaultSink::new(budget), FsyncPolicy::Always);
    let mut acked = 0;
    for record in records {
        match writer.append(record) {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    (writer.into_sink().bytes().to_vec(), acked)
}

/// Total encoded length of `records`, so strategies can place crash
/// points anywhere inside the stream.
fn encoded_len(records: &[WalRecord]) -> usize {
    let (bytes, _) = crash_after(records, usize::MAX);
    bytes.len()
}

proptest! {
    /// Every crash point yields a scannable log: the acked records are
    /// all in the valid prefix, anything past it is a truncatable torn
    /// tail, and scanning never reports corruption for a pure crash.
    #[test]
    fn every_crash_point_leaves_a_recoverable_log(
        records in record_stream(),
        cut in 0.0f64..1.0,
    ) {
        let total = encoded_len(&records);
        let budget = (total as f64 * cut) as usize;
        let (bytes, acked) = crash_after(&records, budget);

        let scanned = scan(&bytes).expect("a crash tears the tail, it never corrupts the middle");
        prop_assert!(
            scanned.records.len() >= acked,
            "acked {} records but only {} recovered",
            acked,
            scanned.records.len()
        );
        // The scan is exactly a prefix of what was appended: same
        // records, in order, nothing invented.
        for (got, want) in scanned.records.iter().zip(&records) {
            prop_assert_eq!(&got.record, want);
        }
        prop_assert_eq!(
            scanned.valid_len + scanned.truncated_bytes,
            bytes.len() as u64,
            "every byte is either valid prefix or truncatable tail"
        );
        // At most one record can be torn (the one mid-append), so the
        // scan recovers either the acked count or acked count + 1 when
        // the final frame landed fully before the budget ran out.
        prop_assert!(scanned.records.len() <= acked + 1);
    }

    /// End to end: write the crashed bytes as a real `wal.log`, boot
    /// recovery on the directory, and check the recovered arranger is
    /// bit-identical to replaying the recovered prefix locally.
    #[test]
    fn recovery_after_any_crash_matches_a_local_replay(
        records in record_stream(),
        cut in 0.0f64..1.0,
        case in 0u64..u64::MAX,
    ) {
        let total = encoded_len(&records);
        let budget = (total as f64 * cut) as usize;
        let (bytes, acked) = crash_after(&records, budget);

        let dir = std::env::temp_dir()
            .join("geacc-durability-prop")
            .join(format!("crash-{case:x}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(recovery::wal_path(&dir), &bytes).unwrap();

        let config = DynamicConfig { rebuild_drift_ratio: 0.2 };
        let outcome = recovery::recover(&dir, config);
        std::fs::remove_dir_all(&dir).ok();
        let recovered = outcome.expect("crash-torn logs always boot");

        prop_assert!(recovered.replayed as usize >= acked);
        let scanned = scan(&bytes).unwrap();
        prop_assert_eq!(recovered.replayed as usize, scanned.records.len());
        prop_assert_eq!(recovered.truncated_bytes, scanned.truncated_bytes);

        // Replay the same prefix through a fresh arranger and compare.
        if recovered.replayed == 0 {
            prop_assert!(recovered.session.is_none());
        } else {
            let session = recovered.session.expect("load record recovered");
            let mut local = IncrementalArranger::new(toy::table1_instance(), config);
            let mut local_skipped = 0u64;
            for record in &records[1..recovered.replayed as usize] {
                let WalRecord::Mutation { mutation } = record else {
                    panic!("stream is load + mutations");
                };
                // Out-of-range ids fail at append time and fail the
                // same way on replay; recovery skips them, so the
                // local shadow must too.
                if local.apply(mutation.clone()).is_err() {
                    local_skipped += 1;
                }
            }
            prop_assert_eq!(recovered.skipped, local_skipped);
            prop_assert_eq!(session.arranger.epoch(), local.epoch());
            prop_assert_eq!(
                session.arranger.max_sum().to_bits(),
                local.max_sum().to_bits(),
                "recovered MaxSum diverged from local replay"
            );
        }
    }

    /// Detection: flip one bit anywhere in a clean log. The scan must
    /// never panic, and must either report structured corruption (with
    /// an offset inside the log) or degrade to a strict prefix /
    /// reordering-free subset of the original records. Flips in the
    /// final frame may legitimately read as a torn tail.
    #[test]
    fn single_bit_flips_are_detected_or_truncated(
        records in record_stream(),
        position in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut bytes, appended) = crash_after(&records, usize::MAX);
        prop_assert_eq!(appended, records.len());
        let index = ((bytes.len() - 1) as f64 * position) as usize;
        bytes[index] ^= 1 << bit;

        match scan(&bytes) {
            Ok(scanned) => {
                // A flip can shift framing, but everything decoded must
                // be a prefix of the real stream followed by at most
                // one altered-but-checksummed record; we only demand
                // the decoded list never *exceeds* what was written.
                prop_assert!(scanned.records.len() <= records.len());
            }
            Err(corruption) => {
                prop_assert!(
                    corruption.offset <= bytes.len() as u64,
                    "corruption offset {} beyond log of {} bytes",
                    corruption.offset,
                    bytes.len()
                );
                prop_assert!(!corruption.detail.is_empty());
            }
        }
    }
}
