//! Live service metrics: lock-free counters and a log₂ latency
//! histogram, updated by worker threads on every request and read out as
//! a [`MetricsSnapshot`] by the `stats` op and the shutdown dump.
//!
//! Everything is `AtomicU64` with relaxed ordering: metrics are
//! monotone tallies, never used for synchronization, so torn cross-
//! counter reads (a snapshot taken mid-request) are acceptable and the
//! hot path costs one uncontended atomic add per counter.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// The wire operations the service understands, plus a bucket for
/// everything else (counted, then rejected with `unknown_op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Load,
    Mutate,
    QueryUser,
    QueryEvent,
    Stats,
    Solve,
    Snapshot,
    Restore,
    Health,
    Promote,
    Shutdown,
    Unknown,
}

/// All ops, in wire-name order; `Op as usize` indexes per-op counters.
pub const OPS: [Op; 12] = [
    Op::Load,
    Op::Mutate,
    Op::QueryUser,
    Op::QueryEvent,
    Op::Stats,
    Op::Solve,
    Op::Snapshot,
    Op::Restore,
    Op::Health,
    Op::Promote,
    Op::Shutdown,
    Op::Unknown,
];

impl Op {
    /// Parse a wire op name; anything unrecognized is [`Op::Unknown`].
    pub fn from_name(name: &str) -> Op {
        match name {
            "load" => Op::Load,
            "mutate" => Op::Mutate,
            "query_user" => Op::QueryUser,
            "query_event" => Op::QueryEvent,
            "stats" => Op::Stats,
            "solve" => Op::Solve,
            "snapshot" => Op::Snapshot,
            "restore" => Op::Restore,
            "health" => Op::Health,
            "promote" => Op::Promote,
            "shutdown" => Op::Shutdown,
            _ => Op::Unknown,
        }
    }

    /// The wire name (snapshot map key).
    pub fn name(self) -> &'static str {
        match self {
            Op::Load => "load",
            Op::Mutate => "mutate",
            Op::QueryUser => "query_user",
            Op::QueryEvent => "query_event",
            Op::Stats => "stats",
            Op::Solve => "solve",
            Op::Snapshot => "snapshot",
            Op::Restore => "restore",
            Op::Health => "health",
            Op::Promote => "promote",
            Op::Shutdown => "shutdown",
            Op::Unknown => "unknown",
        }
    }
}

/// Number of log₂ latency buckets: bucket 0 is sub-microsecond, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)` µs, and the last bucket absorbs
/// everything from ~9 minutes up.
const BUCKETS: usize = 30;

/// A log₂-bucketed latency histogram over microseconds.
///
/// Quantiles come back as the upper bound of the bucket holding the
/// target rank — at most 2× the true value, which is plenty for "is p99
/// milliseconds or seconds" service questions and keeps recording to
/// one atomic increment.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    fn bucket(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Upper bound (µs) of `bucket`, the value quantiles report.
    fn upper_bound_us(bucket: usize) -> u64 {
        1u64 << bucket
    }

    /// Record one request's latency.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket(us)].fetch_add(1, Relaxed);
    }

    /// Total recorded requests.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a bucket upper bound in µs;
    /// 0 when nothing has been recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::upper_bound_us(i);
            }
        }
        Self::upper_bound_us(BUCKETS - 1)
    }
}

/// The service's live counters. One instance per server, shared by every
/// reader and worker thread.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    requests: [AtomicU64; OPS.len()],
    /// Requests answered with a structured error (any code).
    errors: AtomicU64,
    /// Requests refused at admission because the queue was full.
    rejected: AtomicU64,
    /// Connections accepted over the server's lifetime.
    connections: AtomicU64,
    /// Mutations applied successfully.
    mutations_applied: AtomicU64,
    /// Total pairs evicted across all repairs.
    repair_evicted: AtomicU64,
    /// Total pairs reassigned across all repairs.
    repair_reassigned: AtomicU64,
    /// Largest single repair (evicted + reassigned).
    repair_max: AtomicU64,
    /// Durability gauges, mirrored from the WAL writer after every
    /// append/snapshot (zero when the server runs without `--wal-dir`).
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    fsyncs: AtomicU64,
    /// Auto-snapshots rotated (manual `snapshot` ops excluded).
    snapshots_written: AtomicU64,
    /// Failed auto-snapshot attempts (the WAL stays authoritative).
    snapshot_errors: AtomicU64,
    /// Arranger epoch at the last rotated snapshot, +1 (0 = none yet).
    last_snapshot_epoch_plus_one: AtomicU64,
    /// WAL records replayed by startup recovery.
    recovered_records: AtomicU64,
    /// Replayed records skipped because they failed identically at
    /// runtime (plus any torn-tail truncation, counted in bytes below).
    recovered_skipped: AtomicU64,
    /// Torn-tail bytes truncated at boot.
    recovered_truncated_bytes: AtomicU64,
    /// Mutations answered from the idempotency-dedup table (a client
    /// retry of an already-applied `(client_id, seq)`).
    dedup_hits: AtomicU64,
    /// WAL records shipped to replicas (primary side; one per record per
    /// subscribed replica).
    repl_records_shipped: AtomicU64,
    /// Snapshot documents shipped to catching-up replicas.
    repl_snapshots_shipped: AtomicU64,
    /// Records received from the primary and applied (replica side).
    repl_records_applied: AtomicU64,
    /// Full resyncs this replica performed (snapshot transfer or
    /// stream-from-zero after its local log diverged).
    repl_resyncs: AtomicU64,
    /// Successful (re)connects to the primary.
    repl_connects: AtomicU64,
    /// Handshakes refused because the peer's generation was stale.
    repl_fenced: AtomicU64,
    /// Supervisor: elections this node ran (replica side).
    sup_elections: AtomicU64,
    /// Supervisor: elections this node won (automatic promotions).
    sup_promotions: AtomicU64,
    /// Supervisor: times this node stepped down under a senior primary.
    sup_demotions: AtomicU64,
    /// Supervisor: times this primary fenced itself against writes.
    sup_fenced: AtomicU64,
    /// Solve batches dispatched by the coalescer (each batch is one
    /// pipeline run per distinct parameter group).
    solve_batches: AtomicU64,
    /// Individual solve requests those batches carried.
    solve_batch_requests: AtomicU64,
    /// Largest batch coalesced so far.
    solve_batch_max: AtomicU64,
    /// Batch-size histogram: buckets 1, 2, ≤4, ≤8, ≤16, >16.
    solve_batch_sizes: [AtomicU64; 6],
    /// Epoch read snapshots built (one per state version a read saw).
    epoch_snapshots_built: AtomicU64,
    /// Reads served from an already-pinned epoch snapshot (no session
    /// lock touched).
    epoch_pinned_reads: AtomicU64,
    latency: LatencyHistogram,
    /// Per-class latency splits: reads must stay flat while solves run.
    read_latency: LatencyHistogram,
    mutate_latency: LatencyHistogram,
    solve_latency: LatencyHistogram,
}

/// Snapshot keys for the batch-size buckets, in bucket order.
const BATCH_BUCKET_KEYS: [&str; 6] = ["le_01", "le_02", "le_04", "le_08", "le_16", "gt_16"];

fn batch_bucket(size: u64) -> usize {
    match size {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

impl ServerMetrics {
    pub fn record_request(&self, op: Op, latency: Duration) {
        self.requests[op as usize].fetch_add(1, Relaxed);
        self.latency.record(latency);
        match op {
            Op::QueryUser | Op::QueryEvent | Op::Stats | Op::Health => {
                self.read_latency.record(latency)
            }
            Op::Mutate => self.mutate_latency.record(latency),
            Op::Solve => self.solve_latency.record(latency),
            _ => {}
        }
    }

    /// One coalesced solve batch of `size` requests was dispatched.
    pub fn record_solve_batch(&self, size: u64) {
        self.solve_batches.fetch_add(1, Relaxed);
        self.solve_batch_requests.fetch_add(size, Relaxed);
        self.solve_batch_max.fetch_max(size, Relaxed);
        self.solve_batch_sizes[batch_bucket(size)].fetch_add(1, Relaxed);
    }

    /// A read pinned an epoch snapshot; `built` when this read had to
    /// construct it (state changed since the last pin).
    pub fn record_epoch_pin(&self, built: bool) {
        if built {
            self.epoch_snapshots_built.fetch_add(1, Relaxed);
        } else {
            self.epoch_pinned_reads.fetch_add(1, Relaxed);
        }
    }

    pub fn record_error(&self) {
        self.errors.fetch_add(1, Relaxed);
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Relaxed);
    }

    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Relaxed);
    }

    pub fn record_repair(&self, evicted: usize, reassigned: usize) {
        self.mutations_applied.fetch_add(1, Relaxed);
        self.repair_evicted.fetch_add(evicted as u64, Relaxed);
        self.repair_reassigned.fetch_add(reassigned as u64, Relaxed);
        self.repair_max
            .fetch_max((evicted + reassigned) as u64, Relaxed);
    }

    /// Mirror the WAL writer's running totals (they advance under the
    /// service's durability lock; the store here is just publication).
    pub fn record_wal(&self, records: u64, bytes: u64, fsyncs: u64) {
        self.wal_records.store(records, Relaxed);
        self.wal_bytes.store(bytes, Relaxed);
        self.fsyncs.store(fsyncs, Relaxed);
    }

    pub fn record_snapshot(&self, epoch: u64) {
        self.snapshots_written.fetch_add(1, Relaxed);
        self.last_snapshot_epoch_plus_one.store(epoch + 1, Relaxed);
    }

    pub fn record_snapshot_error(&self) {
        self.snapshot_errors.fetch_add(1, Relaxed);
    }

    pub fn record_dedup_hit(&self) {
        self.dedup_hits.fetch_add(1, Relaxed);
    }

    pub fn record_repl_shipped(&self, records: u64) {
        self.repl_records_shipped.fetch_add(records, Relaxed);
    }

    pub fn record_repl_snapshot_shipped(&self) {
        self.repl_snapshots_shipped.fetch_add(1, Relaxed);
    }

    pub fn record_repl_applied(&self) {
        self.repl_records_applied.fetch_add(1, Relaxed);
    }

    pub fn record_repl_resync(&self) {
        self.repl_resyncs.fetch_add(1, Relaxed);
    }

    pub fn record_repl_connect(&self) {
        self.repl_connects.fetch_add(1, Relaxed);
    }

    pub fn record_repl_fenced(&self) {
        self.repl_fenced.fetch_add(1, Relaxed);
    }

    pub fn record_sup_election(&self) {
        self.sup_elections.fetch_add(1, Relaxed);
    }

    pub fn record_sup_promotion(&self) {
        self.sup_promotions.fetch_add(1, Relaxed);
    }

    pub fn record_sup_demotion(&self) {
        self.sup_demotions.fetch_add(1, Relaxed);
    }

    pub fn record_sup_fence(&self) {
        self.sup_fenced.fetch_add(1, Relaxed);
    }

    /// Set once at boot from the recovery report.
    pub fn record_recovery(&self, replayed: u64, skipped: u64, truncated_bytes: u64) {
        self.recovered_records.store(replayed, Relaxed);
        self.recovered_skipped.store(skipped, Relaxed);
        self.recovered_truncated_bytes
            .store(truncated_bytes, Relaxed);
    }

    /// A coherent-enough point-in-time copy (see the module docs for the
    /// consistency caveat).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut requests = BTreeMap::new();
        for op in OPS {
            let n = self.requests[op as usize].load(Relaxed);
            if n > 0 {
                requests.insert(op.name().to_string(), n);
            }
        }
        MetricsSnapshot {
            requests,
            errors: self.errors.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            connections: self.connections.load(Relaxed),
            mutations_applied: self.mutations_applied.load(Relaxed),
            repair_evicted: self.repair_evicted.load(Relaxed),
            repair_reassigned: self.repair_reassigned.load(Relaxed),
            repair_max: self.repair_max.load(Relaxed),
            wal_records: self.wal_records.load(Relaxed),
            wal_bytes: self.wal_bytes.load(Relaxed),
            fsyncs: self.fsyncs.load(Relaxed),
            snapshots_written: self.snapshots_written.load(Relaxed),
            snapshot_errors: self.snapshot_errors.load(Relaxed),
            last_snapshot_epoch: match self.last_snapshot_epoch_plus_one.load(Relaxed) {
                0 => None,
                epoch_plus_one => Some(epoch_plus_one - 1),
            },
            recovered_records: self.recovered_records.load(Relaxed),
            recovered_skipped: self.recovered_skipped.load(Relaxed),
            recovered_truncated_bytes: self.recovered_truncated_bytes.load(Relaxed),
            dedup_hits: self.dedup_hits.load(Relaxed),
            repl_records_shipped: self.repl_records_shipped.load(Relaxed),
            repl_snapshots_shipped: self.repl_snapshots_shipped.load(Relaxed),
            repl_records_applied: self.repl_records_applied.load(Relaxed),
            repl_resyncs: self.repl_resyncs.load(Relaxed),
            repl_connects: self.repl_connects.load(Relaxed),
            repl_fenced: self.repl_fenced.load(Relaxed),
            sup_elections: self.sup_elections.load(Relaxed),
            sup_promotions: self.sup_promotions.load(Relaxed),
            sup_demotions: self.sup_demotions.load(Relaxed),
            sup_fenced: self.sup_fenced.load(Relaxed),
            solve_batches: self.solve_batches.load(Relaxed),
            solve_batch_requests: self.solve_batch_requests.load(Relaxed),
            solve_batch_max: self.solve_batch_max.load(Relaxed),
            solve_batch_sizes: BATCH_BUCKET_KEYS
                .iter()
                .zip(&self.solve_batch_sizes)
                .filter_map(|(key, count)| {
                    let n = count.load(Relaxed);
                    (n > 0).then(|| (key.to_string(), n))
                })
                .collect(),
            epoch_snapshots_built: self.epoch_snapshots_built.load(Relaxed),
            epoch_pinned_reads: self.epoch_pinned_reads.load(Relaxed),
            latency_count: self.latency.count(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p95_us: self.latency.quantile_us(0.95),
            latency_p99_us: self.latency.quantile_us(0.99),
            read_latency_count: self.read_latency.count(),
            read_latency_p50_us: self.read_latency.quantile_us(0.50),
            read_latency_p95_us: self.read_latency.quantile_us(0.95),
            read_latency_p99_us: self.read_latency.quantile_us(0.99),
            mutate_latency_count: self.mutate_latency.count(),
            mutate_latency_p50_us: self.mutate_latency.quantile_us(0.50),
            mutate_latency_p99_us: self.mutate_latency.quantile_us(0.99),
            solve_latency_count: self.solve_latency.count(),
            solve_latency_p50_us: self.solve_latency.quantile_us(0.50),
            solve_latency_p99_us: self.solve_latency.quantile_us(0.99),
        }
    }
}

/// Serializable point-in-time metrics, returned by the `stats` op and
/// dumped when the server drains. Latency quantiles are log₂-bucket
/// upper bounds in microseconds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests handled, by op (ops never seen are omitted).
    pub requests: BTreeMap<String, u64>,
    pub errors: u64,
    pub rejected: u64,
    pub connections: u64,
    pub mutations_applied: u64,
    pub repair_evicted: u64,
    pub repair_reassigned: u64,
    pub repair_max: u64,
    /// WAL records appended over the log's lifetime (0 without a WAL).
    pub wal_records: u64,
    /// WAL bytes appended (the log's valid length).
    pub wal_bytes: u64,
    /// Explicit fsyncs issued by this process's writer.
    pub fsyncs: u64,
    /// Auto-snapshots rotated this run.
    pub snapshots_written: u64,
    /// Auto-snapshot attempts that failed (WAL stays authoritative).
    pub snapshot_errors: u64,
    /// Arranger epoch of the last rotated snapshot.
    pub last_snapshot_epoch: Option<u64>,
    /// WAL records replayed at boot.
    pub recovered_records: u64,
    /// Replayed records skipped (failed identically at runtime).
    pub recovered_skipped: u64,
    /// Torn-tail bytes truncated at boot.
    pub recovered_truncated_bytes: u64,
    /// Mutations answered from the idempotency-dedup table.
    pub dedup_hits: u64,
    /// WAL records shipped to replicas (primary side).
    pub repl_records_shipped: u64,
    /// Snapshot documents shipped to catching-up replicas.
    pub repl_snapshots_shipped: u64,
    /// Records received from the primary and applied (replica side).
    pub repl_records_applied: u64,
    /// Full resyncs performed by this replica.
    pub repl_resyncs: u64,
    /// Successful (re)connects to the primary.
    pub repl_connects: u64,
    /// Handshakes refused for a stale generation.
    pub repl_fenced: u64,
    /// Failover elections this node ran (replica side).
    pub sup_elections: u64,
    /// Elections won: automatic promotions to primary.
    pub sup_promotions: u64,
    /// Times this node stepped down under a senior primary.
    pub sup_demotions: u64,
    /// Times this primary fenced itself against writes.
    pub sup_fenced: u64,
    /// Solve batches dispatched by the coalescer.
    #[serde(default)]
    pub solve_batches: u64,
    /// Individual solve requests carried by those batches.
    #[serde(default)]
    pub solve_batch_requests: u64,
    /// Largest coalesced batch.
    #[serde(default)]
    pub solve_batch_max: u64,
    /// Batch-size histogram (`le_01` … `gt_16`; empty buckets omitted).
    #[serde(default)]
    pub solve_batch_sizes: BTreeMap<String, u64>,
    /// Epoch read snapshots built (one per state version read).
    #[serde(default)]
    pub epoch_snapshots_built: u64,
    /// Reads served from an already-pinned epoch snapshot.
    #[serde(default)]
    pub epoch_pinned_reads: u64,
    pub latency_count: u64,
    pub latency_p50_us: u64,
    pub latency_p95_us: u64,
    pub latency_p99_us: u64,
    /// Read-class (`query_*`/`stats`/`health`) latency split.
    #[serde(default)]
    pub read_latency_count: u64,
    #[serde(default)]
    pub read_latency_p50_us: u64,
    #[serde(default)]
    pub read_latency_p95_us: u64,
    #[serde(default)]
    pub read_latency_p99_us: u64,
    /// Mutate-class latency split.
    #[serde(default)]
    pub mutate_latency_count: u64,
    #[serde(default)]
    pub mutate_latency_p50_us: u64,
    #[serde(default)]
    pub mutate_latency_p99_us: u64,
    /// Solve-class latency split.
    #[serde(default)]
    pub solve_latency_count: u64,
    #[serde(default)]
    pub solve_latency_p50_us: u64,
    #[serde(default)]
    pub solve_latency_p99_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = LatencyHistogram::default();
        for us in [0u64, 1, 3, 1000, 1_000_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        // Median of {0, 1, 3, 1000, 1e6} lands in the bucket of 3 µs
        // → upper bound 4 µs.
        assert_eq!(h.quantile_us(0.5), 4);
        // The max lands in the bucket of 1e6 µs: [2^19, 2^20) µs.
        assert_eq!(h.quantile_us(1.0), 1 << 20);
        assert_eq!(LatencyHistogram::default().quantile_us(0.99), 0);
    }

    #[test]
    fn quantiles_are_within_2x_of_exact() {
        let h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.50);
        assert!((500..=1024).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((990..=2048).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn snapshot_roundtrips_and_omits_unused_ops() {
        let m = ServerMetrics::default();
        m.record_request(Op::Mutate, Duration::from_micros(300));
        m.record_request(Op::Stats, Duration::from_micros(20));
        m.record_repair(3, 2);
        m.record_repair(1, 0);
        m.record_error();
        m.record_connection();
        let snap = m.snapshot();
        assert_eq!(snap.requests.get("mutate"), Some(&1));
        assert_eq!(snap.requests.get("load"), None);
        assert_eq!(snap.mutations_applied, 2);
        assert_eq!(snap.repair_max, 5);
        assert_eq!(snap.latency_count, 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn durability_counters_roundtrip() {
        let m = ServerMetrics::default();
        let snap = m.snapshot();
        assert_eq!(snap.wal_records, 0);
        assert_eq!(snap.last_snapshot_epoch, None);

        m.record_wal(12, 4096, 7);
        m.record_wal(13, 4160, 8); // gauges: later stores win
        m.record_snapshot(0); // epoch 0 is a real snapshot, not "none"
        m.record_snapshot(9);
        m.record_snapshot_error();
        m.record_recovery(5, 1, 17);
        let snap = m.snapshot();
        assert_eq!(snap.wal_records, 13);
        assert_eq!(snap.wal_bytes, 4160);
        assert_eq!(snap.fsyncs, 8);
        assert_eq!(snap.snapshots_written, 2);
        assert_eq!(snap.snapshot_errors, 1);
        assert_eq!(snap.last_snapshot_epoch, Some(9));
        assert_eq!(snap.recovered_records, 5);
        assert_eq!(snap.recovered_skipped, 1);
        assert_eq!(snap.recovered_truncated_bytes, 17);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn replication_counters_roundtrip() {
        let m = ServerMetrics::default();
        m.record_dedup_hit();
        m.record_repl_shipped(4);
        m.record_repl_snapshot_shipped();
        m.record_repl_applied();
        m.record_repl_applied();
        m.record_repl_resync();
        m.record_repl_connect();
        m.record_repl_fenced();
        let snap = m.snapshot();
        assert_eq!(snap.dedup_hits, 1);
        assert_eq!(snap.repl_records_shipped, 4);
        assert_eq!(snap.repl_snapshots_shipped, 1);
        assert_eq!(snap.repl_records_applied, 2);
        assert_eq!(snap.repl_resyncs, 1);
        assert_eq!(snap.repl_connects, 1);
        assert_eq!(snap.repl_fenced, 1);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn batch_and_class_counters_roundtrip() {
        let m = ServerMetrics::default();
        m.record_solve_batch(1);
        m.record_solve_batch(3);
        m.record_solve_batch(3);
        m.record_epoch_pin(true);
        m.record_epoch_pin(false);
        m.record_request(Op::QueryUser, Duration::from_micros(5));
        m.record_request(Op::Mutate, Duration::from_micros(40));
        m.record_request(Op::Solve, Duration::from_micros(900));
        let snap = m.snapshot();
        assert_eq!(snap.solve_batches, 3);
        assert_eq!(snap.solve_batch_requests, 7);
        assert_eq!(snap.solve_batch_max, 3);
        assert_eq!(snap.solve_batch_sizes.get("le_01"), Some(&1));
        assert_eq!(snap.solve_batch_sizes.get("le_04"), Some(&2));
        assert_eq!(snap.solve_batch_sizes.get("gt_16"), None);
        assert_eq!(snap.epoch_snapshots_built, 1);
        assert_eq!(snap.epoch_pinned_reads, 1);
        assert_eq!(snap.read_latency_count, 1);
        assert_eq!(snap.mutate_latency_count, 1);
        assert_eq!(snap.solve_latency_count, 1);
        assert_eq!(snap.latency_count, 3);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn op_names_roundtrip() {
        for op in OPS {
            if op != Op::Unknown {
                assert_eq!(Op::from_name(op.name()), op);
            }
        }
        assert_eq!(Op::from_name("frobnicate"), Op::Unknown);
    }
}
