//! The wire protocol: newline-delimited JSON request/response envelopes.
//!
//! One request per line, one response per line, over a plain TCP stream —
//! debuggable with `nc`. Requests are objects with an `op` string, an
//! optional numeric `id` (echoed back for pipelining clients), and
//! op-specific fields alongside:
//!
//! ```json
//! {"op": "mutate", "id": 7, "mutation": {"AddConflict": {"a": 0, "b": 2}}}
//! ```
//!
//! Responses are `{"ok": true, "id": …, "data": …}` or
//! `{"ok": false, "id": …, "error": {"code": …, "message": …}}`.
//!
//! Envelopes are built and picked apart as [`Value`] trees by hand
//! rather than derived structs: the vendored serde derive treats missing
//! fields as hard errors, and the envelope is exactly where optional
//! fields (`id`, per-op parameters) live. Closed payload types
//! ([`geacc_core::Mutation`], instances, arrangements) still go through
//! derived serde via `from_value`.

use serde_json::{json, Value};
use std::io::Write;

/// A parsed request line: the op name, the client's echo id, and the
/// whole object (ops fish their parameters out of it).
#[derive(Debug, Clone)]
pub struct Request {
    pub op: String,
    pub id: Option<u64>,
    pub body: Value,
}

/// A structured service error: a stable machine code plus a human
/// message, optionally carrying a `retry_after_ms` hint for rejections
/// the client should retry later (`overloaded`), and/or a
/// `primary_hint` address for rejections a client should redirect to
/// the cluster primary for (`read_only`, `stale_generation`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    pub code: &'static str,
    pub message: String,
    pub retry_after_ms: Option<u64>,
    pub primary_hint: Option<String>,
}

impl ServiceError {
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ServiceError {
            code,
            message: message.into(),
            retry_after_ms: None,
            primary_hint: None,
        }
    }

    /// Attach a retry hint: the client should back off at least this
    /// long before resending.
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Attach a topology hint: the address where the current primary
    /// (the node that can serve this request) is believed to live.
    pub fn with_primary_hint(mut self, addr: impl Into<String>) -> Self {
        self.primary_hint = Some(addr.into());
        self
    }
}

/// Look up `key` in an object `Value`.
pub fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// `key` as a string, if present and a string.
pub fn get_str<'a>(value: &'a Value, key: &str) -> Option<&'a str> {
    match get(value, key) {
        Some(Value::String(s)) => Some(s),
        _ => None,
    }
}

/// `key` as a u64, if present and a non-negative integer.
pub fn get_u64(value: &Value, key: &str) -> Option<u64> {
    match get(value, key) {
        Some(v) => as_u64(v),
        None => None,
    }
}

/// A `Value` as a u64, if it is a non-negative integer.
pub fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Number(n) => serde_json::from_value(Value::Number(*n)).ok(),
        _ => None,
    }
}

/// Parse one request line. Errors carry the code the response should
/// use (`bad_json` for malformed lines, `bad_request` for well-formed
/// JSON that is not a request envelope).
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let body: Value = serde_json::from_str(line)
        .map_err(|e| ServiceError::new("bad_json", format!("malformed request: {e}")))?;
    let op = get_str(&body, "op")
        .ok_or_else(|| ServiceError::new("bad_request", "request must have a string \"op\""))?
        .to_string();
    let id = get_u64(&body, "id");
    Ok(Request { op, id, body })
}

fn id_value(id: Option<u64>) -> Value {
    match id {
        // A u64 always serializes; if the shim ever disagrees, a null
        // echo id beats panicking a worker mid-response.
        Some(id) => serde_json::to_value(&id).unwrap_or(Value::Null),
        None => Value::Null,
    }
}

/// A success envelope.
pub fn ok_envelope(id: Option<u64>, data: Value) -> Value {
    Value::Object(vec![
        ("ok".to_string(), json!(true)),
        ("id".to_string(), id_value(id)),
        ("data".to_string(), data),
    ])
}

/// An error envelope. `retry_after_ms` is emitted only when the error
/// carries the hint, so existing clients keep parsing the same shape.
pub fn err_envelope(id: Option<u64>, error: &ServiceError) -> Value {
    let mut fields = vec![
        ("code".to_string(), Value::String(error.code.to_string())),
        ("message".to_string(), Value::String(error.message.clone())),
    ];
    if let Some(ms) = error.retry_after_ms {
        // The vendored `json!` parses stringified tokens (literals
        // only), so the number Value is built via to_value.
        let ms = serde_json::to_value(&ms).unwrap_or(Value::Null);
        fields.push(("retry_after_ms".to_string(), ms));
    }
    if let Some(addr) = &error.primary_hint {
        fields.push(("primary_hint".to_string(), Value::String(addr.clone())));
    }
    Value::Object(vec![
        ("ok".to_string(), json!(false)),
        ("id".to_string(), id_value(id)),
        ("error".to_string(), Value::Object(fields)),
    ])
}

/// Stream one response line: the envelope, a newline, a flush (the
/// protocol is line-oriented, so the peer must see the line now, not at
/// buffer pressure). The line is staged in one buffer and written with a
/// single call — trickling an envelope through many small writes on an
/// unbuffered socket invites Nagle/delayed-ACK stalls of ~40 ms per
/// response.
pub fn write_response<W: Write>(mut writer: W, envelope: &Value) -> std::io::Result<()> {
    let mut line = Vec::with_capacity(256);
    serde_json::to_writer(&mut line, envelope).map_err(|e| std::io::Error::other(e.to_string()))?;
    line.push(b'\n');
    writer.write_all(&line)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_op_id_and_body() {
        let r = parse_request(r#"{"op": "mutate", "id": 7, "mutation": {"x": 1}}"#).unwrap();
        assert_eq!(r.op, "mutate");
        assert_eq!(r.id, Some(7));
        assert!(get(&r.body, "mutation").is_some());

        let r = parse_request(r#"{"op": "stats"}"#).unwrap();
        assert_eq!(r.id, None);
    }

    #[test]
    fn rejects_malformed_and_envelope_less_lines() {
        assert_eq!(parse_request("{oops").unwrap_err().code, "bad_json");
        assert_eq!(
            parse_request(r#"{"id": 3}"#).unwrap_err().code,
            "bad_request"
        );
        assert_eq!(parse_request(r#"[1, 2]"#).unwrap_err().code, "bad_request");
    }

    #[test]
    fn envelopes_serialize_as_expected() {
        let ok = ok_envelope(Some(3), json!({"epoch": 1}));
        assert_eq!(
            serde_json::to_string(&ok).unwrap(),
            r#"{"ok":true,"id":3,"data":{"epoch":1}}"#
        );
        let err = err_envelope(None, &ServiceError::new("overloaded", "queue full"));
        let text = serde_json::to_string(&err).unwrap();
        assert!(text.contains(r#""ok":false"#));
        assert!(text.contains(r#""code":"overloaded""#));
        assert!(!text.contains("retry_after_ms"));
    }

    #[test]
    fn retry_after_hint_is_emitted_when_present() {
        let err = ServiceError::new("overloaded", "queue full").with_retry_after(25);
        let text = serde_json::to_string(&err_envelope(Some(1), &err)).unwrap();
        assert!(text.contains(r#""retry_after_ms":25"#));
        assert!(!text.contains("primary_hint"));
    }

    #[test]
    fn primary_hint_is_emitted_when_present() {
        let err = ServiceError::new("read_only", "replica refuses writes")
            .with_primary_hint("10.0.0.7:7411");
        let text = serde_json::to_string(&err_envelope(Some(1), &err)).unwrap();
        assert!(text.contains(r#""primary_hint":"10.0.0.7:7411""#));
    }

    #[test]
    fn write_response_emits_one_line_and_flushes() {
        let mut sink = Vec::new();
        write_response(&mut sink, &ok_envelope(None, json!(null))).unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.ends_with('\n'));
        assert_eq!(text.matches('\n').count(), 1);
    }
}
