//! WAL-shipping replication: a primary streams acked WAL records to
//! replicas over the same newline-delimited TCP protocol clients use.
//!
//! ## Record flow
//!
//! Every mutation the primary acks is first framed into its WAL by
//! [`crate::service::Service`]; the serialized payload is then published
//! to the [`ReplHub`], which fans it out to each connected replica's
//! bounded channel. A replica appends the payload byte-for-byte to its
//! own WAL (`append_payload`), applies it through the same replay path
//! recovery uses, and acks the new offset. Because the vendored JSON
//! shim round-trips floats exactly, replica WALs are bit-identical to
//! the primary's acked prefix — the failover tests assert exactly that.
//!
//! ## Coordinates
//!
//! Offsets on the wire are *remote* coordinates: the primary's byte
//! offset space. A replica that resynced from a snapshot has a local
//! WAL that starts mid-stream, so it tracks `remote_base` (the remote
//! offset its local offset 0 corresponds to) and always speaks
//! `remote_base + local` on the wire. A node that was never a replica
//! has base 0 and the two coordinate spaces coincide.
//!
//! ## Generation fencing
//!
//! Every node carries a generation number, bumped by `promote` and
//! persisted in `repl.meta`. A handshake from a replica with a higher
//! generation than the primary's own means the primary is stale — it
//! refuses with `stale_generation` rather than feed a diverged history.
//! Symmetrically, a replica refuses to follow a primary with a lower
//! generation than its own.
//!
//! ## Catch-up
//!
//! A reconnecting replica asks to resume from its cursor. If the
//! primary still has that offset on disk (above its resync `floor`) it
//! replays the file tail; otherwise it sends a full snapshot and the
//! replica resets its local WAL. `restore` on the primary raises the
//! floor (restore is not WAL-logged, so older offsets no longer replay
//! to the served state) and broadcasts [`Shipment::Resync`] to force
//! connected replicas through the snapshot path.

use crate::protocol::{err_envelope, get, get_str, get_u64, write_response, Request, ServiceError};
use crate::recovery::wal_path;
use crate::service::{ReplicaApplyError, Service};
use crate::wal::{self, atomic_write, SnapshotDoc};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sidecar file next to the WAL holding replication identity.
pub const META_FILE: &str = "repl.meta";

/// Depth of each replica subscriber's shipment channel. A replica that
/// falls further behind than this is dropped and catches up from the
/// file on reconnect.
const SUB_CHANNEL_DEPTH: usize = 512;

/// How long stream loops sleep waiting for work before re-checking the
/// stop flag.
const POLL: Duration = Duration::from_millis(200);

/// Durable replication identity, persisted via [`store_meta`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplMeta {
    /// Fencing generation; bumped by `promote`.
    pub generation: u64,
    /// Remote byte offset corresponding to local WAL offset 0.
    pub remote_base: u64,
    /// Remote record count corresponding to local record 0.
    pub remote_records_base: u64,
    /// Local byte offset below which resume is invalid (raised by
    /// `restore`, which is not WAL-logged).
    pub floor: u64,
}

pub fn meta_path(dir: &Path) -> PathBuf {
    dir.join(META_FILE)
}

/// Load the replication meta, defaulting to a fresh identity when the
/// file does not exist.
pub fn load_meta(dir: &Path) -> io::Result<ReplMeta> {
    let path = meta_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(ReplMeta::default()),
        Err(e) => return Err(e),
    };
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("{}: {e}", path.display())))
}

/// Persist the replication meta atomically (temp + fsync + rename).
pub fn store_meta(dir: &Path, meta: &ReplMeta) -> io::Result<()> {
    let text =
        serde_json::to_string(meta).map_err(|e| io::Error::new(ErrorKind::InvalidData, e))?;
    atomic_write(&meta_path(dir), text.as_bytes())
}

/// One item fanned out to replica subscribers.
#[derive(Clone)]
pub enum Shipment {
    /// A freshly acked WAL record. `offset` is the remote coordinate of
    /// the record's first byte; `head`/`head_records` describe the WAL
    /// end after the append. The payload is the exact serialized
    /// `WalRecord` JSON (no framing).
    Record {
        offset: u64,
        head: u64,
        head_records: u64,
        payload: Arc<String>,
    },
    /// The primary's WAL history below the current head is no longer
    /// replayable (a `restore` happened); replicas must resync.
    Resync,
}

struct Subscriber {
    id: u64,
    tx: SyncSender<Shipment>,
    acked: u64,
}

/// Fan-out of acked records to connected replica streams.
pub struct ReplHub {
    subs: Mutex<Vec<Subscriber>>,
    count: AtomicUsize,
    next_id: AtomicU64,
}

impl Default for ReplHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplHub {
    pub fn new() -> Self {
        ReplHub {
            subs: Mutex::new(Vec::new()),
            count: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    /// Cheap check so the mutation path skips serialize-for-publish
    /// entirely when no replica is connected.
    pub fn has_subscribers(&self) -> bool {
        self.count.load(Ordering::SeqCst) > 0
    }

    pub fn subscribe(&self) -> (u64, Receiver<Shipment>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(SUB_CHANNEL_DEPTH);
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let mut subs = lock(&self.subs);
        subs.push(Subscriber { id, tx, acked: 0 });
        self.count.store(subs.len(), Ordering::SeqCst);
        (id, rx)
    }

    pub fn unsubscribe(&self, id: u64) {
        let mut subs = lock(&self.subs);
        subs.retain(|s| s.id != id);
        self.count.store(subs.len(), Ordering::SeqCst);
    }

    /// Deliver a shipment to every subscriber. A subscriber whose
    /// channel is full or closed is dropped — its stream thread will
    /// notice the hangup and the replica reconnects through the file
    /// catch-up path, which is always correct.
    pub fn publish(&self, shipment: Shipment) {
        let mut subs = lock(&self.subs);
        subs.retain(|s| match s.tx.try_send(shipment.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        });
        self.count.store(subs.len(), Ordering::SeqCst);
    }

    /// Record a replica's acked remote offset (for lag reporting).
    pub fn record_ack(&self, id: u64, offset: u64) {
        let mut subs = lock(&self.subs);
        if let Some(sub) = subs.iter_mut().find(|s| s.id == id) {
            sub.acked = sub.acked.max(offset);
        }
    }

    /// Connected replica count and the minimum acked remote offset
    /// across them (None when no replica is connected).
    pub fn lag(&self) -> (usize, Option<u64>) {
        let subs = lock(&self.subs);
        let min = subs.iter().map(|s| s.acked).min();
        (subs.len(), min)
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runtime replication state embedded in the service. All fields are
/// atomics so the hot mutate path and the health op never contend on a
/// lock for them.
pub struct ReplState {
    role_replica: AtomicBool,
    accept_replicas: AtomicBool,
    generation: AtomicU64,
    remote_base: AtomicU64,
    remote_records_base: AtomicU64,
    /// Next remote byte offset / record index this node expects.
    remote_next: AtomicU64,
    remote_records_next: AtomicU64,
    floor: AtomicU64,
    last_seen_generation: AtomicU64,
    last_seen_head: AtomicU64,
    last_seen_head_records: AtomicU64,
    connected: AtomicBool,
    force_reset: AtomicBool,
    pub hub: ReplHub,
}

impl Default for ReplState {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplState {
    pub fn new() -> Self {
        ReplState {
            role_replica: AtomicBool::new(false),
            accept_replicas: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            remote_base: AtomicU64::new(0),
            remote_records_base: AtomicU64::new(0),
            remote_next: AtomicU64::new(0),
            remote_records_next: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            last_seen_generation: AtomicU64::new(0),
            last_seen_head: AtomicU64::new(0),
            last_seen_head_records: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            force_reset: AtomicBool::new(false),
            hub: ReplHub::new(),
        }
    }

    /// Install the persisted identity and the node's startup role.
    /// `local_offset`/`local_records` are the recovered WAL's length,
    /// which the remote cursor resumes from.
    pub fn init(
        &self,
        meta: &ReplMeta,
        accept_replicas: bool,
        replica: bool,
        local_offset: u64,
        local_records: u64,
    ) {
        self.generation.store(meta.generation, Ordering::SeqCst);
        self.remote_base.store(meta.remote_base, Ordering::SeqCst);
        self.remote_records_base
            .store(meta.remote_records_base, Ordering::SeqCst);
        self.remote_next
            .store(meta.remote_base + local_offset, Ordering::SeqCst);
        self.remote_records_next
            .store(meta.remote_records_base + local_records, Ordering::SeqCst);
        self.floor.store(meta.floor, Ordering::SeqCst);
        self.accept_replicas
            .store(accept_replicas, Ordering::SeqCst);
        self.role_replica.store(replica, Ordering::SeqCst);
    }

    pub fn is_replica(&self) -> bool {
        self.role_replica.load(Ordering::SeqCst)
    }

    pub fn set_role_replica(&self, replica: bool) {
        self.role_replica.store(replica, Ordering::SeqCst);
    }

    pub fn accepts_replicas(&self) -> bool {
        self.accept_replicas.load(Ordering::SeqCst)
    }

    /// Flip replica acceptance at runtime (a freshly promoted winner
    /// must feed the losing replicas).
    pub fn set_accepts_replicas(&self, accept: bool) {
        self.accept_replicas.store(accept, Ordering::SeqCst);
    }

    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    pub fn set_generation(&self, generation: u64) {
        self.generation.store(generation, Ordering::SeqCst);
    }

    pub fn floor(&self) -> u64 {
        self.floor.load(Ordering::SeqCst)
    }

    pub fn set_floor(&self, floor: u64) {
        self.floor.store(floor, Ordering::SeqCst);
    }

    pub fn remote_base(&self) -> u64 {
        self.remote_base.load(Ordering::SeqCst)
    }

    pub fn remote_records_base(&self) -> u64 {
        self.remote_records_base.load(Ordering::SeqCst)
    }

    /// Next remote byte offset expected (== remote head applied so far).
    pub fn remote_cursor(&self) -> u64 {
        self.remote_next.load(Ordering::SeqCst)
    }

    pub fn remote_records_cursor(&self) -> u64 {
        self.remote_records_next.load(Ordering::SeqCst)
    }

    /// Reset both bases and cursors to a snapshot boundary.
    pub fn set_cursor(&self, offset: u64, records: u64) {
        self.remote_base.store(offset, Ordering::SeqCst);
        self.remote_records_base.store(records, Ordering::SeqCst);
        self.remote_next.store(offset, Ordering::SeqCst);
        self.remote_records_next.store(records, Ordering::SeqCst);
    }

    /// Advance the cursor past one applied record frame.
    pub fn advance_cursor(&self, frame_bytes: u64) {
        self.remote_next.fetch_add(frame_bytes, Ordering::SeqCst);
        self.remote_records_next.fetch_add(1, Ordering::SeqCst);
    }

    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    pub fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Ordering::SeqCst);
    }

    /// Record the primary's advertised generation and head (for lag).
    pub fn note_remote(&self, generation: u64, head: u64, head_records: u64) {
        self.last_seen_generation
            .store(generation, Ordering::SeqCst);
        self.last_seen_head.store(head, Ordering::SeqCst);
        self.last_seen_head_records
            .store(head_records, Ordering::SeqCst);
    }

    pub fn last_seen_generation(&self) -> u64 {
        self.last_seen_generation.load(Ordering::SeqCst)
    }

    pub fn last_seen_head(&self) -> u64 {
        self.last_seen_head.load(Ordering::SeqCst)
    }

    pub fn last_seen_head_records(&self) -> u64 {
        self.last_seen_head_records.load(Ordering::SeqCst)
    }

    /// Ask the next handshake to start from scratch (cursor mistrust).
    pub fn set_force_reset(&self) {
        self.force_reset.store(true, Ordering::SeqCst);
    }

    pub fn force_reset_pending(&self) -> bool {
        self.force_reset.load(Ordering::SeqCst)
    }

    /// Adopt a snapshot boundary sent by the primary: clears any
    /// pending force-reset and re-bases the cursor.
    pub fn begin_resync(&self, generation: u64, start_offset: u64, start_records: u64) {
        self.force_reset.store(false, Ordering::SeqCst);
        self.generation.store(generation, Ordering::SeqCst);
        self.set_cursor(start_offset, start_records);
        self.floor.store(0, Ordering::SeqCst);
    }

    /// The durable view of this state.
    pub fn meta(&self) -> ReplMeta {
        ReplMeta {
            generation: self.generation(),
            remote_base: self.remote_base(),
            remote_records_base: self.remote_records_base(),
            floor: self.floor(),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire messages. Hand-built strings: the record line embeds the raw WAL
// payload verbatim (it is already JSON), and the vendored `json!` only
// accepts literals.
// ---------------------------------------------------------------------------

/// The optional `,"advertise":"…"` suffix carried on hello/ping lines:
/// the primary's client-facing address, which followers hand out as
/// `primary_hint`.
fn advertise_suffix(advertise: Option<&str>) -> String {
    match advertise {
        Some(addr) => format!(",\"advertise\":\"{}\"", addr.escape_default()),
        None => String::new(),
    }
}

fn hello_line(
    generation: u64,
    mode: &str,
    start: u64,
    start_records: u64,
    head: u64,
    head_records: u64,
    advertise: Option<&str>,
) -> String {
    format!(
        "{{\"repl\":\"hello\",\"generation\":{generation},\"mode\":\"{mode}\",\
         \"start\":{start},\"start_records\":{start_records},\
         \"head\":{head},\"head_records\":{head_records}{}}}\n",
        advertise_suffix(advertise)
    )
}

/// Idle heartbeat: renews the follower's lease when no record has
/// shipped for a poll interval.
fn ping_line(generation: u64, head: u64, head_records: u64, advertise: Option<&str>) -> String {
    format!(
        "{{\"repl\":\"ping\",\"generation\":{generation},\"head\":{head},\
         \"head_records\":{head_records}{}}}\n",
        advertise_suffix(advertise)
    )
}

fn snapshot_line(doc_json: &str, head: u64, head_records: u64) -> String {
    format!("{{\"repl\":\"snapshot\",\"doc\":{doc_json},\"head\":{head},\"head_records\":{head_records}}}\n")
}

fn record_line(offset: u64, head: u64, head_records: u64, payload: &str) -> String {
    format!(
        "{{\"repl\":\"record\",\"offset\":{offset},\"head\":{head},\
         \"head_records\":{head_records},\"record\":{payload}}}\n"
    )
}

fn ack_line(offset: u64) -> String {
    format!("{{\"repl\":\"ack\",\"offset\":{offset}}}\n")
}

fn handshake_line(from_offset: u64, generation: u64) -> String {
    format!("{{\"op\":\"replicate\",\"from_offset\":{from_offset},\"generation\":{generation}}}\n")
}

fn send_line(writer: &Arc<Mutex<TcpStream>>, line: &str) -> io::Result<()> {
    let mut guard = lock(writer);
    guard.write_all(line.as_bytes())?;
    guard.flush()
}

fn reject(writer: &Arc<Mutex<TcpStream>>, request: &Request, error: &ServiceError) {
    let envelope = err_envelope(request.id, error);
    let mut guard = lock(writer);
    let _ = write_response(&mut *guard, &envelope);
}

// ---------------------------------------------------------------------------
// Primary side: serve one replica stream on a hijacked reader thread.
// ---------------------------------------------------------------------------

/// Handle a `replicate` handshake: turn this connection into a one-way
/// shipment stream (plus inbound acks). Called from a thread the server
/// hijacks off its event loop, which it occupies until the replica
/// disconnects or the server stops. The reader is generic because the
/// event loop may have buffered bytes past the handshake line; the
/// server feeds them back in ahead of the live socket.
pub fn serve_replica<R: BufRead + Send + 'static>(
    reader: R,
    writer: Arc<Mutex<TcpStream>>,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    request: &Request,
) {
    let repl = service.replication();
    if !repl.accepts_replicas() {
        reject(
            &writer,
            request,
            &ServiceError::new(
                "replication_unsupported",
                "this server does not accept replicas (start with --accept-replicas)",
            ),
        );
        return;
    }
    let my_gen = repl.generation();
    let peer_gen = get_u64(&request.body, "generation").unwrap_or(0);
    if peer_gen > my_gen {
        service.metrics.record_repl_fenced();
        let mut error = ServiceError::new(
            "stale_generation",
            format!("replica generation {peer_gen} exceeds primary generation {my_gen}; this primary is stale"),
        );
        if let Some(hint) = service.supervision().primary_hint() {
            error = error.with_primary_hint(hint);
        }
        reject(&writer, request, &error);
        if service.supervision().enabled() {
            // A successor was elected while we were away: step down and
            // let the supervisor find it. (Unsupervised nodes keep the
            // PR 7 behaviour — fenced until an operator intervenes.)
            service.demote_to_replica(None);
            service.metrics.record_sup_demotion();
        }
        return;
    }
    let (dir, head_local, head_records_local) = match service.repl_stream_info() {
        Ok(info) => info,
        Err(e) => {
            reject(&writer, request, &e);
            return;
        }
    };
    if let Err(e) = stream_to_replica(
        reader,
        &writer,
        service,
        stop,
        request,
        &dir,
        head_local,
        head_records_local,
        my_gen,
    ) {
        // The replica reconnects and catches up; nothing to do but log
        // through metrics-free stderr is avoided — drop silently.
        let _ = e;
    }
    if let Ok(guard) = writer.lock() {
        let _ = guard.shutdown(Shutdown::Both);
    }
}

#[allow(clippy::too_many_arguments)]
fn stream_to_replica<R: BufRead + Send + 'static>(
    reader: R,
    writer: &Arc<Mutex<TcpStream>>,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    request: &Request,
    dir: &Path,
    head_local: u64,
    head_records_local: u64,
    my_gen: u64,
) -> io::Result<()> {
    let repl = service.replication();
    let base = repl.remote_base();
    let records_base = repl.remote_records_base();
    let peer_gen = get_u64(&request.body, "generation").unwrap_or(0);
    let from_offset = get_u64(&request.body, "from_offset").unwrap_or(0);

    // Subscribe before reading the file so no record falls in the gap
    // between the file scan and the live stream.
    let (sub_id, rx) = repl.hub.subscribe();
    let result = (|| -> io::Result<()> {
        let mut bytes = std::fs::read(wal_path(dir))?;

        // Decide resume vs reset. Resume requires: same generation, a
        // cursor inside our retained local history (>= floor), not past
        // our head, and a clean frame boundary.
        let local_from = from_offset.checked_sub(base);
        let resume_at = match local_from {
            Some(f)
                if peer_gen == my_gen
                    && f > 0
                    && f >= repl.floor()
                    && f <= head_local
                    && wal::scan_from(&bytes, f).is_ok() =>
            {
                Some(f)
            }
            _ => None,
        };

        let (mode, start_local, start_records_local, snapshot_doc) = match resume_at {
            Some(f) => ("resume", f, 0, None),
            None => match service.repl_snapshot_doc() {
                Some(doc) => {
                    // The doc's cursor may be past the bytes read above
                    // (a mutate raced in); re-read so the scan covers it.
                    bytes = std::fs::read(wal_path(dir))?;
                    let start = doc.wal_offset;
                    let records = doc.wal_records;
                    ("reset", start, records, Some(doc))
                }
                None => ("reset", 0, 0, None),
            },
        };

        let scan = wal::scan_from(&bytes, start_local)
            .map_err(|e| io::Error::new(ErrorKind::InvalidData, format!("wal scan: {e:?}")))?;
        // On resume the records-before-start count is derived from the
        // scan (head count minus tail count); on reset the snapshot doc
        // carries it.
        let start_records_local = if mode == "resume" {
            head_records_local.saturating_sub(scan.records.len() as u64)
        } else {
            start_records_local
        };
        let effective_head_local = head_local.max(scan.valid_len);
        let head = base + effective_head_local;
        let head_records =
            records_base + head_records_local.max(start_records_local + scan.records.len() as u64);

        // Acks flow on their own thread; this thread only writes.
        let ack_stop = Arc::new(AtomicBool::new(false));
        let ack_handle = spawn_ack_reader(
            reader,
            Arc::clone(service),
            sub_id,
            Arc::clone(stop),
            Arc::clone(&ack_stop),
        );

        // Supervised primaries poll (and thus ping) at half the lease
        // interval so one lost line cannot cost a whole window.
        let sup = service.supervision();
        let poll = if sup.enabled() {
            (sup.lease_interval() / 2).clamp(Duration::from_millis(10), POLL)
        } else {
            POLL
        };
        let advertise = sup.advertise();

        let stream_result = (|| -> io::Result<()> {
            send_line(
                writer,
                &hello_line(
                    my_gen,
                    mode,
                    base + start_local,
                    records_base + start_records_local,
                    head,
                    head_records,
                    advertise.as_deref(),
                ),
            )?;
            if let Some(doc) = snapshot_doc {
                let shifted = shift_doc(doc, base, records_base);
                let doc_json = serde_json::to_string(&shifted)
                    .map_err(|e| io::Error::new(ErrorKind::InvalidData, e))?;
                send_line(writer, &snapshot_line(&doc_json, head, head_records))?;
                service.metrics.record_repl_snapshot_shipped();
            }

            // File tail first…
            let mut sent_records = records_base + start_records_local;
            for rec in &scan.records {
                let payload = serde_json::to_string(&rec.record)
                    .map_err(|e| io::Error::new(ErrorKind::InvalidData, e))?;
                sent_records += 1;
                send_line(
                    writer,
                    &record_line(base + rec.offset, head, sent_records, &payload),
                )?;
                service.metrics.record_repl_shipped(1);
            }
            let sent_until = base + scan.valid_len;

            // …then the live feed, skipping anything already sent. Idle
            // polls turn into pings: the stream doubles as the lease.
            let mut live_head = head;
            let mut live_head_records = head_records;
            loop {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                match rx.recv_timeout(poll) {
                    Ok(Shipment::Record {
                        offset,
                        head,
                        head_records,
                        payload,
                    }) => {
                        live_head = live_head.max(head);
                        live_head_records = live_head_records.max(head_records);
                        if offset < sent_until {
                            continue;
                        }
                        send_line(writer, &record_line(offset, head, head_records, &payload))?;
                        service.metrics.record_repl_shipped(1);
                    }
                    Ok(Shipment::Resync) => return Ok(()),
                    Err(RecvTimeoutError::Timeout) => {
                        send_line(
                            writer,
                            &ping_line(my_gen, live_head, live_head_records, advertise.as_deref()),
                        )?;
                    }
                    Err(RecvTimeoutError::Disconnected) => return Ok(()),
                }
            }
        })();

        ack_stop.store(true, Ordering::SeqCst);
        if let Ok(guard) = writer.lock() {
            let _ = guard.shutdown(Shutdown::Both);
        }
        let _ = ack_handle.join();
        stream_result
    })();
    repl.hub.unsubscribe(sub_id);
    result
}

/// Re-express a local snapshot doc in remote coordinates.
fn shift_doc(mut doc: SnapshotDoc, base: u64, records_base: u64) -> SnapshotDoc {
    doc.wal_offset += base;
    doc.wal_records += records_base;
    doc
}

fn spawn_ack_reader<R: BufRead + Send + 'static>(
    mut reader: R,
    service: Arc<Service>,
    sub_id: u64,
    stop: Arc<AtomicBool>,
    ack_stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            if stop.load(Ordering::SeqCst) || ack_stop.load(Ordering::SeqCst) {
                return;
            }
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => {
                    if let Ok(value) = serde_json::from_str::<Value>(&line) {
                        if get_str(&value, "repl") == Some("ack") {
                            // Any ack is proof a replica still sees us —
                            // the primary side of the lease.
                            service.supervision().note_replica_contact();
                            if let Some(offset) = get_u64(&value, "offset") {
                                service.replication().hub.record_ack(sub_id, offset);
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                Err(_) => return,
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Replica side: the follower loop.
// ---------------------------------------------------------------------------

/// Why one `follow` attempt ended.
enum FollowEnd {
    /// Promote flipped the role; stop following.
    Promoted,
    /// Transport-level end (reconnect with backoff).
    Disconnected,
    /// The primary fenced us or we fenced it — back off hard.
    Fenced,
    /// The peer does not accept replicas — back off hard.
    Unsupported,
}

/// Follow the configured primary until promoted or stopped,
/// reconnecting with jittered exponential backoff. The target is
/// re-read from the supervisor's `upstream` on every attempt (an
/// election may re-point it), falling back to the `--replica-of`
/// address. A supervised node outlives a promotion: the loop idles
/// while the node is primary and resumes following if it is demoted.
pub fn run_replica_loop(
    service: Arc<Service>,
    primary: Option<String>,
    stop: Arc<AtomicBool>,
    seed: u64,
) {
    let mut rng = seed | 1;
    let mut strikes: u32 = 0;
    let supervised = service.supervision().enabled();
    while !stop.load(Ordering::SeqCst) {
        if !service.replication().is_replica() {
            if !supervised {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        let Some(target) = service.supervision().upstream().or_else(|| primary.clone()) else {
            // A demoted node with no known successor yet: the
            // supervisor's election will fill in the upstream.
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        let (end, made_progress) = follow(&service, &target, &stop);
        service.replication().set_connected(false);
        match end {
            FollowEnd::Promoted => {
                if !supervised {
                    return;
                }
                strikes = 0;
                continue;
            }
            FollowEnd::Disconnected => {
                strikes = if made_progress {
                    0
                } else {
                    strikes.saturating_add(1)
                };
            }
            FollowEnd::Fenced | FollowEnd::Unsupported => {
                strikes = strikes.saturating_add(4);
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let delay = backoff_delay(strikes, &mut rng);
        sleep_poll(delay, &stop, &service);
    }
}

fn backoff_delay(strikes: u32, rng: &mut u64) -> Duration {
    let base = 50u64;
    let cap = 2000u64;
    let exp = base.saturating_mul(1u64 << strikes.min(6)).min(cap);
    // Jitter in [exp/2, exp]: deterministic xorshift keeps tests stable.
    let j = xorshift(rng);
    Duration::from_millis(exp / 2 + j % (exp / 2 + 1))
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Sleep in short slices so stop/promote interrupt promptly.
fn sleep_poll(total: Duration, stop: &Arc<AtomicBool>, service: &Arc<Service>) {
    let start = Instant::now();
    while start.elapsed() < total {
        if stop.load(Ordering::SeqCst) || !service.replication().is_replica() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

enum PollRead {
    Line,
    Eof,
    Stop,
    Promoted,
}

/// Read one line, polling the stop flag and the role across read
/// timeouts. Partial lines survive timeouts (the buffer accumulates).
/// `followed` is the address this connection was made to: if an
/// election re-points the supervisor's upstream elsewhere while the
/// connection sits idle (a silently dead primary never sends EOF), the
/// read reports EOF so the follower reconnects to the new target.
fn read_line_poll(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    stop: &Arc<AtomicBool>,
    service: &Arc<Service>,
    followed: &str,
) -> io::Result<PollRead> {
    line.clear();
    let mut partial = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(PollRead::Stop);
        }
        if !service.replication().is_replica() {
            return Ok(PollRead::Promoted);
        }
        let mut byte = [0u8; 1];
        // Byte-at-a-time through the BufReader: fine, the buffer does
        // the batching; lets a timeout preserve the partial line.
        match reader.read(&mut byte) {
            Ok(0) => {
                return if partial.is_empty() {
                    Ok(PollRead::Eof)
                } else {
                    Err(io::Error::new(ErrorKind::UnexpectedEof, "torn line"))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    *line = String::from_utf8_lossy(&partial).into_owned();
                    return Ok(PollRead::Line);
                }
                partial.push(byte[0]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if partial.is_empty() && service.supervision().enabled() {
                    if let Some(upstream) = service.supervision().upstream() {
                        if upstream != followed {
                            return Ok(PollRead::Eof);
                        }
                    }
                }
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

fn connect(primary: &str) -> io::Result<TcpStream> {
    let addrs: Vec<SocketAddr> = primary.to_socket_addrs()?.collect();
    let addr = addrs
        .first()
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "no address"))?;
    let stream = TcpStream::connect_timeout(addr, Duration::from_secs(1))?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    Ok(stream)
}

/// One connection attempt: handshake, optional snapshot, then apply
/// records until something ends the session.
fn follow(service: &Arc<Service>, primary: &str, stop: &Arc<AtomicBool>) -> (FollowEnd, bool) {
    let repl = service.replication();
    let mut made_progress = false;
    let stream = match connect(primary) {
        Ok(s) => s,
        Err(_) => return (FollowEnd::Disconnected, false),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return (FollowEnd::Disconnected, false),
    };
    let mut reader = BufReader::new(stream);

    let from_offset = if repl.force_reset_pending() {
        0
    } else {
        repl.remote_cursor()
    };
    if writer
        .write_all(handshake_line(from_offset, repl.generation()).as_bytes())
        .and_then(|_| writer.flush())
        .is_err()
    {
        return (FollowEnd::Disconnected, false);
    }

    let mut line = String::new();
    // Hello (or an error envelope).
    match read_line_poll(&mut reader, &mut line, stop, service, primary) {
        Ok(PollRead::Line) => {}
        Ok(PollRead::Promoted) => return (FollowEnd::Promoted, made_progress),
        _ => return (FollowEnd::Disconnected, made_progress),
    }
    let hello: Value = match serde_json::from_str(&line) {
        Ok(v) => v,
        Err(_) => return (FollowEnd::Disconnected, made_progress),
    };
    if get(&hello, "ok").is_some() {
        // An error envelope instead of a hello.
        let code = get(&hello, "error")
            .and_then(|e| get_str(e, "code"))
            .unwrap_or("");
        return match code {
            "stale_generation" => {
                service.metrics.record_repl_fenced();
                (FollowEnd::Fenced, made_progress)
            }
            "replication_unsupported" => (FollowEnd::Unsupported, made_progress),
            _ => (FollowEnd::Disconnected, made_progress),
        };
    }
    if get_str(&hello, "repl") != Some("hello") {
        return (FollowEnd::Disconnected, made_progress);
    }
    let primary_gen = get_u64(&hello, "generation").unwrap_or(0);
    if primary_gen < repl.generation() {
        // We are ahead of this primary: refuse to follow a stale one.
        service.metrics.record_repl_fenced();
        return (FollowEnd::Fenced, made_progress);
    }
    let head = get_u64(&hello, "head").unwrap_or(0);
    let head_records = get_u64(&hello, "head_records").unwrap_or(0);
    match get_str(&hello, "mode") {
        Some("reset") => {
            let start = get_u64(&hello, "start").unwrap_or(0);
            let start_records = get_u64(&hello, "start_records").unwrap_or(0);
            service.metrics.record_repl_resync();
            if service
                .replica_begin_resync(start, start_records, primary_gen)
                .is_err()
            {
                return (FollowEnd::Disconnected, made_progress);
            }
        }
        Some("resume") => {
            if primary_gen != repl.generation() {
                // Generation moved under a resume offer — distrust the
                // cursor and resync next time.
                repl.set_force_reset();
                return (FollowEnd::Disconnected, made_progress);
            }
        }
        _ => return (FollowEnd::Disconnected, made_progress),
    }
    repl.note_remote(primary_gen, head, head_records);
    repl.set_connected(true);
    service.metrics.record_repl_connect();
    // The hello renews the lease and may carry the primary's
    // client-facing address for `primary_hint`.
    service.supervision().note_lease();
    if let Some(adv) = get_str(&hello, "advertise") {
        service
            .supervision()
            .set_primary_hint(Some(adv.to_string()));
    }

    loop {
        match read_line_poll(&mut reader, &mut line, stop, service, primary) {
            Ok(PollRead::Line) => {}
            Ok(PollRead::Promoted) => return (FollowEnd::Promoted, made_progress),
            _ => return (FollowEnd::Disconnected, made_progress),
        }
        let msg: Value = match serde_json::from_str(&line) {
            Ok(v) => v,
            Err(_) => return (FollowEnd::Disconnected, made_progress),
        };
        // Every stream line from the primary is a heartbeat.
        service.supervision().note_lease();
        match get_str(&msg, "repl") {
            Some("ping") => {
                if let Some(h) = get_u64(&msg, "head") {
                    let hr = get_u64(&msg, "head_records").unwrap_or(0);
                    repl.note_remote(primary_gen, h, hr);
                }
                if let Some(adv) = get_str(&msg, "advertise") {
                    service
                        .supervision()
                        .set_primary_hint(Some(adv.to_string()));
                }
                // Ack the cursor so the primary's replica-contact clock
                // keeps running through idle stretches.
                if writer
                    .write_all(ack_line(repl.remote_cursor()).as_bytes())
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    return (FollowEnd::Disconnected, made_progress);
                }
            }
            Some("snapshot") => {
                let Some(doc_value) = get(&msg, "doc") else {
                    return (FollowEnd::Disconnected, made_progress);
                };
                let doc: SnapshotDoc = match serde_json::from_value(doc_value.clone()) {
                    Ok(doc) => doc,
                    Err(_) => return (FollowEnd::Disconnected, made_progress),
                };
                if let Some(h) = get_u64(&msg, "head") {
                    let hr = get_u64(&msg, "head_records").unwrap_or(0);
                    repl.note_remote(primary_gen, h, hr);
                }
                match service.replica_install_snapshot(doc) {
                    Ok(cursor) => {
                        made_progress = true;
                        if writer
                            .write_all(ack_line(cursor).as_bytes())
                            .and_then(|_| writer.flush())
                            .is_err()
                        {
                            return (FollowEnd::Disconnected, made_progress);
                        }
                    }
                    Err(_) => return (FollowEnd::Disconnected, made_progress),
                }
            }
            Some("record") => {
                let Some(offset) = get_u64(&msg, "offset") else {
                    return (FollowEnd::Disconnected, made_progress);
                };
                if let Some(h) = get_u64(&msg, "head") {
                    let hr = get_u64(&msg, "head_records").unwrap_or(0);
                    repl.note_remote(primary_gen, h, hr);
                }
                let Some(record_value) = get(&msg, "record") else {
                    return (FollowEnd::Disconnected, made_progress);
                };
                match service.replica_apply(offset, record_value) {
                    Ok(cursor) => {
                        made_progress = true;
                        if writer
                            .write_all(ack_line(cursor).as_bytes())
                            .and_then(|_| writer.flush())
                            .is_err()
                        {
                            return (FollowEnd::Disconnected, made_progress);
                        }
                    }
                    Err(ReplicaApplyError::Desync { .. }) | Err(ReplicaApplyError::Bad(_)) => {
                        repl.set_force_reset();
                        return (FollowEnd::Disconnected, made_progress);
                    }
                    Err(ReplicaApplyError::Wal(_)) => {
                        return (FollowEnd::Disconnected, made_progress);
                    }
                }
            }
            _ => return (FollowEnd::Disconnected, made_progress),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    #[test]
    fn meta_roundtrips_and_defaults_when_missing() {
        let dir = std::env::temp_dir().join(format!("geacc-repl-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(load_meta(&dir).unwrap().generation, 0);
        let meta = ReplMeta {
            generation: 3,
            remote_base: 128,
            remote_records_base: 2,
            floor: 64,
        };
        store_meta(&dir, &meta).unwrap();
        let back = load_meta(&dir).unwrap();
        assert_eq!(back.generation, 3);
        assert_eq!(back.remote_base, 128);
        assert_eq!(back.remote_records_base, 2);
        assert_eq!(back.floor, 64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hub_fans_out_and_drops_slow_subscribers() {
        let hub = ReplHub::new();
        assert!(!hub.has_subscribers());
        let (id, rx) = hub.subscribe();
        assert!(hub.has_subscribers());
        hub.publish(Shipment::Record {
            offset: 0,
            head: 10,
            head_records: 1,
            payload: Arc::new("{}".to_string()),
        });
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap(),
            Shipment::Record { offset: 0, .. }
        ));
        hub.record_ack(id, 10);
        assert_eq!(hub.lag(), (1, Some(10)));
        // Fill the channel past its depth: the subscriber is dropped.
        for _ in 0..(SUB_CHANNEL_DEPTH + 2) {
            hub.publish(Shipment::Resync);
        }
        assert!(!hub.has_subscribers());
        hub.unsubscribe(id); // idempotent
    }

    #[test]
    fn state_tracks_cursor_in_remote_coordinates() {
        let state = ReplState::new();
        let meta = ReplMeta {
            generation: 2,
            remote_base: 100,
            remote_records_base: 4,
            floor: 0,
        };
        state.init(&meta, false, true, 50, 3);
        assert!(state.is_replica());
        assert_eq!(state.generation(), 2);
        assert_eq!(state.remote_cursor(), 150);
        assert_eq!(state.remote_records_cursor(), 7);
        state.advance_cursor(20);
        assert_eq!(state.remote_cursor(), 170);
        assert_eq!(state.remote_records_cursor(), 8);
        state.begin_resync(5, 400, 9);
        assert_eq!(state.generation(), 5);
        assert_eq!(state.remote_base(), 400);
        assert_eq!(state.remote_cursor(), 400);
        assert_eq!(state.remote_records_cursor(), 9);
        let meta = state.meta();
        assert_eq!(meta.generation, 5);
        assert_eq!(meta.remote_base, 400);
    }

    #[test]
    fn wire_lines_parse_back() {
        let hello = hello_line(3, "resume", 10, 1, 20, 2, None);
        let v: Value = serde_json::from_str(hello.trim()).unwrap();
        assert_eq!(get_str(&v, "repl"), Some("hello"));
        assert_eq!(get_u64(&v, "generation"), Some(3));
        assert_eq!(get_str(&v, "mode"), Some("resume"));
        assert_eq!(get_u64(&v, "head"), Some(20));
        assert_eq!(get_str(&v, "advertise"), None);

        let hello = hello_line(3, "reset", 0, 0, 20, 2, Some("127.0.0.1:7411"));
        let v: Value = serde_json::from_str(hello.trim()).unwrap();
        assert_eq!(get_str(&v, "advertise"), Some("127.0.0.1:7411"));

        let ping = ping_line(4, 30, 3, Some("127.0.0.1:7411"));
        let v: Value = serde_json::from_str(ping.trim()).unwrap();
        assert_eq!(get_str(&v, "repl"), Some("ping"));
        assert_eq!(get_u64(&v, "generation"), Some(4));
        assert_eq!(get_u64(&v, "head"), Some(30));
        assert_eq!(get_str(&v, "advertise"), Some("127.0.0.1:7411"));

        let rec = record_line(
            10,
            20,
            2,
            r#"{"Mutation":{"mutation":{"Attend":{"user":1}}}}"#,
        );
        let v: Value = serde_json::from_str(rec.trim()).unwrap();
        assert_eq!(get_u64(&v, "offset"), Some(10));
        assert!(get(&v, "record").is_some());

        let ack = ack_line(42);
        let v: Value = serde_json::from_str(ack.trim()).unwrap();
        assert_eq!(get_u64(&v, "offset"), Some(42));

        let hs = handshake_line(7, 1);
        let req = parse_request(hs.trim()).unwrap();
        assert_eq!(req.op, "replicate");
        assert_eq!(get_u64(&req.body, "from_offset"), Some(7));
    }

    #[test]
    fn backoff_grows_with_strikes_and_stays_bounded() {
        let mut rng = 0x1234_5678_9abc_def0u64;
        let d0 = backoff_delay(0, &mut rng);
        assert!(d0 >= Duration::from_millis(25) && d0 <= Duration::from_millis(50));
        let d6 = backoff_delay(6, &mut rng);
        assert!(d6 >= Duration::from_millis(1000) && d6 <= Duration::from_millis(2000));
        let d20 = backoff_delay(20, &mut rng);
        assert!(d20 <= Duration::from_millis(2000));
    }
}
