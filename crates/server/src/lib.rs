//! geacc-server: a long-running arrangement service.
//!
//! The batch tools answer "solve this file"; this crate keeps a live
//! [`geacc_core::IncrementalArranger`] resident behind a TCP socket and
//! applies registrations, cancellations, and newly discovered conflicts
//! as localized repairs — the serving half of the conflict-aware
//! event-participant arrangement problem. Std-only by design: the
//! listener is `std::net`, the protocol is newline-delimited JSON via
//! the workspace's vendored serde, and the worker pool is plain scoped
//! ownership over `std::sync::mpsc`.
//!
//! - [`server`] — poll-based event loop front end, bounded queue,
//!   worker pool, shutdown drain (see its docs for the threading and
//!   backpressure model).
//! - [`poll`] — the vendored `poll(2)` shim the event loop multiplexes
//!   nonblocking sockets with (std-only, no `libc` dependency).
//! - [`service`] — op handlers over the arranger (`load`, `mutate`,
//!   `query_*`, `solve`, `snapshot`/`restore`, `stats`, `shutdown`).
//! - [`protocol`] — request/response envelopes.
//! - [`metrics`] — atomic counters and the log₂ latency histogram.
//! - [`repl`] — WAL-shipping replication: primary→replica streaming,
//!   generation fencing, snapshot catch-up, promote-based failover.
//! - [`supervisor`] — lease-based automatic failover: heartbeats ride
//!   the replication stream, replicas elect deterministically on lease
//!   expiry, stale primaries self-fence and demote.
//! - [`client`] — a retrying client with idempotency keys and cluster
//!   topology awareness (CLI and loadgen share it).
//! - [`chaos`] — a deterministic network-chaos proxy for tests.
//!
//! Start one from the CLI (`geacc serve --addr 127.0.0.1:7411`) and
//! drive it with [`RetryClient`] or any newline-JSON speaker; DESIGN.md
//! §10 documents the wire protocol and the mutation/repair semantics,
//! §17 the event loop and epoch-based concurrency model.

// The request path must never panic: a poisoned worker turns into a
// wedged connection, not a structured error. Non-test server code is
// held to that with the lint below (the whole crate compiles with
// `cfg(test)` for unit tests, which keeps test asserts free to unwrap).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod client;
pub mod metrics;
pub mod poll;
pub mod protocol;
pub mod recovery;
pub mod repl;
pub mod server;
pub mod service;
pub mod supervisor;
pub mod wal;

pub use chaos::{ChaosPlan, ChaosProxy, LinePolicy};
pub use client::{ClientConfig, ClientError, ClientStats, RetryClient};
pub use metrics::{LatencyHistogram, MetricsSnapshot, Op, ServerMetrics};
pub use protocol::{Request, ServiceError};
pub use recovery::{recover, Recovery, RecoveryError};
pub use repl::{ReplMeta, ReplState};
pub use server::{Server, ServerConfig};
pub use service::Service;
pub use supervisor::{SupervisorConfig, SupervisorState};
pub use wal::{FsyncPolicy, WalRecord, WalWriter};
