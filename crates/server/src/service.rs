//! Op handlers: the bridge from wire requests to the
//! [`IncrementalArranger`].
//!
//! One [`Service`] is shared by every worker. The session lock guards
//! the *mutation path* only — mutations are localized repairs
//! (microseconds on serving-size instances), so it is held briefly.
//! Everything else reads through epoch-pinned state published under
//! that lock (DESIGN.md §17):
//!
//! - `health`/`stats` read a scalar summary cell republished on every
//!   state change — they never touch the session lock at all;
//! - `query_user`/`query_event` pin an immutable per-epoch snapshot
//!   (capacities, the arrangement, and the epoch's shared
//!   [`GraphFlats`] CSR), rebuilt lazily on the first read after a
//!   state change and shared by every read in the same epoch;
//! - `solve` goes through a coalescing batcher: concurrent solves pin
//!   one epoch — an `Arc`'d instance plus that epoch's CSR — run one
//!   budgeted pipeline per distinct parameter group *off* the session
//!   lock, then re-take it only to adopt the best result and append
//!   one WAL `Install` record for the whole batch.
//!
//! The epoch CSR itself is maintained incrementally by
//! [`IncrementalArranger::epoch_flats`]: growth mutations extend the
//! previous epoch's arrays in time proportional to the drift, and
//! non-growth mutations reuse them outright (bit-identity against a
//! from-scratch build is property-tested in
//! `crates/core/tests/graph_incremental.rs`).
//!
//! ## Durability
//!
//! With a `--wal-dir`, every state change is logged to the WAL **before
//! the client is acked** (see [`crate::wal`]): `load` logs the base
//! instance, `mutate` logs the mutation *before* applying it (a
//! mutation that then fails to apply fails identically on replay and is
//! skipped), and `solve` logs the adopted arrangement. `restore` swaps
//! in a whole new history, so instead of logging it record-by-record it
//! forces an atomic snapshot at the current WAL offset — recovery
//! resumes from the snapshot and the old log tail is superseded.
//!
//! The WAL lock is only ever taken while the session lock is held (or
//! for read-only stats), so append order always matches apply order. If
//! an append or sync fails, the durability layer is **poisoned**: the
//! in-memory state and the log can no longer be proven consistent, so
//! every later state-changing op answers a structured `wal_failed`
//! error instead of quietly diverging. Read ops keep working; a restart
//! recovers the last durable state.

use crate::metrics::ServerMetrics;
use crate::protocol::{self, Request, ServiceError};
use crate::recovery::{self, Recovery};
use crate::repl::{self, ReplState, Shipment};
use crate::supervisor::{SupervisorConfig, SupervisorState};
use crate::wal::{self, FsyncPolicy, SnapshotDoc, WalRecord, WalSink, WalWriter};
use geacc_core::algorithms::Algorithm;
use geacc_core::loader::{self, LoadError};
use geacc_core::parallel::Threads;
use geacc_core::{
    Arrangement, CandidateGraph, DynamicConfig, EngineStats, EventId, GraphFlats,
    IncrementalArranger, Instance, Mutation, Outcome, SolveBudget, SolverPipeline, SolverRegistry,
    UserId,
};
use serde::Serialize;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serialize one response field. Failures (a NaN drift, say) become a
/// structured `internal` error — the request path never panics.
fn field<T: Serialize>(key: &str, value: &T) -> Result<(String, Value), ServiceError> {
    match serde_json::to_value(value) {
        Ok(v) => Ok((key.to_string(), v)),
        Err(e) => Err(ServiceError::new(
            "internal",
            format!("serializing response field {key:?}: {e}"),
        )),
    }
}

fn bad_request(message: impl Into<String>) -> ServiceError {
    ServiceError::new("bad_request", message)
}

fn no_instance() -> ServiceError {
    ServiceError::new("no_instance", "no instance loaded; send a \"load\" first")
}

fn wal_failed(detail: impl std::fmt::Display) -> ServiceError {
    ServiceError::new(
        "wal_failed",
        format!(
            "WAL write failed: {detail}; durability is poisoned and \
             state-changing ops are disabled until restart (reads still work)"
        ),
    )
}

/// The shared request handler: arranger state, metrics, and the stop
/// flag the `shutdown` op raises.
pub struct Service {
    state: Mutex<Option<Session>>,
    /// The WAL half. `None` without `--wal-dir`. Locked only while the
    /// session lock is held (mutating ops) or alone for read-only stats
    /// — never the other way round.
    durability: Mutex<Option<Durability>>,
    /// Idempotency dedup: the last `(client_id, seq)` and its cached
    /// response, per client. Locked only under the session lock (or
    /// alone, briefly, nowhere else) — always after it, never before.
    dedup: Mutex<DedupTable>,
    /// Replication role, generation, and cursor (all atomics), plus the
    /// fan-out hub for connected replica streams.
    pub(crate) repl: ReplState,
    /// Supervision: lease clocks, cluster topology, and the write
    /// fence. Always present; inert until [`Self::begin_supervision`].
    sup: SupervisorState,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) stop: Arc<AtomicBool>,
    threads: Threads,
    drift_ratio: f64,
    /// Monotone state-version clock, bumped (under the session lock) by
    /// every state change. Ties the published summary and the epoch
    /// pins below to the exact state they were cut from.
    state_version: AtomicU64,
    /// Scalar summary of the last published state, for `health`/`stats`
    /// — a leaf lock, never held while taking any other.
    summary_cell: Mutex<Option<StateSummary>>,
    /// Epoch-pinned read view for `query_*`, rebuilt lazily on the
    /// first read after a state change (leaf lock).
    read_pin: Mutex<Option<Arc<ReadSnapshot>>>,
    /// Epoch-pinned `(instance, CSR)` pair for solve batches (leaf
    /// lock); reused verbatim while the state version holds still.
    solve_pin: Mutex<Option<Arc<SolvePin>>>,
    /// Solve coalescer: concurrent solves in one epoch share one
    /// pipeline run per distinct parameter group.
    batcher: SolveBatcher,
}

/// The scalars `health` and `stats` serve without the session lock,
/// republished under that lock on every state change.
struct StateSummary {
    epoch: u64,
    fingerprint: u64,
    /// The full arranger summary object (`epoch`/`max_sum`/`drift`/…).
    summary: Value,
}

/// An immutable per-epoch view for point reads: everything
/// `query_user`/`query_event` answer from, with pair similarities
/// served by the epoch's shared CSR (a positive-similarity pair is in
/// the CSR by construction, and assigned pairs always have positive
/// similarity).
struct ReadSnapshot {
    version: u64,
    num_events: usize,
    num_users: usize,
    cap_v: Vec<u32>,
    cap_u: Vec<u32>,
    flats: Arc<GraphFlats>,
    arrangement: Arc<Arrangement>,
}

/// An immutable per-epoch `(instance, CSR)` pair solve batches run
/// over, off the session lock. The instance clone is paid once per
/// epoch that actually solves, not once per request.
struct SolvePin {
    version: u64,
    inst: Arc<Instance>,
    flats: Arc<GraphFlats>,
}

/// One solve request's parameters, parsed up front so identical
/// requests in a batch collapse into a single pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SolveSpec {
    algorithm: Algorithm,
    seed: u64,
    timeout_ms: Option<u64>,
    max_nodes: Option<u64>,
    refine: bool,
}

/// A request parked in the batcher: its spec, its admission deadline,
/// and the slot its result lands in.
struct PendingSolve {
    spec: SolveSpec,
    deadline: Instant,
    slot: Arc<SolveSlot>,
}

/// A one-shot result mailbox (filled exactly once per request).
#[derive(Default)]
struct SolveSlot {
    done: Mutex<Option<Result<Value, ServiceError>>>,
    cv: Condvar,
}

impl SolveSlot {
    fn fill(&self, result: Result<Value, ServiceError>) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.cv.notify_all();
    }

    fn filled(&self) -> bool {
        self.done
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    fn take(&self) -> Result<Value, ServiceError> {
        let mut guard = self.done.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[derive(Default)]
struct BatchGate {
    pending: Vec<PendingSolve>,
    /// A leader is currently executing a batch.
    running: bool,
}

/// Leader/follower solve coalescing. A solve enqueues itself and, if
/// no batch is in flight, becomes the leader: it takes *everything*
/// pending as one batch and executes it. Requests arriving while a
/// batch runs park until the leader finishes, then either find their
/// slot filled (the leader carried them) or contend to lead the next
/// batch themselves. Every batch completion wakes all waiters, so
/// exactly one leader runs at a time and no request waits forever.
#[derive(Default)]
struct SolveBatcher {
    gate: Mutex<BatchGate>,
    cv: Condvar,
}

impl SolveBatcher {
    fn submit(
        &self,
        svc: &Service,
        spec: SolveSpec,
        deadline: Instant,
    ) -> Result<Value, ServiceError> {
        let slot = Arc::new(SolveSlot::default());
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.pending.push(PendingSolve {
            spec,
            deadline,
            slot: Arc::clone(&slot),
        });
        loop {
            if !gate.running {
                gate.running = true;
                let batch = std::mem::take(&mut gate.pending);
                drop(gate);
                // The leader executes on its own worker thread. A panic
                // in the batch machinery (the pipeline already contains
                // solver panics) must not strand followers or wedge the
                // gate.
                if catch_unwind(AssertUnwindSafe(|| svc.execute_batch(&batch))).is_err() {
                    for p in &batch {
                        if !p.slot.filled() {
                            p.slot.fill(Err(ServiceError::new(
                                "internal",
                                "solve batch panicked; see server logs",
                            )));
                        }
                    }
                }
                let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
                gate.running = false;
                drop(gate);
                self.cv.notify_all();
                return slot.take();
            }
            // A batch is in flight; it either carried this request
            // (slot filled on wake) or left it pending for the next
            // leader — possibly us.
            gate = self.cv.wait(gate).unwrap_or_else(|e| e.into_inner());
            if slot.filled() {
                return slot.take();
            }
        }
    }
}

/// Cap on tracked dedup clients; the least recently *stored* client is
/// evicted at the cap, bounding the table regardless of client churn.
const DEDUP_MAX_CLIENTS: usize = 1024;

struct DedupEntry {
    seq: u64,
    response: Value,
    tick: u64,
}

/// Per-client last-seq dedup. A client retries with the *same* seq, so
/// one entry per client suffices: `seq == stored` replays the cached
/// response, `seq < stored` is a protocol error (`stale_seq`), and
/// `seq > stored` is fresh work.
#[derive(Default)]
struct DedupTable {
    entries: BTreeMap<String, DedupEntry>,
    tick: u64,
}

enum DedupCheck {
    Fresh,
    Hit(Value),
    Stale(u64),
}

/// The response replayed for a key learned from the WAL rather than a
/// live call (the original response is gone; the point is not to
/// double-apply).
fn deduped_marker() -> Value {
    json!({"deduped": true})
}

impl DedupTable {
    fn check(&mut self, client: &str, seq: u64) -> DedupCheck {
        match self.entries.get(client) {
            Some(e) if seq == e.seq => DedupCheck::Hit(e.response.clone()),
            Some(e) if seq < e.seq => DedupCheck::Stale(e.seq),
            _ => DedupCheck::Fresh,
        }
    }

    fn store(&mut self, client: String, seq: u64, response: Value) {
        self.tick += 1;
        let tick = self.tick;
        if !self.entries.contains_key(&client) && self.entries.len() >= DEDUP_MAX_CLIENTS {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            client,
            DedupEntry {
                seq,
                response,
                tick,
            },
        );
    }

    fn seed(&mut self, keys: &[(String, u64)]) {
        for (client, seq) in keys {
            self.store(client.clone(), *seq, deduped_marker());
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Why a replica could not apply a shipped record.
#[derive(Debug)]
pub enum ReplicaApplyError {
    /// The record's offset does not match the replica's cursor (a line
    /// was lost); the follower resyncs.
    Desync { expected: u64, got: u64 },
    /// The record failed to parse or re-encode.
    Bad(String),
    /// The local WAL append failed; durability is poisoned.
    Wal(String),
}

/// A loaded instance under management: the arranger plus the pristine
/// base instance that snapshots embed.
struct Session {
    arranger: IncrementalArranger,
    base: Instance,
}

/// The live durability state behind a `--wal-dir`. The writer's sink
/// is type-erased so tests can run the whole service over an injected
/// fault sink (disk-full, torn tail) instead of a real file.
struct Durability {
    dir: PathBuf,
    writer: WalWriter<Box<dyn WalSink + Send>>,
    policy: FsyncPolicy,
    /// Auto-snapshot cadence in mutations; `None` disables rotation.
    snapshot_every: Option<u64>,
    /// Epoch at the last rotated (or recovered) snapshot.
    last_snapshot_epoch: Option<u64>,
    /// Set when an append/sync failed: memory and log may disagree, so
    /// state-changing ops are refused until a restart re-syncs them.
    poisoned: Option<String>,
}

impl Service {
    pub fn new(
        metrics: Arc<ServerMetrics>,
        stop: Arc<AtomicBool>,
        threads: Threads,
        drift_ratio: f64,
    ) -> Self {
        Service {
            state: Mutex::new(None),
            durability: Mutex::new(None),
            dedup: Mutex::new(DedupTable::default()),
            repl: ReplState::new(),
            sup: SupervisorState::new(),
            metrics,
            stop,
            threads,
            drift_ratio,
            state_version: AtomicU64::new(0),
            summary_cell: Mutex::new(None),
            read_pin: Mutex::new(None),
            solve_pin: Mutex::new(None),
            batcher: SolveBatcher::default(),
        }
    }

    /// The replication state (role, generation, cursor, hub).
    pub fn replication(&self) -> &ReplState {
        &self.repl
    }

    /// The supervision state (lease clocks, topology hints, the fence).
    pub fn supervision(&self) -> &SupervisorState {
        &self.sup
    }

    /// Arm supervision. Called once at bind time, after
    /// [`Self::init_replication`]. A supervised *primary* with peers
    /// starts fenced on probation: after a `kill -9` and restart it may
    /// not ack a single write until one probe round reaches every peer
    /// and finds no senior generation — the window in which a
    /// resurrected stale primary would otherwise split the brain.
    pub fn begin_supervision(&self, config: &SupervisorConfig) {
        self.sup.configure(config);
        if !self.repl.is_replica() && !config.peers.is_empty() {
            self.sup.set_fenced(true);
        }
    }

    fn lock(&self) -> MutexGuard<'_, Option<Session>> {
        // A worker that panicked inside a handler poisons the lock; the
        // panic was already caught and reported as an `internal` error,
        // so keep serving rather than wedging every later request.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn dlock(&self) -> MutexGuard<'_, Option<Durability>> {
        self.durability.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn dedup_lock(&self) -> MutexGuard<'_, DedupTable> {
        self.dedup.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn summary_lock(&self) -> MutexGuard<'_, Option<StateSummary>> {
        self.summary_cell.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Republish the scalar summary and bump the state version. Must be
    /// called with the session lock held after every state change —
    /// it is what keeps `health`/`stats` and the epoch pins coherent
    /// without their ever taking the session lock.
    fn publish_session(&self, session: &Session) {
        let cell = StateSummary {
            epoch: session.arranger.epoch(),
            fingerprint: session.arranger.fingerprint(),
            summary: Self::summary(&session.arranger).unwrap_or(Value::Null),
        };
        self.state_version.fetch_add(1, Ordering::SeqCst);
        *self.summary_lock() = Some(cell);
    }

    /// Publish "no session" (replica resync wipes the state).
    fn publish_cleared(&self) {
        self.state_version.fetch_add(1, Ordering::SeqCst);
        *self.summary_lock() = None;
    }

    /// The monotonic state-version counter, bumped on every published
    /// state change. Deterministic read responses are a pure function
    /// of (request line, version) — the event loops key their inline
    /// response caches on it.
    pub(crate) fn state_version(&self) -> u64 {
        self.state_version.load(Ordering::SeqCst)
    }

    /// Pin the current epoch for a point read. The fast path is a
    /// version check plus an `Arc` clone; only the first read after a
    /// state change takes the session lock, to cut a fresh snapshot
    /// (reusing — or drift-proportionally extending — the epoch CSR).
    fn pin_read(&self) -> Result<Arc<ReadSnapshot>, ServiceError> {
        let version = self.state_version.load(Ordering::SeqCst);
        {
            let pin = self.read_pin.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(snap) = pin.as_ref() {
                if snap.version == version {
                    self.metrics.record_epoch_pin(false);
                    return Ok(Arc::clone(snap));
                }
            }
        }
        let mut guard = self.lock();
        let session = guard.as_mut().ok_or_else(no_instance)?;
        // Re-read under the lock: the version cannot advance while we
        // hold it, so the pin is cut from exactly this version's state.
        let version = self.state_version.load(Ordering::SeqCst);
        let flats = session.arranger.epoch_flats(self.threads);
        let inst = session.arranger.instance();
        let snap = Arc::new(ReadSnapshot {
            version,
            num_events: inst.num_events(),
            num_users: inst.num_users(),
            cap_v: inst.events().map(|v| inst.event_capacity(v)).collect(),
            cap_u: inst.users().map(|u| inst.user_capacity(u)).collect(),
            flats,
            arrangement: Arc::new(session.arranger.arrangement().clone()),
        });
        *self.read_pin.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&snap));
        self.metrics.record_epoch_pin(true);
        Ok(snap)
    }

    /// Pin the current epoch for a solve batch: the epoch's CSR plus an
    /// owned instance clone the pipeline can borrow off the session
    /// lock. `None` when no instance is loaded.
    fn pin_solve(&self) -> Option<Arc<SolvePin>> {
        let version = self.state_version.load(Ordering::SeqCst);
        {
            let pin = self.solve_pin.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = pin.as_ref() {
                if p.version == version {
                    return Some(Arc::clone(p));
                }
            }
        }
        let mut guard = self.lock();
        let session = guard.as_mut()?;
        let version = self.state_version.load(Ordering::SeqCst);
        let flats = session.arranger.epoch_flats(self.threads);
        let pin = Arc::new(SolvePin {
            version,
            inst: Arc::new(session.arranger.instance().clone()),
            flats,
        });
        *self.solve_pin.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&pin));
        Some(pin)
    }

    /// Adopt the state recovery reconstructed from a `--wal-dir` and
    /// arm the WAL writer at the offset recovery validated. Called once
    /// at bind time, before any request thread exists.
    pub fn install_recovered<S: WalSink + Send + 'static>(
        &self,
        recovery: Recovery,
        writer: WalWriter<S>,
        dir: PathBuf,
        policy: FsyncPolicy,
        snapshot_every: Option<u64>,
    ) {
        let writer = writer.boxed();
        self.metrics.record_recovery(
            recovery.replayed,
            recovery.skipped,
            recovery.truncated_bytes,
        );
        self.metrics
            .record_wal(writer.records(), writer.offset(), writer.fsyncs());
        self.dedup_lock().seed(&recovery.dedup_keys);
        if let Some(found) = recovery.session {
            let session = Session {
                arranger: found.arranger,
                base: found.base,
            };
            self.publish_session(&session);
            *self.lock() = Some(session);
        }
        *self.dlock() = Some(Durability {
            dir,
            writer,
            policy,
            snapshot_every,
            last_snapshot_epoch: recovery.snapshot_epoch,
            poisoned: None,
        });
    }

    /// Force any buffered WAL bytes to disk (the drain barrier). A
    /// no-op without a WAL or with a poisoned one.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        let mut guard = self.dlock();
        if let Some(d) = guard.as_mut() {
            if d.poisoned.is_none() {
                d.writer.sync_now()?;
                self.metrics
                    .record_wal(d.writer.records(), d.writer.offset(), d.writer.fsyncs());
            }
        }
        Ok(())
    }

    /// Append one record to the WAL (no-op without one), mirroring the
    /// writer's counters into the metrics. Must be called with the
    /// session lock held so append order matches apply order. An error
    /// poisons durability: the caller must not ack the request.
    fn log_record(&self, record: &WalRecord) -> Result<(), ServiceError> {
        let mut guard = self.dlock();
        let Some(d) = guard.as_mut() else {
            return Ok(());
        };
        if let Some(why) = &d.poisoned {
            return Err(wal_failed(why));
        }
        // Serialize once: the same bytes go to the local WAL frame and
        // (verbatim) to every connected replica, which appends them
        // byte-for-byte — replica WALs stay bit-identical to ours.
        let payload = serde_json::to_string(record)
            .map_err(|e| ServiceError::new("internal", format!("encoding WAL record: {e}")))?;
        match d.writer.append_payload(payload.as_bytes()) {
            Ok(start) => {
                if matches!(record, WalRecord::Load { .. }) {
                    // A fresh session restarts the epoch clock; the
                    // auto-snapshot cadence restarts with it.
                    d.last_snapshot_epoch = None;
                }
                self.metrics
                    .record_wal(d.writer.records(), d.writer.offset(), d.writer.fsyncs());
                if self.repl.hub.has_subscribers() {
                    let base = self.repl.remote_base();
                    let records_base = self.repl.remote_records_base();
                    self.repl.hub.publish(Shipment::Record {
                        offset: base + start,
                        head: base + d.writer.offset(),
                        head_records: records_base + d.writer.records(),
                        payload: Arc::new(payload),
                    });
                }
                Ok(())
            }
            Err(e) => {
                let detail = e.to_string();
                d.poisoned = Some(detail.clone());
                Err(wal_failed(detail))
            }
        }
    }

    /// Rotate an auto-snapshot if the cadence is due. Failures are
    /// counted but never fail the request — the WAL already holds the
    /// acked history, so a missed rotation only costs recovery time.
    fn maybe_auto_snapshot(&self, session: &Session) {
        let mut guard = self.dlock();
        let Some(d) = guard.as_mut() else {
            return;
        };
        let Some(every) = d.snapshot_every else {
            return;
        };
        if every == 0 || d.poisoned.is_some() {
            return;
        }
        let epoch = session.arranger.epoch();
        let since = match d.last_snapshot_epoch {
            Some(at) => epoch.saturating_sub(at),
            None => epoch,
        };
        if since < every {
            return;
        }
        match Self::cut_snapshot(d, session.arranger(), &session.base) {
            Ok(()) => {
                d.last_snapshot_epoch = Some(epoch);
                self.metrics.record_snapshot(epoch);
                self.metrics
                    .record_wal(d.writer.records(), d.writer.offset(), d.writer.fsyncs());
            }
            Err(_) => self.metrics.record_snapshot_error(),
        }
    }

    /// Write the durability snapshot for `arranger` at the writer's
    /// current offset: sync the WAL first (the snapshot must not claim
    /// bytes that are not yet on disk), then atomically rotate the file.
    fn cut_snapshot(
        d: &mut Durability,
        arranger: &IncrementalArranger,
        base: &Instance,
    ) -> std::io::Result<()> {
        d.writer.sync_now()?;
        let doc = SnapshotDoc {
            version: 1,
            wal_offset: d.writer.offset(),
            wal_records: d.writer.records(),
            epoch: arranger.epoch(),
            base: base.clone(),
            live: arranger.instance().clone(),
            log: arranger.log().to_vec(),
            arrangement: arranger.arrangement().clone(),
            baseline: arranger.baseline_max_sum(),
        };
        wal::write_snapshot(&recovery::snapshot_path(&d.dir), &doc)
    }

    /// Dispatch one request. `deadline` is the request's admission time
    /// plus its timeout; ops check it on entry and `solve` additionally
    /// clamps its budget to the time left.
    pub fn handle(&self, request: &Request, deadline: Instant) -> Result<Value, ServiceError> {
        let now = Instant::now();
        if now >= deadline {
            return Err(ServiceError::new(
                "deadline_exceeded",
                "request timed out in queue before a worker picked it up",
            ));
        }
        // A replica serves reads but refuses mutations with a stable
        // code — clients fail over to the primary (or wait for a
        // promote) instead of diverging the follower. The rejection
        // carries the primary's address when known, so a misdirected
        // client self-corrects instead of erroring forever.
        let writes = matches!(request.op.as_str(), "load" | "mutate" | "solve" | "restore");
        if self.repl.is_replica() && writes {
            let mut error = ServiceError::new(
                "read_only",
                format!(
                    "this node is a replica; {:?} is only served by the \
                     primary (send \"promote\" to take over)",
                    request.op
                ),
            );
            if let Some(hint) = self.sup.primary_hint() {
                error = error.with_primary_hint(hint);
            }
            return Err(error);
        }
        // A fenced supervised primary refuses writes: the replicas it
        // lost contact with may be electing a successor, and acking a
        // write now is exactly how split-brain happens.
        if writes && self.sup.enabled() && !self.repl.is_replica() && self.sup.fenced() {
            let mut error = ServiceError::new(
                "lease_lost",
                "this primary is fenced (replica contact lost, or probation \
                 after a restart) and refuses writes until the cluster view \
                 settles; reads still serve",
            )
            .with_retry_after(self.sup.lease_interval().as_millis() as u64);
            if let Some(hint) = self.sup.primary_hint() {
                error = error.with_primary_hint(hint);
            }
            return Err(error);
        }
        match request.op.as_str() {
            "load" => self.load(&request.body),
            "mutate" => self.mutate(&request.body),
            "query_user" => self.query_user(&request.body),
            "query_event" => self.query_event(&request.body),
            "stats" => self.stats(),
            "health" => self.health(),
            "promote" => self.promote(),
            "solve" => self.solve(&request.body, deadline),
            "snapshot" => self.snapshot(&request.body),
            "restore" => self.restore(&request.body),
            "shutdown" => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(json!({"stopping": true}))
            }
            other => Err(ServiceError::new(
                "unknown_op",
                format!("unknown op {other:?}"),
            )),
        }
    }

    fn with_session<T>(
        &self,
        f: impl FnOnce(&mut Session) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let mut guard = self.lock();
        match guard.as_mut() {
            Some(session) => f(session),
            None => Err(no_instance()),
        }
    }

    fn summary(arranger: &IncrementalArranger) -> Result<Value, ServiceError> {
        Ok(Value::Object(vec![
            field("epoch", &arranger.epoch())?,
            field("num_events", &arranger.instance().num_events())?,
            field("num_users", &arranger.instance().num_users())?,
            field("pairs", &arranger.arrangement().len())?,
            field("max_sum", &arranger.max_sum())?,
            field("drift", &arranger.drift())?,
            field("needs_rebuild", &arranger.needs_rebuild())?,
            field("fingerprint", &arranger.fingerprint())?,
        ]))
    }

    /// `load`: adopt an instance, inline (`"instance": {…}`) or from a
    /// JSON file (`"path": "…"`). Replaces any previous session. The
    /// session lock is held across the WAL append and the swap so a
    /// concurrent mutate cannot interleave between them.
    fn load(&self, body: &Value) -> Result<Value, ServiceError> {
        let instance: Instance = match (
            protocol::get(body, "instance"),
            protocol::get_str(body, "path"),
        ) {
            (Some(value), None) => serde_json::from_value(value.clone())
                .map_err(|e| bad_request(format!("bad instance: {e}")))?,
            // The shared core loader: the same LoadError classification
            // (and the same line/column context) the CLI prints.
            (None, Some(path)) => loader::load_instance(path).map_err(|e| match e {
                LoadError::Io { .. } => ServiceError::new("io", e.to_string()),
                LoadError::Syntax { .. } | LoadError::Invalid { .. } => bad_request(e.to_string()),
            })?,
            _ => {
                return Err(bad_request(
                    "load takes exactly one of \"instance\" (inline) or \"path\" (file)",
                ))
            }
        };
        let mut guard = self.lock();
        self.log_record(&WalRecord::Load {
            instance: instance.clone(),
        })?;
        let arranger = IncrementalArranger::new(
            instance.clone(),
            DynamicConfig {
                rebuild_drift_ratio: self.drift_ratio,
            },
        );
        let summary = Self::summary(&arranger)?;
        let session = Session {
            arranger,
            base: instance,
        };
        self.publish_session(&session);
        *guard = Some(session);
        Ok(summary)
    }

    /// `mutate`: apply one [`Mutation`] with localized repair. The
    /// mutation is WAL-logged **before** it is applied: an acked mutate
    /// is durable, and a logged mutation that fails to apply fails
    /// identically on replay (the arranger is deterministic), so the
    /// record is harmless.
    fn mutate(&self, body: &Value) -> Result<Value, ServiceError> {
        let mutation: Mutation = match protocol::get(body, "mutation") {
            Some(value) => serde_json::from_value(value.clone())
                .map_err(|e| bad_request(format!("bad mutation: {e}")))?,
            None => return Err(bad_request("mutate needs a \"mutation\" object")),
        };
        // Optional idempotency key: both fields or neither.
        let key = match (
            protocol::get_str(body, "client_id"),
            protocol::get_u64(body, "seq"),
        ) {
            (Some(client), Some(seq)) => Some((client.to_string(), seq)),
            (None, None) => None,
            _ => {
                return Err(bad_request(
                    "idempotent mutate needs both \"client_id\" and \"seq\"",
                ))
            }
        };
        self.with_session(|session| {
            if let Some((client, seq)) = &key {
                match self.dedup_lock().check(client, *seq) {
                    DedupCheck::Hit(response) => {
                        // A retry of an already-applied mutation: replay
                        // the original ack, apply nothing.
                        self.metrics.record_dedup_hit();
                        return Ok(response);
                    }
                    DedupCheck::Stale(latest) => {
                        return Err(ServiceError::new(
                            "stale_seq",
                            format!(
                                "seq {seq} is behind the newest seq {latest} \
                                 seen for client {client:?}"
                            ),
                        ));
                    }
                    DedupCheck::Fresh => {}
                }
            }
            let record = match &key {
                Some((client, seq)) => WalRecord::KeyedMutation {
                    client: client.clone(),
                    seq: *seq,
                    mutation: mutation.clone(),
                },
                None => WalRecord::Mutation {
                    mutation: mutation.clone(),
                },
            };
            self.log_record(&record)?;
            let report = session
                .arranger
                .apply(mutation)
                .map_err(|e| ServiceError::new("mutation_failed", e.to_string()))?;
            self.metrics
                .record_repair(report.evicted, report.reassigned);
            let response = Value::Object(vec![
                field("epoch", &report.epoch)?,
                field("evicted", &report.evicted)?,
                field("reassigned", &report.reassigned)?,
                field("max_sum", &report.max_sum_after)?,
                field("delta", &report.max_sum_delta())?,
                field("drift", &session.arranger.drift())?,
                field("needs_rebuild", &session.arranger.needs_rebuild())?,
            ]);
            // Arm the dedup only for an *applied* mutation: a failed
            // one fails identically on retry (the arranger is
            // deterministic), so re-trying it is harmless and correct.
            if let Some((client, seq)) = key {
                self.dedup_lock().store(client, seq, response.clone());
            }
            self.publish_session(session);
            self.maybe_auto_snapshot(session);
            Ok(response)
        })
    }

    /// `query_user`: a user's current assignments with similarities,
    /// answered from the pinned epoch snapshot (assigned pairs always
    /// have positive similarity, so the epoch CSR carries every value
    /// this op reports).
    fn query_user(&self, body: &Value) -> Result<Value, ServiceError> {
        let id = protocol::get_u64(body, "user")
            .ok_or_else(|| bad_request("query_user needs a numeric \"user\""))?;
        let snap = self.pin_read()?;
        if id >= snap.num_users as u64 {
            return Err(bad_request(format!(
                "user u{id} out of range (instance has {})",
                snap.num_users
            )));
        }
        let u = UserId(id as u32);
        let events = snap
            .arrangement
            .events_of(u)
            .iter()
            .map(|&v| {
                Ok(Value::Object(vec![
                    field("event", &v)?,
                    field("similarity", &snap.flats.similarity(v, u))?,
                ]))
            })
            .collect::<Result<Vec<Value>, ServiceError>>()?;
        Ok(Value::Object(vec![
            field("user", &u)?,
            field("capacity", &snap.cap_u[id as usize])?,
            ("events".to_string(), Value::Array(events)),
        ]))
    }

    /// `query_event`: an event's current attendees with similarities,
    /// answered from the pinned epoch snapshot.
    fn query_event(&self, body: &Value) -> Result<Value, ServiceError> {
        let id = protocol::get_u64(body, "event")
            .ok_or_else(|| bad_request("query_event needs a numeric \"event\""))?;
        let snap = self.pin_read()?;
        if id >= snap.num_events as u64 {
            return Err(bad_request(format!(
                "event v{id} out of range (instance has {})",
                snap.num_events
            )));
        }
        let v = EventId(id as u32);
        let attendees = (0..snap.num_users as u32)
            .map(UserId)
            .filter(|&u| snap.arrangement.contains(v, u))
            .map(|u| {
                Ok(Value::Object(vec![
                    field("user", &u)?,
                    field("similarity", &snap.flats.similarity(v, u))?,
                ]))
            })
            .collect::<Result<Vec<Value>, ServiceError>>()?;
        Ok(Value::Object(vec![
            field("event", &v)?,
            field("capacity", &snap.cap_v[id as usize])?,
            field("count", &snap.arrangement.attendees_of(v))?,
            ("attendees".to_string(), Value::Array(attendees)),
        ]))
    }

    /// `stats`: live metrics plus the arranger summary (null before
    /// `load`), per-solver engine timings, and the durability state
    /// (null without `--wal-dir`). Served from the published summary
    /// cell — never the session lock — so it stays flat while mutates
    /// and solves contend.
    fn stats(&self) -> Result<Value, ServiceError> {
        let arranger = match self.summary_lock().as_ref() {
            Some(cell) => cell.summary.clone(),
            None => Value::Null,
        };
        let engine = EngineStats::snapshot()
            .iter()
            .map(|t| {
                Ok(Value::Object(vec![
                    field("solver", &t.stage)?,
                    field("calls", &t.calls)?,
                    field("total_ms", &(t.total().as_secs_f64() * 1e3))?,
                    field("mean_ms", &(t.mean().as_secs_f64() * 1e3))?,
                    field("improvements", &t.improvements)?,
                    field("last_incumbent", &t.last_incumbent())?,
                ]))
            })
            .collect::<Result<Vec<Value>, ServiceError>>()?;
        let durability = match self.dlock().as_ref() {
            Some(d) => Value::Object(vec![
                field("wal_dir", &d.dir.display().to_string())?,
                field("fsync", &d.policy.to_string())?,
                field("wal_offset", &d.writer.offset())?,
                field("wal_records", &d.writer.records())?,
                field("snapshot_every", &d.snapshot_every)?,
                field("last_snapshot_epoch", &d.last_snapshot_epoch)?,
                field("poisoned", &d.poisoned)?,
            ]),
            None => Value::Null,
        };
        Ok(Value::Object(vec![
            field("server", &self.metrics.snapshot())?,
            ("arranger".to_string(), arranger),
            ("engine".to_string(), Value::Array(engine)),
            ("durability".to_string(), durability),
            ("replication".to_string(), self.replication_stats()?),
        ]))
    }

    /// The `replication` section of `stats` (same lag fields `health`
    /// reports).
    fn replication_stats(&self) -> Result<Value, ServiceError> {
        if self.repl.is_replica() {
            Ok(Value::Object(vec![
                field("role", &"replica")?,
                field("generation", &self.repl.generation())?,
                field("connected", &self.repl.connected())?,
                field(
                    "lag_records",
                    &self
                        .repl
                        .last_seen_head_records()
                        .saturating_sub(self.repl.remote_records_cursor()),
                )?,
                field(
                    "lag_bytes",
                    &self
                        .repl
                        .last_seen_head()
                        .saturating_sub(self.repl.remote_cursor()),
                )?,
                field("remote_offset", &self.repl.remote_cursor())?,
            ]))
        } else {
            let (replicas, min_acked) = self.repl.hub.lag();
            Ok(Value::Object(vec![
                field("role", &"primary")?,
                field("generation", &self.repl.generation())?,
                field("accepting_replicas", &self.repl.accepts_replicas())?,
                field("replicas", &replicas)?,
                field("min_acked_offset", &min_acked)?,
            ]))
        }
    }

    /// `health`: a one-line liveness/role probe. `status` is `"ok"`,
    /// `"degraded"` (WAL poisoned — reads still serve, state changes
    /// refuse), `"fenced"` (supervised primary refusing writes), or
    /// `"replica"` (read-only follower, with lag). Also the wire the
    /// supervisor's peer probes and the client's topology re-resolution
    /// ride on: `node_id`, `repl_offset` (the election rank),
    /// `fenced`, `advertise`, and `primary_hint` when known.
    fn health(&self) -> Result<Value, ServiceError> {
        // From the published summary cell, never the session lock: a
        // supervisor probe or load balancer must get an answer even
        // while a long mutation stream hammers the arranger.
        let (epoch, fingerprint) = match self.summary_lock().as_ref() {
            Some(cell) => (Some(cell.epoch), Some(cell.fingerprint)),
            None => (None, None),
        };
        let (wal, wal_offset): (Option<&str>, u64) = match self.dlock().as_ref() {
            Some(d) if d.poisoned.is_some() => (Some("failed"), d.writer.offset()),
            Some(d) => (Some("ok"), d.writer.offset()),
            None => (None, 0),
        };
        let replica = self.repl.is_replica();
        let fenced = !replica && self.sup.enabled() && self.sup.fenced();
        let status = if wal == Some("failed") {
            "degraded"
        } else if fenced {
            "fenced"
        } else if replica {
            "replica"
        } else {
            "ok"
        };
        // The election rank: how much acked history this node holds, in
        // remote (primary-space) coordinates on both roles.
        let repl_offset = if replica {
            self.repl.remote_cursor()
        } else {
            self.repl.remote_base() + wal_offset
        };
        let (connected, lag_records, lag_bytes) = if replica {
            (
                Some(self.repl.connected()),
                Some(
                    self.repl
                        .last_seen_head_records()
                        .saturating_sub(self.repl.remote_records_cursor()),
                ),
                Some(
                    self.repl
                        .last_seen_head()
                        .saturating_sub(self.repl.remote_cursor()),
                ),
            )
        } else {
            (None, None, None)
        };
        let mut fields = vec![
            field("status", &status)?,
            field("role", &if replica { "replica" } else { "primary" })?,
            field("wal", &wal)?,
            field("generation", &self.repl.generation())?,
            field("connected", &connected)?,
            field("lag_records", &lag_records)?,
            field("lag_bytes", &lag_bytes)?,
            field("epoch", &epoch)?,
            field("fingerprint", &fingerprint)?,
            field("node_id", &self.sup.node_id())?,
            field("repl_offset", &repl_offset)?,
            field("fenced", &fenced)?,
            field("supervised", &self.sup.enabled())?,
        ];
        if let Some(advertise) = self.sup.advertise() {
            fields.push(field("advertise", &advertise)?);
        }
        if let Some(hint) = self.sup.primary_hint() {
            fields.push(field("primary_hint", &hint)?);
        }
        Ok(Value::Object(fields))
    }

    /// `promote`: turn a replica into the primary. Idempotent on a
    /// primary — except that an operator promoting a *fenced* primary
    /// is asserting there is no successor to defer to, so the fence
    /// lifts.
    fn promote(&self) -> Result<Value, ServiceError> {
        if !self.repl.is_replica() {
            if self.sup.enabled() && self.sup.fenced() {
                self.sup.set_fenced(false);
            }
            return Ok(Value::Object(vec![
                field("promoted", &false)?,
                field("role", &"primary")?,
                field("generation", &self.repl.generation())?,
            ]));
        }
        let generation = self.promote_to_primary()?;
        let epoch = self.lock().as_ref().map(|s| s.arranger.epoch());
        Ok(Value::Object(vec![
            field("promoted", &true)?,
            field("role", &"primary")?,
            field("generation", &generation)?,
            field("epoch", &epoch)?,
        ]))
    }

    /// Take over as primary: bump the fencing generation above anything
    /// seen from the old primary and persist it to `repl.meta`
    /// **before** the role flips writable — a crash between the two
    /// leaves a node that fences the old primary but never acked a
    /// write, never the other way round. Shared by the `promote` op and
    /// the supervisor's auto-promotion; returns the new generation.
    pub(crate) fn promote_to_primary(&self) -> Result<u64, ServiceError> {
        let generation = self.repl.generation().max(self.repl.last_seen_generation()) + 1;
        {
            let guard = self.dlock();
            if let Some(d) = guard.as_ref() {
                let mut meta = self.repl.meta();
                meta.generation = generation;
                repl::store_meta(&d.dir, &meta)
                    .map_err(|e| ServiceError::new("io", format!("persisting repl.meta: {e}")))?;
            }
        }
        self.repl.set_generation(generation);
        self.repl.set_role_replica(false);
        self.repl.set_connected(false);
        if self.dlock().is_some() {
            // The new primary must feed the losing replicas.
            self.repl.set_accepts_replicas(true);
        }
        self.sup.on_promoted();
        Ok(generation)
    }

    /// Step down to replica under a senior primary. `successor` is
    /// `(follow_addr, client_hint)` when known; `None` leaves the
    /// follower idle until the supervisor's election finds the winner.
    /// The generation is left as-is: it is lower than the successor's,
    /// so the next handshake lands on the reset path and resyncs.
    pub(crate) fn demote_to_replica(&self, successor: Option<(String, String)>) {
        if let Some((addr, hint)) = successor {
            self.sup.set_upstream(Some(addr));
            self.sup.set_primary_hint(Some(hint));
        }
        self.repl.set_role_replica(true);
        self.repl.set_connected(false);
        self.sup.set_fenced(false);
        self.sup.note_lease();
    }

    /// `solve`: re-solve the live instance under a budget and adopt the
    /// result. The budget is the requested `timeout_ms`/`max_nodes`
    /// clamped to the request's remaining deadline, so a queued solve
    /// can never overstay its admission contract.
    ///
    /// Concurrent solves coalesce ([`SolveBatcher`]): the batch pins
    /// one epoch's `(instance, CSR)`, runs one pipeline per distinct
    /// parameter group *off* the session lock, then re-takes the lock
    /// only to adopt the best result and append a single WAL `Install`
    /// record for the whole batch. If that append fails every batched
    /// op errors (un-acked) and durability is poisoned, so the
    /// in-memory/log divergence cannot compound — a restart recovers
    /// the pre-solve state.
    fn solve(&self, body: &Value, deadline: Instant) -> Result<Value, ServiceError> {
        let seed = protocol::get_u64(body, "seed").unwrap_or(0);
        let algorithm = SolverRegistry::global()
            .parse(
                protocol::get_str(body, "algorithm").unwrap_or("greedy"),
                seed,
            )
            .map_err(|e| bad_request(e.to_string()))?;
        let spec = SolveSpec {
            algorithm,
            seed,
            timeout_ms: protocol::get_u64(body, "timeout_ms"),
            max_nodes: protocol::get_u64(body, "max_nodes"),
            // Mirror of the CLI's `--on-timeout alns`: spend the same
            // budget refining a budget-stopped incumbent with
            // warm-started ALNS.
            refine: protocol::get_str(body, "on_timeout") == Some("alns"),
        };
        self.batcher.submit(self, spec, deadline)
    }

    /// The pipeline a [`SolveSpec`] describes, budget-clamped to
    /// `remaining` (the tightest admission deadline in its group).
    fn pipeline_for(&self, spec: &SolveSpec, remaining: Duration) -> SolverPipeline {
        let mut budget = SolveBudget {
            deadline: Some(match spec.timeout_ms {
                Some(ms) => Duration::from_millis(ms).min(remaining),
                None => remaining,
            }),
            ..SolveBudget::UNLIMITED
        };
        if let Some(nodes) = spec.max_nodes {
            budget.max_nodes = Some(nodes);
        }
        let mut pipeline = SolverPipeline::new(spec.algorithm, budget)
            .with_threads(self.threads)
            .with_seed(spec.seed);
        if spec.refine {
            pipeline = pipeline.with_alns_refine(budget);
        }
        pipeline
    }

    /// Execute one coalesced solve batch (leader thread only; see
    /// [`SolveBatcher`]). Fills every request's slot exactly once.
    fn execute_batch(&self, batch: &[PendingSolve]) {
        let Some(pin) = self.pin_solve() else {
            for p in batch {
                p.slot.fill(Err(no_instance()));
            }
            return;
        };
        self.metrics.record_solve_batch(batch.len() as u64);

        // Group identical parameter sets: one pipeline run each, over
        // the one shared epoch graph.
        let mut groups: Vec<(SolveSpec, Vec<usize>)> = Vec::new();
        for (i, p) in batch.iter().enumerate() {
            match groups.iter_mut().find(|(spec, _)| *spec == p.spec) {
                Some((_, members)) => members.push(i),
                None => groups.push((p.spec, vec![i])),
            }
        }

        let graph = CandidateGraph::from_flats(&pin.inst, Arc::clone(&pin.flats));
        let mut solved: Vec<(SolveSpec, Vec<usize>, Outcome)> = Vec::new();
        for (spec, members) in groups {
            let now = Instant::now();
            // Members whose admission deadline passed while the batch
            // queued are answered individually; the group's budget is
            // the tightest surviving deadline.
            let (live, expired): (Vec<usize>, Vec<usize>) =
                members.iter().partition(|&&i| batch[i].deadline > now);
            for &i in &expired {
                batch[i].slot.fill(Err(ServiceError::new(
                    "deadline_exceeded",
                    "request timed out waiting for a solve batch slot",
                )));
            }
            let Some(tightest) = live.iter().map(|&i| batch[i].deadline).min() else {
                continue;
            };
            let pipeline = self.pipeline_for(&spec, tightest.saturating_duration_since(now));
            let outcome = pipeline.run_on(&graph);
            solved.push((spec, live, outcome));
        }
        if solved.is_empty() {
            return; // every member expired; nothing to adopt
        }

        // Adopt the best arrangement across the batch (ties: first in
        // arrival order), under the session lock, with ONE Install
        // record for the whole batch.
        let best = solved
            .iter()
            .enumerate()
            .max_by(|(ai, a), (bi, b)| {
                a.2.arrangement
                    .max_sum()
                    .total_cmp(&b.2.arrangement.max_sum())
                    .then(bi.cmp(ai)) // prefer the earlier group on ties
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let adopted: Result<(u64, f64, usize), ServiceError> = {
            let mut guard = self.lock();
            match guard.as_mut() {
                None => Err(no_instance()),
                Some(session) => {
                    let (best_spec, _, best_outcome) = &solved[best];
                    if session
                        .arranger
                        .adopt(best_outcome.arrangement.clone())
                        .is_err()
                    {
                        // The instance drifted under the batch and the
                        // solved arrangement no longer fits: fall back
                        // to one synchronous rebuild under the lock
                        // (the pre-batching behavior, bounded to once
                        // per batch).
                        let remaining = solved[best]
                            .1
                            .iter()
                            .map(|&i| batch[i].deadline)
                            .min()
                            .map(|d| d.saturating_duration_since(Instant::now()))
                            .unwrap_or(Duration::ZERO);
                        let pipeline = self.pipeline_for(best_spec, remaining);
                        session.arranger.rebuild(&pipeline);
                    }
                    let logged = self.log_record(&WalRecord::Install {
                        arrangement: session.arranger.arrangement().clone(),
                        baseline: session.arranger.baseline_max_sum(),
                    });
                    match logged {
                        Ok(()) => {
                            self.publish_session(session);
                            Ok((
                                session.arranger.epoch(),
                                session.arranger.max_sum(),
                                session.arranger.arrangement().len(),
                            ))
                        }
                        Err(e) => Err(e),
                    }
                }
            }
        };

        let batch_size = batch.len() as u64;
        for (spec, members, outcome) in &solved {
            for &i in members {
                batch[i].slot.fill(match &adopted {
                    Ok((epoch, max_sum, pairs)) => {
                        Self::solve_response(spec, outcome, *epoch, *max_sum, *pairs, batch_size)
                    }
                    Err(e) => Err(e.clone()),
                });
            }
        }
    }

    /// One solve request's response: its own group's outcome, plus the
    /// post-adoption state shared by the batch.
    fn solve_response(
        spec: &SolveSpec,
        outcome: &Outcome,
        epoch: u64,
        max_sum: f64,
        pairs: usize,
        batch_size: u64,
    ) -> Result<Value, ServiceError> {
        Ok(Value::Object(vec![
            field("status", &outcome.status.to_string())?,
            field("exit_code", &outcome.status.exit_code())?,
            field("max_sum", &max_sum)?,
            field("pairs", &pairs)?,
            field("nodes", &outcome.nodes)?,
            field("elapsed_ms", &(outcome.elapsed.as_millis() as u64))?,
            field("seed", &spec.seed)?,
            field(
                "alns_iterations",
                &outcome.alns.as_ref().map(|a| a.iterations),
            )?,
            field(
                "alns_improvements",
                &outcome.alns.as_ref().map(|a| a.improvements),
            )?,
            field("epoch", &epoch)?,
            field("batch_size", &batch_size)?,
        ]))
    }

    /// `snapshot`: persist the session to a file — base instance,
    /// mutation log, the standing arrangement, and its drift baseline.
    /// The write is atomic (temp file + fsync + rename): a crash
    /// mid-snapshot leaves the previous file intact, never a torn one.
    fn snapshot(&self, body: &Value) -> Result<Value, ServiceError> {
        let path = protocol::get_str(body, "path")
            .ok_or_else(|| bad_request("snapshot needs a \"path\""))?;
        self.with_session(|session| {
            let doc = Value::Object(vec![
                field("instance", &session.base)?,
                field("log", &session.arranger.log().to_vec())?,
                field("arrangement", session.arranger.arrangement())?,
                field("baseline", &session.arranger.baseline_max_sum())?,
                field("epoch", &session.arranger.epoch())?,
            ]);
            let mut bytes = Vec::with_capacity(64 * 1024);
            serde_json::to_writer(&mut bytes, &doc)
                .map_err(|e| ServiceError::new("io", format!("encoding snapshot: {e}")))?;
            bytes.push(b'\n');
            wal::atomic_write(std::path::Path::new(path), &bytes)
                .map_err(|e| ServiceError::new("io", format!("writing {path}: {e}")))?;
            Ok(Value::Object(vec![
                field("path", &path)?,
                field("epoch", &session.arranger.epoch())?,
                field("mutations", &session.arranger.log().len())?,
            ]))
        })
    }

    /// `restore`: rebuild a session from a snapshot file. The mutation
    /// log is replayed over the base instance (deterministically
    /// reproducing every intermediate state), then the snapshot's own
    /// arrangement is installed on top — it may differ from the replay
    /// when a `solve` ran before the snapshot — after a feasibility
    /// check. With a WAL, the restored state is made durable by forcing
    /// an atomic durability snapshot *before* the swap is acked; if
    /// that fails, the op errors and the running session is unchanged.
    fn restore(&self, body: &Value) -> Result<Value, ServiceError> {
        let path = protocol::get_str(body, "path")
            .ok_or_else(|| bad_request("restore needs a \"path\""))?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServiceError::new("io", format!("reading {path}: {e}")))?;
        let doc: Value = serde_json::from_str(&text)
            .map_err(|e| bad_request(format!("bad snapshot in {path}: {e}")))?;
        let pick = |key: &str| {
            protocol::get(&doc, key)
                .cloned()
                .ok_or_else(|| bad_request(format!("snapshot {path} missing {key:?}")))
        };
        let base: Instance = serde_json::from_value(pick("instance")?)
            .map_err(|e| bad_request(format!("bad snapshot instance: {e}")))?;
        let log: Vec<Mutation> = serde_json::from_value(pick("log")?)
            .map_err(|e| bad_request(format!("bad snapshot log: {e}")))?;
        let arrangement: Arrangement = serde_json::from_value(pick("arrangement")?)
            .map_err(|e| bad_request(format!("bad snapshot arrangement: {e}")))?;
        let baseline: f64 = serde_json::from_value(pick("baseline")?)
            .map_err(|e| bad_request(format!("bad snapshot baseline: {e}")))?;

        let mut arranger = IncrementalArranger::replay(
            base.clone(),
            &log,
            DynamicConfig {
                rebuild_drift_ratio: self.drift_ratio,
            },
        )
        .map_err(|e| ServiceError::new("mutation_failed", format!("replaying {path}: {e}")))?;
        arranger.install(arrangement, baseline).map_err(|violations| {
            ServiceError::new(
                "infeasible_snapshot",
                format!(
                    "snapshot arrangement is infeasible for its instance ({} violations, first: {:?})",
                    violations.len(),
                    violations.first()
                ),
            )
        })?;
        let summary = Self::summary(&arranger)?;
        let mut guard = self.lock();
        self.persist_restored(&arranger, &base)?;
        // Restore is not WAL-logged: replaying the log from below this
        // offset no longer reproduces the served state. Raise the
        // replication floor (resume below it is refused) and force
        // connected replicas through the snapshot catch-up path.
        {
            let dguard = self.dlock();
            if let Some(d) = dguard.as_ref() {
                self.repl.set_floor(d.writer.offset());
                let _ = repl::store_meta(&d.dir, &self.repl.meta());
            }
        }
        self.repl.hub.publish(Shipment::Resync);
        let session = Session { arranger, base };
        self.publish_session(&session);
        *guard = Some(session);
        Ok(summary)
    }

    /// Make a restored session durable: force a durability snapshot at
    /// the current WAL offset (superseding the logged history). A no-op
    /// without a WAL. Called with the session lock held.
    fn persist_restored(
        &self,
        arranger: &IncrementalArranger,
        base: &Instance,
    ) -> Result<(), ServiceError> {
        let mut guard = self.dlock();
        let Some(d) = guard.as_mut() else {
            return Ok(());
        };
        if let Some(why) = &d.poisoned {
            return Err(wal_failed(why));
        }
        let epoch = arranger.epoch();
        match Self::cut_snapshot(d, arranger, base) {
            Ok(()) => {
                d.last_snapshot_epoch = Some(epoch);
                self.metrics.record_snapshot(epoch);
                self.metrics
                    .record_wal(d.writer.records(), d.writer.offset(), d.writer.fsyncs());
                Ok(())
            }
            Err(e) => {
                self.metrics.record_snapshot_error();
                Err(ServiceError::new(
                    "io",
                    format!("persisting restored session: {e}"),
                ))
            }
        }
    }

    // -----------------------------------------------------------------
    // Replication plumbing (see crate::repl for the protocol).
    // -----------------------------------------------------------------

    /// Arm the replication state from the durable `repl.meta` and the
    /// node's startup role. Called once at bind time, after
    /// [`Self::install_recovered`].
    pub fn init_replication(&self, accept_replicas: bool, replica: bool) -> std::io::Result<()> {
        let guard = self.dlock();
        match guard.as_ref() {
            Some(d) => {
                let meta = repl::load_meta(&d.dir)?;
                self.repl.init(
                    &meta,
                    accept_replicas,
                    replica,
                    d.writer.offset(),
                    d.writer.records(),
                );
                Ok(())
            }
            None if accept_replicas || replica => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replication requires a --wal-dir (the WAL is what gets shipped)",
            )),
            None => {
                self.repl
                    .init(&repl::ReplMeta::default(), false, false, 0, 0);
                Ok(())
            }
        }
    }

    /// The WAL directory and current head, for a replica stream. Syncs
    /// the writer first so the file holds every byte up to the head.
    pub(crate) fn repl_stream_info(&self) -> Result<(PathBuf, u64, u64), ServiceError> {
        let mut guard = self.dlock();
        match guard.as_mut() {
            Some(d) => {
                if let Some(why) = &d.poisoned {
                    return Err(wal_failed(why));
                }
                d.writer
                    .sync_now()
                    .map_err(|e| ServiceError::new("io", format!("syncing WAL: {e}")))?;
                Ok((d.dir.clone(), d.writer.offset(), d.writer.records()))
            }
            None => Err(ServiceError::new(
                "replication_unsupported",
                "replication requires a --wal-dir",
            )),
        }
    }

    /// A snapshot of the live session at the current WAL head, for
    /// replica catch-up. `None` when there is nothing to snapshot (no
    /// session) or durability cannot vouch for the head.
    pub(crate) fn repl_snapshot_doc(&self) -> Option<SnapshotDoc> {
        let sguard = self.lock();
        let session = sguard.as_ref()?;
        let mut dguard = self.dlock();
        let d = dguard.as_mut()?;
        if d.poisoned.is_some() || d.writer.sync_now().is_err() {
            return None;
        }
        Some(SnapshotDoc {
            version: 1,
            wal_offset: d.writer.offset(),
            wal_records: d.writer.records(),
            epoch: session.arranger.epoch(),
            base: session.base.clone(),
            live: session.arranger.instance().clone(),
            log: session.arranger.log().to_vec(),
            arrangement: session.arranger.arrangement().clone(),
            baseline: session.arranger.baseline_max_sum(),
        })
    }

    /// Replica: adopt a `reset` handshake — wipe the local WAL and
    /// snapshot, drop the session (the snapshot doc or the record
    /// stream from `start` rebuilds it), and re-base the cursor.
    pub(crate) fn replica_begin_resync(
        &self,
        start: u64,
        start_records: u64,
        generation: u64,
    ) -> std::io::Result<()> {
        let mut sguard = self.lock();
        let mut dguard = self.dlock();
        let Some(d) = dguard.as_mut() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replica requires a --wal-dir",
            ));
        };
        d.writer = recovery::reset_wal(&d.dir, d.policy)?.boxed();
        d.last_snapshot_epoch = None;
        d.poisoned = None;
        self.metrics.record_wal(0, 0, d.writer.fsyncs());
        *sguard = None;
        self.publish_cleared();
        self.repl.begin_resync(generation, start, start_records);
        repl::store_meta(&d.dir, &self.repl.meta())?;
        self.dedup_lock().clear();
        Ok(())
    }

    /// Replica: install a catch-up snapshot shipped by the primary (in
    /// remote coordinates). Persists a *localized* snapshot (offset 0 of
    /// the just-reset local WAL) so a crash recovers to the same point,
    /// then swaps the session in. Returns the remote cursor to ack.
    pub(crate) fn replica_install_snapshot(&self, doc: SnapshotDoc) -> Result<u64, String> {
        let config = DynamicConfig {
            rebuild_drift_ratio: self.drift_ratio,
        };
        let arranger =
            IncrementalArranger::resume(doc.live, doc.log, doc.arrangement, doc.baseline, config)
                .map_err(|e| format!("infeasible snapshot from primary: {e:?}"))?;
        let base = doc.base;
        let mut sguard = self.lock();
        {
            let mut dguard = self.dlock();
            let Some(d) = dguard.as_mut() else {
                return Err("replica requires a --wal-dir".to_string());
            };
            let local = SnapshotDoc {
                version: 1,
                wal_offset: d.writer.offset(),
                wal_records: d.writer.records(),
                epoch: arranger.epoch(),
                base: base.clone(),
                live: arranger.instance().clone(),
                log: arranger.log().to_vec(),
                arrangement: arranger.arrangement().clone(),
                baseline: arranger.baseline_max_sum(),
            };
            wal::write_snapshot(&recovery::snapshot_path(&d.dir), &local)
                .map_err(|e| format!("persisting catch-up snapshot: {e}"))?;
            d.last_snapshot_epoch = Some(local.epoch);
            self.metrics.record_snapshot(local.epoch);
        }
        self.repl.set_cursor(doc.wal_offset, doc.wal_records);
        let session = Session { arranger, base };
        self.publish_session(&session);
        *sguard = Some(session);
        Ok(doc.wal_offset)
    }

    /// Replica: append one shipped record byte-for-byte to the local
    /// WAL and apply it through the exact replay path recovery uses —
    /// the follower's state is a recovery of the primary's log, always.
    /// Returns the new remote cursor to ack. A duplicate delivery
    /// (offset below the cursor) is skipped idempotently.
    pub(crate) fn replica_apply(
        &self,
        offset: u64,
        record_value: &Value,
    ) -> Result<u64, ReplicaApplyError> {
        let record: WalRecord = serde_json::from_value(record_value.clone())
            .map_err(|e| ReplicaApplyError::Bad(format!("bad shipped record: {e}")))?;
        let payload = serde_json::to_string(&record)
            .map_err(|e| ReplicaApplyError::Bad(format!("re-encoding record: {e}")))?;
        let mut sguard = self.lock();
        let expected = self.repl.remote_cursor();
        if offset < expected {
            return Ok(expected);
        }
        if offset > expected {
            return Err(ReplicaApplyError::Desync {
                expected,
                got: offset,
            });
        }
        {
            let mut dguard = self.dlock();
            let Some(d) = dguard.as_mut() else {
                return Err(ReplicaApplyError::Wal(
                    "replica requires a --wal-dir".into(),
                ));
            };
            if let Some(why) = &d.poisoned {
                return Err(ReplicaApplyError::Wal(why.clone()));
            }
            if let Err(e) = d.writer.append_payload(payload.as_bytes()) {
                let detail = e.to_string();
                d.poisoned = Some(detail.clone());
                return Err(ReplicaApplyError::Wal(detail));
            }
            if matches!(record, WalRecord::Load { .. }) {
                d.last_snapshot_epoch = None;
            }
            self.metrics
                .record_wal(d.writer.records(), d.writer.offset(), d.writer.fsyncs());
        }
        // Re-arm the dedup so a client retry against this node after a
        // failover replays instead of double-applying.
        if let WalRecord::KeyedMutation { client, seq, .. } = &record {
            self.dedup_lock()
                .store(client.clone(), *seq, deduped_marker());
        }
        let config = DynamicConfig {
            rebuild_drift_ratio: self.drift_ratio,
        };
        let mut state = sguard.take().map(|s| recovery::RecoveredSession {
            arranger: s.arranger,
            base: s.base,
        });
        recovery::apply_record(&mut state, &record, config);
        *sguard = state.map(|r| Session {
            arranger: r.arranger,
            base: r.base,
        });
        match sguard.as_ref() {
            Some(session) => self.publish_session(session),
            None => self.publish_cleared(),
        }
        self.repl
            .advance_cursor(wal::HEADER_LEN + payload.len() as u64);
        self.metrics.record_repl_applied();
        let cursor = self.repl.remote_cursor();
        // Chain: a replica can itself feed replicas (same coordinates).
        if self.repl.hub.has_subscribers() {
            self.repl.hub.publish(Shipment::Record {
                offset,
                head: self.repl.last_seen_head().max(cursor),
                head_records: self
                    .repl
                    .last_seen_head_records()
                    .max(self.repl.remote_records_cursor()),
                payload: Arc::new(payload),
            });
        }
        if let Some(session) = sguard.as_ref() {
            self.maybe_auto_snapshot(session);
        }
        Ok(cursor)
    }
}

impl Session {
    fn arranger(&self) -> &IncrementalArranger {
        &self.arranger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::time::Duration;

    fn service() -> Service {
        Service::new(
            Arc::new(ServerMetrics::default()),
            Arc::new(AtomicBool::new(false)),
            Threads::single(),
            0.2,
        )
    }

    /// A service armed with a WAL in `dir`, as `Server::bind` would
    /// build it.
    fn durable_service(dir: &Path, snapshot_every: Option<u64>) -> Service {
        let svc = service();
        let rec = recovery::recover(dir, DynamicConfig::default()).unwrap();
        let writer = recovery::open_writer(dir, FsyncPolicy::Never, &rec).unwrap();
        svc.install_recovered(
            rec,
            writer,
            dir.to_path_buf(),
            FsyncPolicy::Never,
            snapshot_every,
        );
        svc
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("geacc-service-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn call(svc: &Service, line: &str) -> Result<Value, ServiceError> {
        let req = protocol::parse_request(line).unwrap();
        svc.handle(&req, Instant::now() + Duration::from_secs(5))
    }

    fn toy_line() -> String {
        let inst = geacc_core::toy::table1_instance();
        format!(
            r#"{{"op": "load", "instance": {}}}"#,
            serde_json::to_string(&inst).unwrap()
        )
    }

    #[test]
    fn full_session_load_mutate_query_solve() {
        let svc = service();
        assert_eq!(
            call(&svc, r#"{"op": "stats"}"#).unwrap(),
            call(&svc, r#"{"op": "stats"}"#).unwrap()
        );
        assert_eq!(
            call(
                &svc,
                r#"{"op": "mutate", "mutation": {"CloseEvent": {"event": 0}}}"#
            )
            .unwrap_err()
            .code,
            "no_instance"
        );

        let loaded = call(&svc, &toy_line()).unwrap();
        assert_eq!(protocol::get_u64(&loaded, "epoch"), Some(0));
        assert_eq!(protocol::get_u64(&loaded, "num_events"), Some(3));

        let mutated = call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 1, "b": 2}}}"#,
        )
        .unwrap();
        assert_eq!(protocol::get_u64(&mutated, "epoch"), Some(1));

        let user = call(&svc, r#"{"op": "query_user", "user": 0}"#).unwrap();
        assert!(protocol::get(&user, "events").is_some());
        let event = call(&svc, r#"{"op": "query_event", "event": 0}"#).unwrap();
        assert!(protocol::get_u64(&event, "count").is_some());

        let solved = call(&svc, r#"{"op": "solve", "algorithm": "prune"}"#).unwrap();
        assert_eq!(protocol::get_str(&solved, "status"), Some("optimal"));

        let err = call(&svc, r#"{"op": "query_user", "user": 99}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        let err = call(&svc, r#"{"op": "warp"}"#).unwrap_err();
        assert_eq!(err.code, "unknown_op");
    }

    #[test]
    fn file_load_errors_carry_the_cli_loaders_context_verbatim() {
        // Regression: the server's `load` op parses through the shared
        // core loader, so a malformed file produces byte-for-byte the
        // message (path + line/column) the CLI would print.
        let svc = service();
        let dir = tmp_dir("load-error-context");

        // Truncated JSON: a syntax error with a position.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"events\": [").unwrap();
        let path = bad.to_str().unwrap();
        let err = call(&svc, &format!(r#"{{"op": "load", "path": "{path}"}}"#)).unwrap_err();
        assert_eq!(err.code, "bad_request");
        let expected = loader::load_instance(path).unwrap_err().to_string();
        assert_eq!(err.message, expected);
        assert!(err.message.contains(path), "{}", err.message);
        assert!(err.message.contains("invalid JSON"), "{}", err.message);
        assert!(err.message.contains("line 1 column"), "{}", err.message);

        // Well-formed JSON describing an impossible value.
        let inst = geacc_core::toy::table1_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let mutated = json.replacen("\"user_caps\":[", "\"user_caps\":[-3,", 1);
        assert_ne!(json, mutated, "template lost its user_caps probe");
        let invalid = dir.join("invalid.json");
        std::fs::write(&invalid, &mutated).unwrap();
        let path = invalid.to_str().unwrap();
        let err = call(&svc, &format!(r#"{{"op": "load", "path": "{path}"}}"#)).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert_eq!(
            err.message,
            loader::load_instance(path).unwrap_err().to_string()
        );
        assert!(err.message.contains("invalid value"), "{}", err.message);

        // Missing file: an io error naming the path.
        let missing = dir.join("missing.json");
        let path = missing.to_str().unwrap();
        let err = call(&svc, &format!(r#"{{"op": "load", "path": "{path}"}}"#)).unwrap_err();
        assert_eq!(err.code, "io");
        assert_eq!(
            err.message,
            loader::load_instance(path).unwrap_err().to_string()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn solve_parses_algorithms_through_the_registry() {
        let svc = service();
        call(&svc, &toy_line()).unwrap();
        // The registry accepts both the wire and the CLI spellings.
        for algo in ["exactdp", "exact-dp", "random_v", "random-v", "exhaustive"] {
            let solved = call(
                &svc,
                &format!(r#"{{"op": "solve", "algorithm": "{algo}", "timeout_ms": 2000}}"#),
            )
            .unwrap();
            assert!(protocol::get_str(&solved, "status").is_some(), "{algo}");
        }
        let err = call(&svc, r#"{"op": "solve", "algorithm": "annealing"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert_eq!(
            err.message,
            "unknown algorithm \"annealing\" (greedy, mincostflow, prune, exhaustive, \
             exact-dp, random-v, random-u, alns)"
        );
    }

    #[test]
    fn solve_with_alns_echoes_the_seed_and_run_counters() {
        let svc = service();
        call(&svc, &toy_line()).unwrap();
        let solved = call(
            &svc,
            r#"{"op": "solve", "algorithm": "alns", "seed": 7, "timeout_ms": 5000}"#,
        )
        .unwrap();
        assert_eq!(protocol::get_u64(&solved, "seed"), Some(7));
        assert!(protocol::get_u64(&solved, "alns_iterations").unwrap() > 0);
        // Greedy solves echo the (default) seed too, with null ALNS
        // counters.
        let solved = call(&svc, r#"{"op": "solve", "algorithm": "greedy"}"#).unwrap();
        assert_eq!(protocol::get_u64(&solved, "seed"), Some(0));
        assert!(matches!(
            protocol::get(&solved, "alns_iterations"),
            Some(Value::Null)
        ));
    }

    #[test]
    fn stats_expose_per_solver_engine_timings() {
        let svc = service();
        call(&svc, &toy_line()).unwrap();
        call(&svc, r#"{"op": "solve", "algorithm": "greedy"}"#).unwrap();
        let stats = call(&svc, r#"{"op": "stats"}"#).unwrap();
        let engine = match protocol::get(&stats, "engine") {
            Some(Value::Array(rows)) => rows,
            other => panic!("stats must carry an engine array, got {other:?}"),
        };
        assert_eq!(engine.len(), 8, "one row per registered solver");
        let greedy = engine
            .iter()
            .find(|row| protocol::get_str(row, "solver") == Some("greedy"))
            .expect("greedy row");
        // Counters are process-wide, so only monotonicity is safe to
        // assert — the solve above guarantees at least one call.
        assert!(protocol::get_u64(greedy, "calls").unwrap() >= 1);
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_state() {
        let svc = service();
        call(&svc, &toy_line()).unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 2, "capacity": 0}}}"#,
        )
        .unwrap();
        let before = call(&svc, r#"{"op": "stats"}"#).unwrap();

        let dir = tmp_dir("snapshot-roundtrip");
        let path = dir.join("snap.json");
        let path = path.to_str().unwrap();
        call(&svc, &format!(r#"{{"op": "snapshot", "path": "{path}"}}"#)).unwrap();
        // Atomic write: the staging file must be gone.
        assert!(!wal::tmp_path(Path::new(path)).exists());

        // Restore into a fresh service and compare the arranger summary.
        let svc2 = service();
        let restored = call(&svc2, &format!(r#"{{"op": "restore", "path": "{path}"}}"#)).unwrap();
        assert_eq!(
            protocol::get(&before, "arranger").map(|a| protocol::get_u64(a, "epoch")),
            Some(protocol::get_u64(&restored, "epoch"))
        );
        let a = call(&svc, r#"{"op": "query_user", "user": 0}"#).unwrap();
        let b = call(&svc2, r#"{"op": "query_user", "user": 0}"#).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_of_truncated_snapshot_is_a_structured_error() {
        let svc = service();
        call(&svc, &toy_line()).unwrap();
        let dir = tmp_dir("restore-truncated");
        let path = dir.join("snap.json");
        call(
            &svc,
            &format!(r#"{{"op": "snapshot", "path": "{}"}}"#, path.display()),
        )
        .unwrap();
        let full = std::fs::read(&path).unwrap();
        let before = call(&svc, r#"{"op": "stats"}"#).unwrap();

        // Every truncation point must fail structurally, never panic,
        // and leave the running session untouched.
        for cut in [0, 1, full.len() / 2, full.len() - 2] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = call(
                &svc,
                &format!(r#"{{"op": "restore", "path": "{}"}}"#, path.display()),
            )
            .unwrap_err();
            assert_eq!(err.code, "bad_request", "cut at {cut}: {}", err.message);
            assert!(
                err.message.contains("snap.json"),
                "error must name the file: {}",
                err.message
            );
        }
        assert_eq!(call(&svc, r#"{"op": "stats"}"#).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_of_bitflipped_snapshot_never_panics() {
        let svc = service();
        call(&svc, &toy_line()).unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        let dir = tmp_dir("restore-bitflip");
        let path = dir.join("snap.json");
        call(
            &svc,
            &format!(r#"{{"op": "snapshot", "path": "{}"}}"#, path.display()),
        )
        .unwrap();
        let full = std::fs::read(&path).unwrap();
        let before = call(&svc, r#"{"op": "stats"}"#).unwrap();

        // Flip one bit at a spread of positions; each either still
        // restores (the flip hit insignificant whitespace/digits) or
        // fails with a structured error — session state only changes on
        // success, and a panic fails the test harness outright.
        let step = (full.len() / 23).max(1);
        for at in (0..full.len()).step_by(step) {
            let mut bad = full.clone();
            bad[at] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            let fresh = service();
            match call(
                &fresh,
                &format!(r#"{{"op": "restore", "path": "{}"}}"#, path.display()),
            ) {
                Ok(_) => {}
                Err(e) => assert!(
                    matches!(
                        e.code,
                        "bad_request" | "mutation_failed" | "infeasible_snapshot"
                    ),
                    "unexpected error code {} at byte {at}: {}",
                    e.code,
                    e.message
                ),
            }
        }
        // The original service never restored a corrupt file.
        assert_eq!(call(&svc, r#"{"op": "stats"}"#).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_session_survives_a_new_service() {
        let dir = tmp_dir("durable-roundtrip");
        let svc = durable_service(&dir, None);
        call(&svc, &toy_line()).unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"CloseEvent": {"event": 2}}}"#,
        )
        .unwrap();
        let user_before = call(&svc, r#"{"op": "query_user", "user": 0}"#).unwrap();
        let stats = call(&svc, r#"{"op": "stats"}"#).unwrap();
        let server = protocol::get(&stats, "server").unwrap();
        assert_eq!(protocol::get_u64(server, "wal_records"), Some(3));
        let durability = protocol::get(&stats, "durability").unwrap();
        assert_eq!(protocol::get_u64(durability, "wal_records"), Some(3));
        drop(svc); // simulate the process dying (WAL file is already written)

        let svc2 = durable_service(&dir, None);
        let stats = call(&svc2, r#"{"op": "stats"}"#).unwrap();
        let server = protocol::get(&stats, "server").unwrap();
        assert_eq!(protocol::get_u64(server, "recovered_records"), Some(3));
        let user_after = call(&svc2, r#"{"op": "query_user", "user": 0}"#).unwrap();
        assert_eq!(user_before, user_after);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_snapshot_rotates_at_the_cadence() {
        let dir = tmp_dir("auto-snapshot");
        let svc = durable_service(&dir, Some(2));
        call(&svc, &toy_line()).unwrap();
        let snap = recovery::snapshot_path(&dir);
        assert!(!snap.exists());
        for (a, b) in [(0u32, 1u32), (0, 2)] {
            call(
                &svc,
                &format!(
                    r#"{{"op": "mutate", "mutation": {{"AddConflict": {{"a": {a}, "b": {b}}}}}}}"#
                ),
            )
            .unwrap();
        }
        assert!(snap.exists(), "snapshot must rotate at epoch 2");
        let doc = wal::read_snapshot(&snap).unwrap();
        assert_eq!(doc.epoch, 2);
        let stats = call(&svc, r#"{"op": "stats"}"#).unwrap();
        let server = protocol::get(&stats, "server").unwrap();
        assert_eq!(protocol::get_u64(server, "snapshots_written"), Some(1));
        assert_eq!(protocol::get_u64(server, "last_snapshot_epoch"), Some(2));

        // Recovery takes the fast path and matches the live state.
        let live_user = call(&svc, r#"{"op": "query_user", "user": 1}"#).unwrap();
        drop(svc);
        let rec = recovery::recover(&dir, DynamicConfig::default()).unwrap();
        assert!(rec.snapshot_used);
        let svc2 = durable_service(&dir, Some(2));
        assert_eq!(
            call(&svc2, r#"{"op": "query_user", "user": 1}"#).unwrap(),
            live_user
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_under_wal_forces_a_durability_snapshot() {
        let dir = tmp_dir("restore-durable");
        let svc = durable_service(&dir, None);
        call(&svc, &toy_line()).unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        let manual = dir.join("manual.json");
        call(
            &svc,
            &format!(r#"{{"op": "snapshot", "path": "{}"}}"#, manual.display()),
        )
        .unwrap();
        // Diverge, then restore the earlier state.
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"CloseEvent": {"event": 2}}}"#,
        )
        .unwrap();
        call(
            &svc,
            &format!(r#"{{"op": "restore", "path": "{}"}}"#, manual.display()),
        )
        .unwrap();
        let user_before = call(&svc, r#"{"op": "query_user", "user": 0}"#).unwrap();
        drop(svc);

        // A restart recovers the *restored* state, not the diverged log.
        let rec = recovery::recover(&dir, DynamicConfig::default()).unwrap();
        assert!(rec.snapshot_used, "restore must have cut a snapshot");
        let svc2 = durable_service(&dir, None);
        assert_eq!(
            call(&svc2, r#"{"op": "query_user", "user": 0}"#).unwrap(),
            user_before
        );
        let stats = call(&svc2, r#"{"op": "stats"}"#).unwrap();
        let arranger = protocol::get(&stats, "arranger").unwrap();
        assert_eq!(protocol::get_u64(arranger, "epoch"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: a handler that panics while holding the session,
    /// durability, and dedup locks must not wedge the service — every
    /// lock is taken through `unwrap_or_else(|e| e.into_inner())`, so
    /// later requests recover the poison and serve, the observable
    /// state is exactly what was acked before the panic, and the live
    /// arranger still matches a recovery replay of the WAL (no
    /// half-applied divergence).
    #[test]
    fn panic_poisoned_locks_keep_serving_without_half_applied_state() {
        let dir = tmp_dir("poisoned-locks");
        let svc = durable_service(&dir, None);
        call(&svc, &toy_line()).unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "client_id": "c", "seq": 0, "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        let before = call(&svc, r#"{"op": "health"}"#).unwrap();

        // Die mid-mutation in the worst posture: all three service
        // locks held. catch_unwind plays the worker's panic guard.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _session = svc.state.lock().unwrap();
            let _durability = svc.durability.lock().unwrap();
            let _dedup = svc.dedup.lock().unwrap();
            panic!("simulated handler death mid-mutation");
        }));
        assert!(panicked.is_err());

        // Reads recover the poisoned locks and see the acked state.
        assert_eq!(call(&svc, r#"{"op": "health"}"#).unwrap(), before);
        // The dedup table still answers for the pre-panic key…
        let replay = call(
            &svc,
            r#"{"op": "mutate", "client_id": "c", "seq": 0, "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        assert_eq!(protocol::get_u64(&replay, "epoch"), Some(1));
        // …and fresh mutations apply and are WAL-logged as usual.
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 0, "capacity": 1}}}"#,
        )
        .unwrap();
        let live = call(&svc, r#"{"op": "health"}"#).unwrap();

        // The live arranger is byte-for-byte what booting recovery on
        // the same WAL reconstructs: nothing half-applied leaked.
        let rec = recovery::recover(&dir, DynamicConfig::default()).unwrap();
        let session = rec.session.expect("load record recovered");
        assert_eq!(
            protocol::get_u64(&live, "fingerprint"),
            Some(session.arranger.fingerprint())
        );
        assert_eq!(
            protocol::get_u64(&live, "epoch"),
            Some(session.arranger.epoch())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A sink handle shared with the test: the service writes through
    /// it while the test watches what actually reached the "disk".
    #[derive(Clone)]
    struct SharedSink(Arc<Mutex<crate::wal::FaultSink>>);

    impl WalSink for SharedSink {
        fn write_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
            self.0.lock().unwrap().write_frame(frame)
        }

        fn sync(&mut self) -> std::io::Result<()> {
            self.0.lock().unwrap().sync()
        }
    }

    /// Satellite: disk-full degradation. A WAL append that hits
    /// `ENOSPC` mid-frame poisons durability with a structured
    /// `wal_failed` naming the OS error; reads keep serving the acked
    /// state; and once space returns, recovery classifies the
    /// short-written frame as an ordinary torn tail — truncate and
    /// resume — not as corruption that refuses to boot.
    #[test]
    fn disk_full_poisons_then_recovers_as_torn_tail() {
        // Dry run on a bottomless disk to learn the exact byte budget
        // that admits the load and the first mutation in full.
        let measured = {
            let svc = service();
            let dir = tmp_dir("disk-full-dry");
            let rec = recovery::recover(&dir, DynamicConfig::default()).unwrap();
            let sink = Arc::new(Mutex::new(crate::wal::FaultSink::disk_full(usize::MAX)));
            let writer = WalWriter::with_sink(SharedSink(Arc::clone(&sink)), FsyncPolicy::Never);
            svc.install_recovered(rec, writer, dir.clone(), FsyncPolicy::Never, None);
            call(&svc, &toy_line()).unwrap();
            call(
                &svc,
                r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
            )
            .unwrap();
            let len = sink.lock().unwrap().bytes().len();
            std::fs::remove_dir_all(&dir).ok();
            len
        };

        // The real run: the disk fills 10 bytes into the second
        // mutation's frame — an ENOSPC short write.
        let dir = tmp_dir("disk-full");
        let svc = service();
        let rec = recovery::recover(&dir, DynamicConfig::default()).unwrap();
        let sink = Arc::new(Mutex::new(crate::wal::FaultSink::disk_full(measured + 10)));
        let writer = WalWriter::with_sink(SharedSink(Arc::clone(&sink)), FsyncPolicy::Never);
        svc.install_recovered(rec, writer, dir.clone(), FsyncPolicy::Never, None);
        call(&svc, &toy_line()).unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        let acked = call(&svc, r#"{"op": "health"}"#).unwrap();

        let failed = call(
            &svc,
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 0, "capacity": 1}}}"#,
        )
        .unwrap_err();
        assert_eq!(failed.code, "wal_failed");
        assert!(
            failed.message.contains("os error 28"),
            "expected ENOSPC in the error, got: {}",
            failed.message
        );

        // Poisoned for state changes, healthy for reads — at exactly
        // the acked state.
        let h = call(&svc, r#"{"op": "health"}"#).unwrap();
        assert_eq!(protocol::get_str(&h, "status"), Some("degraded"));
        assert_eq!(
            protocol::get_u64(&h, "fingerprint"),
            protocol::get_u64(&acked, "fingerprint")
        );
        assert!(call(&svc, r#"{"op": "query_user", "user": 0}"#).is_ok());
        let again = call(
            &svc,
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 0, "capacity": 1}}}"#,
        )
        .unwrap_err();
        assert_eq!(again.code, "wal_failed");

        // "Space returns": persist what the full disk actually held —
        // including the short-written tail — and boot on it.
        std::fs::write(recovery::wal_path(&dir), sink.lock().unwrap().bytes()).unwrap();
        let rec = recovery::recover(&dir, DynamicConfig::default()).unwrap();
        assert!(
            rec.truncated_bytes > 0,
            "short write should surface as a torn tail"
        );
        assert_eq!(rec.replayed, 2, "load + first mutation replay");

        let revived = durable_service(&dir, None);
        let h = call(&revived, r#"{"op": "health"}"#).unwrap();
        assert_eq!(protocol::get_str(&h, "status"), Some("ok"));
        assert_eq!(
            protocol::get_u64(&h, "fingerprint"),
            protocol::get_u64(&acked, "fingerprint")
        );
        // Writes resume.
        call(
            &revived,
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 0, "capacity": 1}}}"#,
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_deadline_is_rejected_before_work() {
        let svc = service();
        let req = protocol::parse_request(r#"{"op": "stats"}"#).unwrap();
        let err = svc
            .handle(&req, Instant::now() - Duration::from_millis(1))
            .unwrap_err();
        assert_eq!(err.code, "deadline_exceeded");
    }

    #[test]
    fn shutdown_raises_the_stop_flag() {
        let svc = service();
        assert!(!svc.stop.load(Ordering::SeqCst));
        call(&svc, r#"{"op": "shutdown"}"#).unwrap();
        assert!(svc.stop.load(Ordering::SeqCst));
    }
}
