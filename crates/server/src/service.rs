//! Op handlers: the bridge from wire requests to the
//! [`IncrementalArranger`].
//!
//! One [`Service`] is shared by every worker. All arranger state sits
//! behind a single mutex — mutations are localized repairs (microseconds
//! on serving-size instances), so the lock is held briefly and the
//! worker pool's parallelism goes to the serialization, socket, and
//! (budgeted) solve work around it. `solve` is the exception: it holds
//! the lock for the whole budgeted pipeline run, which is why its budget
//! is clamped to the request deadline.

use crate::metrics::ServerMetrics;
use crate::protocol::{self, Request, ServiceError};
use geacc_core::algorithms::Algorithm;
use geacc_core::parallel::Threads;
use geacc_core::{
    Arrangement, DynamicConfig, EventId, IncrementalArranger, Instance, Mutation, SolveBudget,
    SolverPipeline, UserId,
};
use serde::Serialize;
use serde_json::{json, Value};
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

fn field<T: Serialize>(key: &str, value: &T) -> (String, Value) {
    (
        key.to_string(),
        serde_json::to_value(value).expect("response fields are serializable"),
    )
}

fn bad_request(message: impl Into<String>) -> ServiceError {
    ServiceError::new("bad_request", message)
}

/// The shared request handler: arranger state, metrics, and the stop
/// flag the `shutdown` op raises.
pub struct Service {
    state: Mutex<Option<Session>>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) stop: Arc<AtomicBool>,
    threads: Threads,
    drift_ratio: f64,
}

/// A loaded instance under management: the arranger plus the pristine
/// base instance that snapshots embed.
struct Session {
    arranger: IncrementalArranger,
    base: Instance,
}

impl Service {
    pub fn new(
        metrics: Arc<ServerMetrics>,
        stop: Arc<AtomicBool>,
        threads: Threads,
        drift_ratio: f64,
    ) -> Self {
        Service {
            state: Mutex::new(None),
            metrics,
            stop,
            threads,
            drift_ratio,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Option<Session>> {
        // A worker that panicked inside a handler poisons the lock; the
        // panic was already caught and reported as an `internal` error,
        // so keep serving rather than wedging every later request.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Dispatch one request. `deadline` is the request's admission time
    /// plus its timeout; ops check it on entry and `solve` additionally
    /// clamps its budget to the time left.
    pub fn handle(&self, request: &Request, deadline: Instant) -> Result<Value, ServiceError> {
        let now = Instant::now();
        if now >= deadline {
            return Err(ServiceError::new(
                "deadline_exceeded",
                "request timed out in queue before a worker picked it up",
            ));
        }
        match request.op.as_str() {
            "load" => self.load(&request.body),
            "mutate" => self.mutate(&request.body),
            "query_user" => self.query_user(&request.body),
            "query_event" => self.query_event(&request.body),
            "stats" => self.stats(),
            "solve" => self.solve(&request.body, deadline),
            "snapshot" => self.snapshot(&request.body),
            "restore" => self.restore(&request.body),
            "shutdown" => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(json!({"stopping": true}))
            }
            other => Err(ServiceError::new(
                "unknown_op",
                format!("unknown op {other:?}"),
            )),
        }
    }

    fn with_session<T>(
        &self,
        f: impl FnOnce(&mut Session) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let mut guard = self.lock();
        match guard.as_mut() {
            Some(session) => f(session),
            None => Err(ServiceError::new(
                "no_instance",
                "no instance loaded; send a \"load\" first",
            )),
        }
    }

    fn summary(arranger: &IncrementalArranger) -> Value {
        Value::Object(vec![
            field("epoch", &arranger.epoch()),
            field("num_events", &arranger.instance().num_events()),
            field("num_users", &arranger.instance().num_users()),
            field("pairs", &arranger.arrangement().len()),
            field("max_sum", &arranger.max_sum()),
            field("drift", &arranger.drift()),
            field("needs_rebuild", &arranger.needs_rebuild()),
        ])
    }

    /// `load`: adopt an instance, inline (`"instance": {…}`) or from a
    /// JSON file (`"path": "…"`). Replaces any previous session.
    fn load(&self, body: &Value) -> Result<Value, ServiceError> {
        let instance: Instance = match (
            protocol::get(body, "instance"),
            protocol::get_str(body, "path"),
        ) {
            (Some(value), None) => serde_json::from_value(value.clone())
                .map_err(|e| bad_request(format!("bad instance: {e}")))?,
            (None, Some(path)) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ServiceError::new("io", format!("reading {path}: {e}")))?;
                serde_json::from_str(&text)
                    .map_err(|e| bad_request(format!("bad instance in {path}: {e}")))?
            }
            _ => {
                return Err(bad_request(
                    "load takes exactly one of \"instance\" (inline) or \"path\" (file)",
                ))
            }
        };
        let arranger = IncrementalArranger::new(
            instance.clone(),
            DynamicConfig {
                rebuild_drift_ratio: self.drift_ratio,
            },
        );
        let summary = Self::summary(&arranger);
        *self.lock() = Some(Session {
            arranger,
            base: instance,
        });
        Ok(summary)
    }

    /// `mutate`: apply one [`Mutation`] with localized repair.
    fn mutate(&self, body: &Value) -> Result<Value, ServiceError> {
        let mutation: Mutation = match protocol::get(body, "mutation") {
            Some(value) => serde_json::from_value(value.clone())
                .map_err(|e| bad_request(format!("bad mutation: {e}")))?,
            None => return Err(bad_request("mutate needs a \"mutation\" object")),
        };
        self.with_session(|session| {
            let report = session
                .arranger
                .apply(mutation)
                .map_err(|e| ServiceError::new("mutation_failed", e.to_string()))?;
            self.metrics
                .record_repair(report.evicted, report.reassigned);
            Ok(Value::Object(vec![
                field("epoch", &report.epoch),
                field("evicted", &report.evicted),
                field("reassigned", &report.reassigned),
                field("max_sum", &report.max_sum_after),
                field("delta", &report.max_sum_delta()),
                field("drift", &session.arranger.drift()),
                field("needs_rebuild", &session.arranger.needs_rebuild()),
            ]))
        })
    }

    /// `query_user`: a user's current assignments with similarities.
    fn query_user(&self, body: &Value) -> Result<Value, ServiceError> {
        let id = protocol::get_u64(body, "user")
            .ok_or_else(|| bad_request("query_user needs a numeric \"user\""))?;
        self.with_session(|session| {
            let inst = session.arranger.instance();
            if id >= inst.num_users() as u64 {
                return Err(bad_request(format!(
                    "user u{id} out of range (instance has {})",
                    inst.num_users()
                )));
            }
            let u = UserId(id as u32);
            let events: Vec<Value> = session
                .arranger
                .arrangement()
                .events_of(u)
                .iter()
                .map(|&v| {
                    Value::Object(vec![
                        field("event", &v),
                        field("similarity", &inst.similarity(v, u)),
                    ])
                })
                .collect();
            Ok(Value::Object(vec![
                field("user", &u),
                field("capacity", &inst.user_capacity(u)),
                ("events".to_string(), Value::Array(events)),
            ]))
        })
    }

    /// `query_event`: an event's current attendees with similarities.
    fn query_event(&self, body: &Value) -> Result<Value, ServiceError> {
        let id = protocol::get_u64(body, "event")
            .ok_or_else(|| bad_request("query_event needs a numeric \"event\""))?;
        self.with_session(|session| {
            let inst = session.arranger.instance();
            if id >= inst.num_events() as u64 {
                return Err(bad_request(format!(
                    "event v{id} out of range (instance has {})",
                    inst.num_events()
                )));
            }
            let v = EventId(id as u32);
            let attendees: Vec<Value> = inst
                .users()
                .filter(|&u| session.arranger.arrangement().contains(v, u))
                .map(|u| {
                    Value::Object(vec![
                        field("user", &u),
                        field("similarity", &inst.similarity(v, u)),
                    ])
                })
                .collect();
            Ok(Value::Object(vec![
                field("event", &v),
                field("capacity", &inst.event_capacity(v)),
                field("count", &session.arranger.arrangement().attendees_of(v)),
                ("attendees".to_string(), Value::Array(attendees)),
            ]))
        })
    }

    /// `stats`: live metrics plus the arranger summary (null before
    /// `load`).
    fn stats(&self) -> Result<Value, ServiceError> {
        let arranger = match self.lock().as_ref() {
            Some(session) => Self::summary(&session.arranger),
            None => Value::Null,
        };
        Ok(Value::Object(vec![
            field("server", &self.metrics.snapshot()),
            ("arranger".to_string(), arranger),
        ]))
    }

    /// `solve`: re-solve the live instance under a budget and adopt the
    /// result ([`IncrementalArranger::rebuild`]). The budget is the
    /// requested `timeout_ms`/`max_nodes` clamped to the request's
    /// remaining deadline, so a queued solve can never overstay its
    /// admission contract.
    fn solve(&self, body: &Value, deadline: Instant) -> Result<Value, ServiceError> {
        let algorithm = match protocol::get_str(body, "algorithm").unwrap_or("greedy") {
            "greedy" => Algorithm::Greedy,
            "mincostflow" => Algorithm::MinCostFlow,
            "prune" => Algorithm::Prune,
            "exactdp" => Algorithm::ExactDp,
            "random_v" => Algorithm::RandomV {
                seed: protocol::get_u64(body, "seed").unwrap_or(0),
            },
            "random_u" => Algorithm::RandomU {
                seed: protocol::get_u64(body, "seed").unwrap_or(0),
            },
            other => {
                return Err(bad_request(format!(
                    "unknown algorithm {other:?} (greedy, mincostflow, prune, exactdp, random_v, random_u)"
                )))
            }
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        let mut budget = SolveBudget {
            deadline: Some(match protocol::get_u64(body, "timeout_ms") {
                Some(ms) => std::time::Duration::from_millis(ms).min(remaining),
                None => remaining,
            }),
            ..SolveBudget::UNLIMITED
        };
        if let Some(nodes) = protocol::get_u64(body, "max_nodes") {
            budget.max_nodes = Some(nodes);
        }
        let pipeline = SolverPipeline::new(algorithm, budget).with_threads(self.threads);
        self.with_session(|session| {
            let outcome = session.arranger.rebuild(&pipeline);
            Ok(Value::Object(vec![
                field("status", &outcome.status.to_string()),
                field("exit_code", &outcome.status.exit_code()),
                field("max_sum", &session.arranger.max_sum()),
                field("pairs", &session.arranger.arrangement().len()),
                field("nodes", &outcome.nodes),
                field("elapsed_ms", &(outcome.elapsed.as_millis() as u64)),
                field("epoch", &session.arranger.epoch()),
            ]))
        })
    }

    /// `snapshot`: persist the session to a file — base instance,
    /// mutation log, the standing arrangement, and its drift baseline.
    /// Streamed with `to_writer`, never materialized as one string.
    fn snapshot(&self, body: &Value) -> Result<Value, ServiceError> {
        let path = protocol::get_str(body, "path")
            .ok_or_else(|| bad_request("snapshot needs a \"path\""))?;
        self.with_session(|session| {
            let file = std::fs::File::create(path)
                .map_err(|e| ServiceError::new("io", format!("creating {path}: {e}")))?;
            let mut writer = BufWriter::new(file);
            let doc = Value::Object(vec![
                field("instance", &session.base),
                field("log", &session.arranger.log().to_vec()),
                field("arrangement", session.arranger.arrangement()),
                field("baseline", &session.arranger.baseline_max_sum()),
                field("epoch", &session.arranger.epoch()),
            ]);
            serde_json::to_writer(&mut writer, &doc)
                .map_err(|e| ServiceError::new("io", format!("writing {path}: {e}")))?;
            writer
                .write_all(b"\n")
                .and_then(|()| writer.flush())
                .map_err(|e| ServiceError::new("io", format!("writing {path}: {e}")))?;
            Ok(Value::Object(vec![
                field("path", &path),
                field("epoch", &session.arranger.epoch()),
                field("mutations", &session.arranger.log().len()),
            ]))
        })
    }

    /// `restore`: rebuild a session from a snapshot file. The mutation
    /// log is replayed over the base instance (deterministically
    /// reproducing every intermediate state), then the snapshot's own
    /// arrangement is installed on top — it may differ from the replay
    /// when a `solve` ran before the snapshot — after a feasibility
    /// check.
    fn restore(&self, body: &Value) -> Result<Value, ServiceError> {
        let path = protocol::get_str(body, "path")
            .ok_or_else(|| bad_request("restore needs a \"path\""))?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServiceError::new("io", format!("reading {path}: {e}")))?;
        let doc: Value = serde_json::from_str(&text)
            .map_err(|e| bad_request(format!("bad snapshot in {path}: {e}")))?;
        let pick = |key: &str| {
            protocol::get(&doc, key)
                .cloned()
                .ok_or_else(|| bad_request(format!("snapshot {path} missing {key:?}")))
        };
        let base: Instance = serde_json::from_value(pick("instance")?)
            .map_err(|e| bad_request(format!("bad snapshot instance: {e}")))?;
        let log: Vec<Mutation> = serde_json::from_value(pick("log")?)
            .map_err(|e| bad_request(format!("bad snapshot log: {e}")))?;
        let arrangement: Arrangement = serde_json::from_value(pick("arrangement")?)
            .map_err(|e| bad_request(format!("bad snapshot arrangement: {e}")))?;
        let baseline: f64 = serde_json::from_value(pick("baseline")?)
            .map_err(|e| bad_request(format!("bad snapshot baseline: {e}")))?;

        let mut arranger = IncrementalArranger::replay(
            base.clone(),
            &log,
            DynamicConfig {
                rebuild_drift_ratio: self.drift_ratio,
            },
        )
        .map_err(|e| ServiceError::new("mutation_failed", format!("replaying {path}: {e}")))?;
        arranger.install(arrangement, baseline).map_err(|violations| {
            ServiceError::new(
                "infeasible_snapshot",
                format!(
                    "snapshot arrangement is infeasible for its instance ({} violations, first: {:?})",
                    violations.len(),
                    violations.first()
                ),
            )
        })?;
        let summary = Self::summary(&arranger);
        *self.lock() = Some(Session { arranger, base });
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn service() -> Service {
        Service::new(
            Arc::new(ServerMetrics::default()),
            Arc::new(AtomicBool::new(false)),
            Threads::single(),
            0.2,
        )
    }

    fn call(svc: &Service, line: &str) -> Result<Value, ServiceError> {
        let req = protocol::parse_request(line).unwrap();
        svc.handle(&req, Instant::now() + Duration::from_secs(5))
    }

    fn toy_line() -> String {
        let inst = geacc_core::toy::table1_instance();
        format!(
            r#"{{"op": "load", "instance": {}}}"#,
            serde_json::to_string(&inst).unwrap()
        )
    }

    #[test]
    fn full_session_load_mutate_query_solve() {
        let svc = service();
        assert_eq!(
            call(&svc, r#"{"op": "stats"}"#).unwrap(),
            call(&svc, r#"{"op": "stats"}"#).unwrap()
        );
        assert_eq!(
            call(
                &svc,
                r#"{"op": "mutate", "mutation": {"CloseEvent": {"event": 0}}}"#
            )
            .unwrap_err()
            .code,
            "no_instance"
        );

        let loaded = call(&svc, &toy_line()).unwrap();
        assert_eq!(protocol::get_u64(&loaded, "epoch"), Some(0));
        assert_eq!(protocol::get_u64(&loaded, "num_events"), Some(3));

        let mutated = call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 1, "b": 2}}}"#,
        )
        .unwrap();
        assert_eq!(protocol::get_u64(&mutated, "epoch"), Some(1));

        let user = call(&svc, r#"{"op": "query_user", "user": 0}"#).unwrap();
        assert!(protocol::get(&user, "events").is_some());
        let event = call(&svc, r#"{"op": "query_event", "event": 0}"#).unwrap();
        assert!(protocol::get_u64(&event, "count").is_some());

        let solved = call(&svc, r#"{"op": "solve", "algorithm": "prune"}"#).unwrap();
        assert_eq!(protocol::get_str(&solved, "status"), Some("optimal"));

        let err = call(&svc, r#"{"op": "query_user", "user": 99}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        let err = call(&svc, r#"{"op": "warp"}"#).unwrap_err();
        assert_eq!(err.code, "unknown_op");
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_state() {
        let svc = service();
        call(&svc, &toy_line()).unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"AddConflict": {"a": 0, "b": 1}}}"#,
        )
        .unwrap();
        call(
            &svc,
            r#"{"op": "mutate", "mutation": {"SetCapacity": {"side": "User", "id": 2, "capacity": 0}}}"#,
        )
        .unwrap();
        let before = call(&svc, r#"{"op": "stats"}"#).unwrap();

        let dir = std::env::temp_dir().join("geacc-server-test-snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let path = path.to_str().unwrap();
        call(&svc, &format!(r#"{{"op": "snapshot", "path": "{path}"}}"#)).unwrap();

        // Restore into a fresh service and compare the arranger summary.
        let svc2 = service();
        let restored = call(&svc2, &format!(r#"{{"op": "restore", "path": "{path}"}}"#)).unwrap();
        assert_eq!(
            protocol::get(&before, "arranger").map(|a| protocol::get_u64(a, "epoch")),
            Some(protocol::get_u64(&restored, "epoch"))
        );
        let a = call(&svc, r#"{"op": "query_user", "user": 0}"#).unwrap();
        let b = call(&svc2, r#"{"op": "query_user", "user": 0}"#).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn expired_deadline_is_rejected_before_work() {
        let svc = service();
        let req = protocol::parse_request(r#"{"op": "stats"}"#).unwrap();
        let err = svc
            .handle(&req, Instant::now() - Duration::from_millis(1))
            .unwrap_err();
        assert_eq!(err.code, "deadline_exceeded");
    }

    #[test]
    fn shutdown_raises_the_stop_flag() {
        let svc = service();
        assert!(!svc.stop.load(Ordering::SeqCst));
        call(&svc, r#"{"op": "shutdown"}"#).unwrap();
        assert!(svc.stop.load(Ordering::SeqCst));
    }
}
