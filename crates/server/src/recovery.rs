//! Startup recovery: rebuild the live session from a `--wal-dir`.
//!
//! The recovery algorithm:
//!
//! 1. **Load the newest valid snapshot** (`snapshot.json`). A missing or
//!    invalid snapshot (torn copy, bit rot, infeasible state) falls back
//!    to replaying the whole WAL — a bad snapshot never blocks a boot
//!    the log alone can serve, and never panics.
//! 2. **Scan the WAL tail** from the snapshot's embedded byte offset
//!    (or 0 without one). [`crate::wal::scan_from`] classifies the first
//!    undecodable frame: a *torn tail* (crash mid-append) is truncated
//!    off the file so the writer can resume at a clean offset;
//!    *mid-log corruption* refuses the boot with a structured
//!    [`RecoveryError::Corrupt`] naming the byte offset — truncating
//!    there would silently drop acked history.
//! 3. **Replay the tail** through the deterministic
//!    [`IncrementalArranger`] machinery: `Load` records open a fresh
//!    session, `Mutation` records re-apply (records that failed at
//!    runtime fail identically and are skipped — see
//!    [`IncrementalArranger::replay_tail`]), `Install` records re-adopt
//!    a solve/restore arrangement.
//!
//! The result is bit-identical to the pre-crash state for every acked
//! request: an ack only follows a durable append, so the recovered log
//! is always a prefix of the sent stream containing at least every
//! acked record.

use crate::wal::{
    self, read_snapshot, scan_from, FsyncPolicy, SnapshotReadError, WalRecord, WalWriter,
};
use geacc_core::{DynamicConfig, IncrementalArranger, Instance};
use std::io;
use std::path::{Path, PathBuf};

/// A recovered session: the arranger plus the pristine base instance
/// snapshots embed.
#[derive(Debug)]
pub struct RecoveredSession {
    pub arranger: IncrementalArranger,
    pub base: Instance,
}

/// What recovery found and did — surfaced in the boot log line and the
/// `stats` op's durability counters.
#[derive(Debug)]
pub struct Recovery {
    /// The live session, if the log (or snapshot) contained one.
    pub session: Option<RecoveredSession>,
    /// Byte length of the valid WAL prefix; the writer resumes here.
    pub wal_offset: u64,
    /// Records in the valid prefix (snapshot's count + tail records).
    pub wal_records: u64,
    /// Tail records replayed (applied or skipped) after the snapshot.
    pub replayed: u64,
    /// Tail mutations that failed to apply — they failed identically at
    /// runtime, so skipping reproduces the served state.
    pub skipped: u64,
    /// Torn-tail bytes truncated off the WAL.
    pub truncated_bytes: u64,
    /// Whether the snapshot fast path was taken.
    pub snapshot_used: bool,
    /// The snapshot's epoch, when one was used.
    pub snapshot_epoch: Option<u64>,
    /// Idempotency keys seen in the replayed records: client → highest
    /// seq. Re-arms the service's dedup table so a client retry across
    /// a restart still cannot double-apply. (With the snapshot fast
    /// path only the tail is scanned; that is sufficient — a retry only
    /// happens for an ambiguous in-flight request, which by definition
    /// is recent enough to sit in the tail.)
    pub dedup_keys: Vec<(String, u64)>,
}

/// Recovery refused to reconstruct state it cannot vouch for.
#[derive(Debug)]
pub enum RecoveryError {
    Io(io::Error),
    /// Mid-log corruption: `path` fails its checksum at `offset` with
    /// more records after it.
    Corrupt {
        path: PathBuf,
        offset: u64,
        detail: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery i/o: {e}"),
            RecoveryError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "refusing to boot: {} is corrupt at byte {offset}: {detail} \
                 (truncating mid-log would drop acknowledged history; restore \
                 from a snapshot or move the damaged log aside)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl RecoveryError {
    /// Flatten into an `io::Error` for callers (the daemon's bind path)
    /// that only speak io — the structured message survives.
    pub fn into_io(self) -> io::Error {
        match self {
            RecoveryError::Io(e) => e,
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

/// WAL file path inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(wal::WAL_FILE)
}

/// Snapshot file path inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(wal::SNAPSHOT_FILE)
}

/// Recover a session from `dir`, truncating any torn WAL tail, and
/// return the state plus the offsets a fresh [`WalWriter`] should
/// resume from. Creates `dir` (empty recovery) on first boot.
pub fn recover(dir: &Path, config: DynamicConfig) -> Result<Recovery, RecoveryError> {
    std::fs::create_dir_all(dir)?;
    let wal_file = wal_path(dir);
    let bytes = match std::fs::read(&wal_file) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(RecoveryError::Io(e)),
    };

    // Snapshot fast path: resume the session and scan only the tail.
    let snapshot = match read_snapshot(&snapshot_path(dir)) {
        Ok(doc) => Some(doc),
        Err(SnapshotReadError::Missing | SnapshotReadError::Invalid { .. }) => None,
        Err(SnapshotReadError::Io(e)) => return Err(RecoveryError::Io(e)),
    };
    if let Some(doc) = snapshot {
        match try_snapshot_recovery(&wal_file, &bytes, doc, config) {
            Ok(Some(recovery)) => return Ok(recovery),
            Ok(None) => {} // inconsistent snapshot: fall through to full replay
            Err(e) => return Err(e),
        }
    }

    // Full replay from the beginning of the log.
    let scan = scan_from(&bytes, 0).map_err(|c| RecoveryError::Corrupt {
        path: wal_file.clone(),
        offset: c.offset,
        detail: c.detail,
    })?;
    truncate_torn_tail(&wal_file, &scan)?;
    let mut state: Option<RecoveredSession> = None;
    let mut dedup = std::collections::BTreeMap::new();
    let (mut replayed, mut skipped) = (0u64, 0u64);
    for scanned in &scan.records {
        replayed += 1;
        collect_dedup_key(&mut dedup, &scanned.record);
        if !apply_record(&mut state, &scanned.record, config) {
            skipped += 1;
        }
    }
    Ok(Recovery {
        session: state,
        wal_offset: scan.valid_len,
        wal_records: scan.records.len() as u64,
        replayed,
        skipped,
        truncated_bytes: scan.truncated_bytes,
        snapshot_used: false,
        snapshot_epoch: None,
        dedup_keys: dedup.into_iter().collect(),
    })
}

/// Attempt the snapshot fast path. `Ok(None)` means the snapshot is
/// internally inconsistent (infeasible arrangement, offset past a
/// replaced log) and the caller should fall back to full replay.
fn try_snapshot_recovery(
    wal_file: &Path,
    bytes: &[u8],
    doc: wal::SnapshotDoc,
    config: DynamicConfig,
) -> Result<Option<Recovery>, RecoveryError> {
    let snapshot_offset = doc.wal_offset;
    let snapshot_records = doc.wal_records;
    let snapshot_epoch = doc.epoch;
    let scan = match scan_from(bytes, snapshot_offset) {
        Ok(scan) => scan,
        // An offset past EOF means the WAL was replaced under the
        // snapshot; the log is still self-consistent, so fall back.
        Err(_) if snapshot_offset > bytes.len() as u64 => return Ok(None),
        Err(c) => {
            return Err(RecoveryError::Corrupt {
                path: wal_file.to_path_buf(),
                offset: c.offset,
                detail: c.detail,
            })
        }
    };
    let arranger =
        match IncrementalArranger::resume(doc.live, doc.log, doc.arrangement, doc.baseline, config)
        {
            Ok(arranger) => arranger,
            Err(_) => return Ok(None), // infeasible snapshot: fall back
        };
    truncate_torn_tail(wal_file, &scan)?;
    let mut state = Some(RecoveredSession {
        arranger,
        base: doc.base,
    });
    let mut dedup = std::collections::BTreeMap::new();
    let (mut replayed, mut skipped) = (0u64, 0u64);
    for scanned in &scan.records {
        replayed += 1;
        collect_dedup_key(&mut dedup, &scanned.record);
        if !apply_record(&mut state, &scanned.record, config) {
            skipped += 1;
        }
    }
    Ok(Some(Recovery {
        session: state,
        wal_offset: scan.valid_len,
        wal_records: snapshot_records + scan.records.len() as u64,
        replayed,
        skipped,
        truncated_bytes: scan.truncated_bytes,
        snapshot_used: true,
        snapshot_epoch: Some(snapshot_epoch),
        dedup_keys: dedup.into_iter().collect(),
    }))
}

/// Note a replayed record's idempotency key, keeping the highest seq
/// per client.
fn collect_dedup_key(dedup: &mut std::collections::BTreeMap<String, u64>, record: &WalRecord) {
    if let WalRecord::KeyedMutation { client, seq, .. } = record {
        let entry = dedup.entry(client.clone()).or_insert(*seq);
        *entry = (*entry).max(*seq);
    }
}

/// Apply one replayed record to the session under construction; `false`
/// means the record was skipped (it failed identically at runtime).
/// Public because replication shares it: a replica applies shipped
/// records through exactly this path, and failover tests use it to
/// compute what an acked WAL prefix must serve.
pub fn apply_record(
    state: &mut Option<RecoveredSession>,
    record: &WalRecord,
    config: DynamicConfig,
) -> bool {
    match record {
        WalRecord::Load { instance } => {
            *state = Some(RecoveredSession {
                arranger: IncrementalArranger::new(instance.clone(), config),
                base: instance.clone(),
            });
            true
        }
        WalRecord::Mutation { mutation } | WalRecord::KeyedMutation { mutation, .. } => match state
        {
            Some(session) => session.arranger.apply(mutation.clone()).is_ok(),
            None => false, // mutation before any load: skipped at runtime too
        },
        WalRecord::Install {
            arrangement,
            baseline,
        } => match state {
            Some(session) => session
                .arranger
                .install(arrangement.clone(), *baseline)
                .is_ok(),
            None => false,
        },
    }
}

/// Replay a record prefix into a fresh session — the same deterministic
/// path boot recovery takes, exposed so replication tests and the
/// failover smoke can compute what an acked WAL prefix must serve
/// without booting a server.
pub fn replay_prefix(records: &[WalRecord], config: DynamicConfig) -> Option<RecoveredSession> {
    let mut state = None;
    for record in records {
        apply_record(&mut state, record, config);
    }
    state
}

/// Truncate the WAL file to its valid prefix so the writer resumes at a
/// clean offset.
fn truncate_torn_tail(wal_file: &Path, scan: &wal::WalScan) -> Result<(), RecoveryError> {
    if scan.truncated_bytes == 0 {
        return Ok(());
    }
    let file = std::fs::OpenOptions::new().write(true).open(wal_file)?;
    file.set_len(scan.valid_len)?;
    file.sync_all()?;
    Ok(())
}

/// Open the WAL writer at the offset recovery validated.
pub fn open_writer(dir: &Path, policy: FsyncPolicy, recovery: &Recovery) -> io::Result<WalWriter> {
    WalWriter::open(
        &wal_path(dir),
        policy,
        recovery.wal_offset,
        recovery.wal_records,
    )
}

/// Wipe the durable state in `dir` and open a fresh writer at offset 0:
/// a replica starting a full resync discards its local log (it is about
/// to receive an authoritative snapshot + tail from the primary) along
/// with any now-stale local snapshot.
pub fn reset_wal(dir: &Path, policy: FsyncPolicy) -> io::Result<WalWriter> {
    let wal_file = wal_path(dir);
    match std::fs::OpenOptions::new().write(true).open(&wal_file) {
        Ok(file) => {
            file.set_len(0)?;
            file.sync_all()?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    match std::fs::remove_file(snapshot_path(dir)) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    WalWriter::open(&wal_file, policy, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{write_snapshot, SnapshotDoc};
    use geacc_core::{toy, EventId, Mutation};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("geacc-recovery-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_records(dir: &Path, records: &[WalRecord], policy: FsyncPolicy) {
        let mut w = WalWriter::open(&wal_path(dir), policy, 0, 0).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        w.sync_now().unwrap();
    }

    fn session_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Load {
                instance: toy::table1_instance(),
            },
            WalRecord::Mutation {
                mutation: Mutation::AddConflict {
                    a: EventId(0),
                    b: EventId(1),
                },
            },
            WalRecord::Mutation {
                mutation: Mutation::CloseEvent { event: EventId(2) },
            },
        ]
    }

    #[test]
    fn empty_dir_recovers_to_no_session() {
        let dir = tmp_dir("empty");
        let r = recover(&dir, DynamicConfig::default()).unwrap();
        assert!(r.session.is_none());
        assert_eq!((r.wal_offset, r.wal_records), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_replay_matches_a_live_session() {
        let dir = tmp_dir("replay");
        write_records(&dir, &session_records(), FsyncPolicy::Always);
        let r = recover(&dir, DynamicConfig::default()).unwrap();
        let session = r.session.unwrap();
        assert_eq!(r.replayed, 3);
        assert_eq!(r.skipped, 0);
        assert!(!r.snapshot_used);

        let mut live = IncrementalArranger::new(toy::table1_instance(), DynamicConfig::default());
        live.apply(Mutation::AddConflict {
            a: EventId(0),
            b: EventId(1),
        })
        .unwrap();
        live.apply(Mutation::CloseEvent { event: EventId(2) })
            .unwrap();
        assert_eq!(session.arranger.arrangement(), live.arrangement());
        assert_eq!(
            session.arranger.max_sum().to_bits(),
            live.max_sum().to_bits()
        );
        assert_eq!(session.base, toy::table1_instance());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_the_writer_resumes() {
        let dir = tmp_dir("torn");
        write_records(&dir, &session_records(), FsyncPolicy::Never);
        // Tear the last record.
        let path = wal_path(&dir);
        let full = std::fs::read(&path).unwrap();
        let scan = crate::wal::scan(&full).unwrap();
        let cut = scan.records[2].offset + 3;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let r = recover(&dir, DynamicConfig::default()).unwrap();
        assert_eq!(r.replayed, 2);
        assert_eq!(r.truncated_bytes, 3);
        assert_eq!(r.wal_offset, scan.records[2].offset);
        // The file itself was truncated to the valid prefix.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            scan.records[2].offset
        );
        // And appending resumes cleanly.
        let mut w = open_writer(&dir, FsyncPolicy::Always, &r).unwrap();
        w.append(&session_records()[2]).unwrap();
        let r2 = recover(&dir, DynamicConfig::default()).unwrap();
        assert_eq!(r2.wal_records, 3);
        assert_eq!(r2.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_log_corruption_refuses_to_boot() {
        let dir = tmp_dir("corrupt");
        write_records(&dir, &session_records(), FsyncPolicy::Always);
        let path = wal_path(&dir);
        let full = std::fs::read(&path).unwrap();
        let scan = crate::wal::scan(&full).unwrap();
        let mut bad = full.clone();
        let idx = (scan.records[1].offset + crate::wal::HEADER_LEN) as usize + 1;
        bad[idx] ^= 0x20;
        std::fs::write(&path, &bad).unwrap();

        let err = recover(&dir, DynamicConfig::default()).unwrap_err();
        match err {
            RecoveryError::Corrupt { offset, .. } => {
                assert_eq!(offset, scan.records[1].offset);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_fast_path_plus_tail_equals_full_replay() {
        let dir_full = tmp_dir("snap-full");
        let dir_snap = tmp_dir("snap-fast");
        let records = session_records();
        write_records(&dir_full, &records, FsyncPolicy::Always);
        write_records(&dir_snap, &records, FsyncPolicy::Always);

        // Cut a snapshot at record 2 (offset of the third record).
        let bytes = std::fs::read(wal_path(&dir_snap)).unwrap();
        let scan = crate::wal::scan(&bytes).unwrap();
        let mut arranger =
            IncrementalArranger::new(toy::table1_instance(), DynamicConfig::default());
        arranger
            .apply(Mutation::AddConflict {
                a: EventId(0),
                b: EventId(1),
            })
            .unwrap();
        let doc = SnapshotDoc {
            version: 1,
            wal_offset: scan.records[2].offset,
            wal_records: 2,
            epoch: arranger.epoch(),
            base: toy::table1_instance(),
            live: arranger.instance().clone(),
            log: arranger.log().to_vec(),
            arrangement: arranger.arrangement().clone(),
            baseline: arranger.baseline_max_sum(),
        };
        write_snapshot(&snapshot_path(&dir_snap), &doc).unwrap();

        let full = recover(&dir_full, DynamicConfig::default()).unwrap();
        let fast = recover(&dir_snap, DynamicConfig::default()).unwrap();
        assert!(fast.snapshot_used);
        assert_eq!(fast.snapshot_epoch, Some(1));
        assert_eq!(fast.replayed, 1, "only the tail replays");
        assert_eq!(fast.wal_records, full.wal_records);
        let (a, b) = (full.session.unwrap(), fast.session.unwrap());
        assert_eq!(a.arranger.arrangement(), b.arranger.arrangement());
        assert_eq!(a.arranger.epoch(), b.arranger.epoch());
        assert_eq!(
            a.arranger.max_sum().to_bits(),
            b.arranger.max_sum().to_bits()
        );
        assert_eq!(a.base, b.base);
        std::fs::remove_dir_all(&dir_full).ok();
        std::fs::remove_dir_all(&dir_snap).ok();
    }

    #[test]
    fn keyed_mutations_replay_and_rearm_the_dedup_table() {
        let dir = tmp_dir("keyed");
        let records = vec![
            WalRecord::Load {
                instance: toy::table1_instance(),
            },
            WalRecord::KeyedMutation {
                client: "c-1".to_string(),
                seq: 4,
                mutation: Mutation::AddConflict {
                    a: EventId(0),
                    b: EventId(1),
                },
            },
            WalRecord::KeyedMutation {
                client: "c-1".to_string(),
                seq: 5,
                mutation: Mutation::CloseEvent { event: EventId(2) },
            },
            WalRecord::KeyedMutation {
                client: "c-2".to_string(),
                seq: 1,
                mutation: Mutation::AddConflict {
                    a: EventId(0),
                    b: EventId(2),
                },
            },
        ];
        write_records(&dir, &records, FsyncPolicy::Always);
        let r = recover(&dir, DynamicConfig::default()).unwrap();
        assert_eq!(r.replayed, 4);
        assert_eq!(
            r.dedup_keys,
            vec![("c-1".to_string(), 5), ("c-2".to_string(), 1)]
        );
        // Keyed replay applies the mutations exactly like plain ones.
        let session = r.session.unwrap();
        assert_eq!(session.arranger.epoch(), 3);
        let prefix = replay_prefix(&records, DynamicConfig::default()).unwrap();
        assert_eq!(
            prefix.arranger.fingerprint(),
            session.arranger.fingerprint()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_wal_wipes_the_log_and_snapshot() {
        let dir = tmp_dir("reset");
        write_records(&dir, &session_records(), FsyncPolicy::Always);
        std::fs::write(snapshot_path(&dir), b"{}").unwrap();
        let mut w = reset_wal(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(w.offset(), 0);
        assert!(!snapshot_path(&dir).exists());
        assert_eq!(std::fs::metadata(wal_path(&dir)).unwrap().len(), 0);
        // The fresh writer appends from a clean offset.
        w.append(&session_records()[0]).unwrap();
        let r = recover(&dir, DynamicConfig::default()).unwrap();
        assert_eq!(r.wal_records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_snapshot_falls_back_to_full_replay() {
        let dir = tmp_dir("snap-bad");
        write_records(&dir, &session_records(), FsyncPolicy::Always);
        std::fs::write(snapshot_path(&dir), b"{\"torn\": tru").unwrap();
        let r = recover(&dir, DynamicConfig::default()).unwrap();
        assert!(!r.snapshot_used);
        assert_eq!(r.replayed, 3);
        assert!(r.session.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
