//! The write-ahead log: per-mutation durability for the arrangement
//! service.
//!
//! ## Record framing
//!
//! The WAL is a single append-only file of length-prefixed, checksummed
//! records:
//!
//! ```text
//! ┌──────────────┬──────────────┬───────────────────┐
//! │ len: u32 LE  │ crc: u32 LE  │ payload (len B)   │
//! └──────────────┴──────────────┴───────────────────┘
//! ```
//!
//! The payload is a JSON-encoded [`WalRecord`] (mutations use exactly
//! the `mutate` op's wire format via [`geacc_core::Mutation`] serde), so
//! a log is inspectable with `xxd` + `jq` despite the binary framing.
//! The CRC is IEEE CRC-32 over the payload bytes; the length prefix
//! bounds the read and the checksum catches torn or bit-rotted payloads.
//!
//! ## Append and fsync discipline
//!
//! [`WalWriter::append`] frames, writes, and (per [`FsyncPolicy`])
//! syncs **before** the service acknowledges the request — an acked
//! mutation under `FsyncPolicy::Always` is durable. `interval(ms)`
//! bounds data loss to the interval; `never` leaves syncing to the OS
//! (the record still survives a process kill, just not a host crash).
//!
//! ## Torn tails vs. corruption
//!
//! [`scan`] decodes a WAL prefix and classifies the first failure by
//! position: a record that runs past end-of-file, or whose checksum /
//! payload fails **at the very end** of the file, is a *torn tail* — the
//! expected residue of a crash mid-append — and recovery truncates it.
//! A bad checksum or undecodable payload with more data *after* it is
//! *mid-log corruption*: silently dropping acked records would be a lie,
//! so recovery refuses to boot with a [`WalCorruption`] naming the
//! offset.
//!
//! The writer is generic over [`WalSink`] so tests can inject
//! deterministic faults ([`FaultSink`] fails after a byte budget,
//! mid-frame) and property-test that every crash point yields either a
//! clean prefix or a truncatable tail — never a boot failure.

use geacc_core::{Arrangement, Instance, Mutation};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// WAL file name inside a `--wal-dir`.
pub const WAL_FILE: &str = "wal.log";
/// Current-snapshot file name inside a `--wal-dir`.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// Frame header: 4 bytes length + 4 bytes CRC.
pub const HEADER_LEN: u64 = 8;
/// Upper bound on a single record payload; a length prefix beyond this
/// is treated as corruption, not an allocation request.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// When appended records reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record, before the ack: an acked mutation
    /// survives a host crash.
    Always,
    /// `fsync` at most once per interval (checked on append, forced on
    /// snapshot and drain): bounded data loss, near-`never` throughput.
    Interval(Duration),
    /// Never `fsync` explicitly: the OS flushes at its leisure. Records
    /// still survive a process kill (the page cache is intact), just not
    /// a host power loss.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI spelling: `always`, `never`, or `interval:MS`.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|e| format!("bad interval in fsync policy {other:?}: {e}")),
                None => Err(format!(
                    "unknown fsync policy {other:?} (always, never, interval:MS)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// One durable event in a session's history. Replaying the records in
/// order reproduces the service state bit-for-bit (the arranger's
/// repair machinery is deterministic and failed mutations fail
/// identically on replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A `load` op: a fresh session on this base instance.
    Load { instance: Instance },
    /// A `mutate` op, logged before it is applied.
    Mutation { mutation: Mutation },
    /// A `mutate` op carrying an idempotency key. Replays exactly like
    /// [`WalRecord::Mutation`] and additionally re-arms the server-side
    /// `(client, seq)` dedup table, so a client retry after a crash or
    /// failover cannot double-apply.
    KeyedMutation {
        client: String,
        seq: u64,
        mutation: Mutation,
    },
    /// A wholesale arrangement swap (a `solve`/rebuild, or the install
    /// step of a `restore`) with its new drift baseline.
    Install {
        arrangement: Arrangement,
        baseline: f64,
    },
}

// IEEE CRC-32 (polynomial 0xEDB88320), table-driven.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the checksum in every record header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xff) as usize];
    }
    !c
}

/// Frame one payload: length + CRC header, then the bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN as usize + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Where WAL frames go. Production uses [`File`]; tests inject
/// [`FaultSink`] to model crashes mid-write.
pub trait WalSink {
    /// Append exactly `frame`, or fail — possibly after a partial write,
    /// which is the torn-tail crash model recovery must absorb.
    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Force everything appended so far to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl WalSink for File {
    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        self.write_all(frame)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl WalSink for Box<dyn WalSink + Send> {
    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        (**self).write_frame(frame)
    }

    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// A deterministic fault-injecting sink: accepts bytes into memory until
/// a total byte budget is exhausted, then short-writes the final frame
/// and fails — every later operation fails too. `FaultSink::new(n)`
/// crashes the "disk" after exactly `n` bytes, so a property test can
/// sweep every crash point of a record stream.
#[derive(Debug)]
pub struct FaultSink {
    written: Vec<u8>,
    fail_after: usize,
    failed: bool,
    /// Raw OS errno reported on failure (e.g. 28 = `ENOSPC` for the
    /// disk-full model); `None` keeps the generic crash error.
    errno: Option<i32>,
}

impl FaultSink {
    pub fn new(fail_after: usize) -> FaultSink {
        FaultSink {
            written: Vec::new(),
            fail_after,
            failed: false,
            errno: None,
        }
    }

    /// A full disk: accepts `fail_after` bytes, short-writes the frame
    /// that crosses the budget, and fails with `ENOSPC` (errno 28) —
    /// the degradation path a real `write(2)` takes when the volume
    /// fills mid-append.
    pub fn disk_full(fail_after: usize) -> FaultSink {
        FaultSink {
            written: Vec::new(),
            fail_after,
            failed: false,
            errno: Some(28),
        }
    }

    fn fault(&self) -> io::Error {
        match self.errno {
            Some(code) => io::Error::from_raw_os_error(code),
            None => io::Error::new(io::ErrorKind::WriteZero, "injected fault: crash mid-append"),
        }
    }

    /// Everything the "disk" holds, including any short-written tail.
    pub fn bytes(&self) -> &[u8] {
        &self.written
    }
}

impl WalSink for FaultSink {
    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        if self.failed {
            return Err(self.fault());
        }
        let budget = self.fail_after.saturating_sub(self.written.len());
        if frame.len() <= budget {
            self.written.extend_from_slice(frame);
            Ok(())
        } else {
            self.written.extend_from_slice(&frame[..budget]);
            self.failed = true;
            Err(self.fault())
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.failed {
            Err(self.fault())
        } else {
            Ok(())
        }
    }
}

/// The append half: frames records, enforces the fsync policy, and
/// keeps the running counters the `stats` op surfaces.
#[derive(Debug)]
pub struct WalWriter<S: WalSink = File> {
    sink: S,
    policy: FsyncPolicy,
    offset: u64,
    records: u64,
    fsyncs: u64,
    last_sync: Instant,
}

impl WalWriter<File> {
    /// Open (creating if needed) the WAL at `path` for appending.
    /// `offset`/`records` resume the counters from recovery's scan of
    /// the valid prefix — recovery has already truncated any torn tail,
    /// so appends land exactly at `offset`.
    pub fn open(
        path: &Path,
        policy: FsyncPolicy,
        offset: u64,
        records: u64,
    ) -> io::Result<WalWriter<File>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        // Make the file's existence itself durable (a crash right after
        // the first append must find the file in the directory).
        sync_parent_dir(path)?;
        Ok(WalWriter {
            sink: file,
            policy,
            offset,
            records,
            fsyncs: 0,
            last_sync: Instant::now(),
        })
    }
}

impl<S: WalSink> WalWriter<S> {
    /// A writer over an arbitrary sink (fault-injection tests).
    pub fn with_sink(sink: S, policy: FsyncPolicy) -> WalWriter<S> {
        WalWriter {
            sink,
            policy,
            offset: 0,
            records: 0,
            fsyncs: 0,
            last_sync: Instant::now(),
        }
    }

    /// Serialize, frame, append, and sync (per policy) one record.
    /// Returns the record's start offset. The caller acks its client
    /// only after this returns `Ok` — that is the durability contract.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.append_payload(payload.as_bytes())
    }

    /// Frame, append, and sync (per policy) an already-serialized record
    /// payload. The caller guarantees `payload` is a JSON [`WalRecord`];
    /// replicas use this to append the primary's bytes verbatim, so the
    /// local log stays byte-identical to the shipped stream and byte
    /// offsets line up exactly across the pair.
    pub fn append_payload(&mut self, payload: &[u8]) -> io::Result<u64> {
        let frame = encode_frame(payload);
        let start = self.offset;
        self.sink.write_frame(&frame)?;
        self.offset += frame.len() as u64;
        self.records += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync_now()?,
            FsyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.sync_now()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(start)
    }

    /// Force a sync regardless of policy (snapshot barrier, drain).
    pub fn sync_now(&mut self) -> io::Result<()> {
        self.sink.sync()?;
        self.fsyncs += 1;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Bytes appended so far (the offset the next record starts at).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Records appended over the WAL's lifetime (valid prefix included).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Explicit syncs issued by this writer.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The sink back (tests inspect the bytes a [`FaultSink`] absorbed).
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<S: WalSink + Send + 'static> WalWriter<S> {
    /// Erase the sink type, preserving every counter. The service
    /// stores writers behind one field whether they sit on a real file
    /// or an injected fault sink.
    pub fn boxed(self) -> WalWriter<Box<dyn WalSink + Send>> {
        WalWriter {
            sink: Box::new(self.sink),
            policy: self.policy,
            offset: self.offset,
            records: self.records,
            fsyncs: self.fsyncs,
            last_sync: self.last_sync,
        }
    }
}

/// One decoded record and the offset its frame starts at.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedRecord {
    pub offset: u64,
    pub record: WalRecord,
}

/// A successful scan: the decodable records, the length of the valid
/// prefix, and how many torn-tail bytes follow it (0 for a clean log).
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    pub records: Vec<ScannedRecord>,
    /// Byte length of the valid prefix; recovery truncates the file to
    /// this before reopening it for append.
    pub valid_len: u64,
    /// Bytes past `valid_len` — a torn tail from a crash mid-append.
    pub truncated_bytes: u64,
}

/// Mid-log corruption: a record before the tail fails its checksum or
/// decode. Recovery refuses to boot on this — truncating here would
/// silently drop acked history.
#[derive(Debug, Clone, PartialEq)]
pub struct WalCorruption {
    /// Offset of the frame that failed.
    pub offset: u64,
    pub detail: String,
}

impl std::fmt::Display for WalCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WAL corrupt at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for WalCorruption {}

/// Decode `bytes` starting at `start` (a snapshot's embedded offset; 0
/// scans the whole log). See the module docs for the torn-tail vs.
/// corruption classification.
pub fn scan_from(bytes: &[u8], start: u64) -> Result<WalScan, WalCorruption> {
    let len = bytes.len() as u64;
    if start > len {
        // The snapshot claims more WAL than exists: the log was replaced
        // or truncated out from under it — unrecoverable ambiguity.
        return Err(WalCorruption {
            offset: start,
            detail: format!("snapshot expects {start} bytes of WAL, file has {len}"),
        });
    }
    let mut pos = start;
    let mut records = Vec::new();
    loop {
        let remaining = len - pos;
        if remaining == 0 {
            // Clean end.
            return Ok(WalScan {
                records,
                valid_len: pos,
                truncated_bytes: 0,
            });
        }
        if remaining < HEADER_LEN {
            // A header fragment: torn tail.
            return Ok(WalScan {
                records,
                valid_len: pos,
                truncated_bytes: remaining,
            });
        }
        let at = pos as usize;
        let record_len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let stored_crc =
            u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        if record_len > MAX_RECORD_LEN {
            // An absurd length is corruption wherever it sits — if it
            // were a torn header it would also run past EOF below, so
            // only in-bounds absurdities reach this check.
            if HEADER_LEN + record_len as u64 > remaining {
                return Ok(WalScan {
                    records,
                    valid_len: pos,
                    truncated_bytes: remaining,
                });
            }
            return Err(WalCorruption {
                offset: pos,
                detail: format!("record length {record_len} exceeds the {MAX_RECORD_LEN} cap"),
            });
        }
        let frame_len = HEADER_LEN + record_len as u64;
        if frame_len > remaining {
            // Payload runs past EOF: torn tail.
            return Ok(WalScan {
                records,
                valid_len: pos,
                truncated_bytes: remaining,
            });
        }
        let payload = &bytes[at + HEADER_LEN as usize..at + frame_len as usize];
        let ends_at_eof = pos + frame_len == len;
        let computed = crc32(payload);
        if computed != stored_crc {
            if ends_at_eof {
                // The final record's checksum fails: indistinguishable
                // from a crash that wrote garbage-then-header — torn.
                return Ok(WalScan {
                    records,
                    valid_len: pos,
                    truncated_bytes: remaining,
                });
            }
            return Err(WalCorruption {
                offset: pos,
                detail: format!(
                    "checksum mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
                ),
            });
        }
        let record: WalRecord = match std::str::from_utf8(payload)
            .ok()
            .and_then(|text| serde_json::from_str(text).ok())
        {
            Some(record) => record,
            None => {
                if ends_at_eof {
                    return Ok(WalScan {
                        records,
                        valid_len: pos,
                        truncated_bytes: remaining,
                    });
                }
                return Err(WalCorruption {
                    offset: pos,
                    detail: "checksummed payload is not a JSON WAL record".to_string(),
                });
            }
        };
        records.push(ScannedRecord {
            offset: pos,
            record,
        });
        pos += frame_len;
    }
}

/// [`scan_from`] the beginning.
pub fn scan(bytes: &[u8]) -> Result<WalScan, WalCorruption> {
    scan_from(bytes, 0)
}

/// The durable snapshot document a `--wal-dir` rotates: the full session
/// plus the WAL offset it was taken at, so recovery resumes from the
/// snapshot and replays only the WAL tail past `wal_offset`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDoc {
    /// Format version (this is version 1).
    pub version: u32,
    /// WAL byte length when the snapshot was cut; recovery replays
    /// records from here.
    pub wal_offset: u64,
    /// WAL record count at the cut (counters resume from it).
    pub wal_records: u64,
    /// Arranger epoch at the cut (= `log.len()`).
    pub epoch: u64,
    /// The pristine base instance the session was loaded with.
    pub base: Instance,
    /// The live (mutated) instance — the resume fast path, no replay.
    pub live: Instance,
    /// Mutations applied so far (provenance + the manual snapshot op's
    /// replay contract).
    pub log: Vec<Mutation>,
    /// The standing arrangement.
    pub arrangement: Arrangement,
    /// Its drift baseline.
    pub baseline: f64,
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// flush + fsync, rename over the target, fsync the directory. A crash
/// at any point leaves either the old file or the new one — never a torn
/// hybrid.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(path)
}

/// The temp-file name `atomic_write` stages under.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Serialize and atomically persist a snapshot document.
pub fn write_snapshot(path: &Path, doc: &SnapshotDoc) -> io::Result<()> {
    let mut json = serde_json::to_string(doc)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    json.push('\n');
    atomic_write(path, json.as_bytes())
}

/// Why a snapshot file could not be used. Recovery treats every variant
/// except `Missing` as "fall back to a full WAL replay" — a bad snapshot
/// must never block a boot the WAL alone can serve.
#[derive(Debug)]
pub enum SnapshotReadError {
    /// No snapshot file: first boot, or none rotated yet.
    Missing,
    Io(io::Error),
    /// Unparseable or wrong version (torn by an unclean copy, bit rot).
    Invalid {
        detail: String,
    },
}

impl std::fmt::Display for SnapshotReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotReadError::Missing => write!(f, "no snapshot file"),
            SnapshotReadError::Io(e) => write!(f, "reading snapshot: {e}"),
            SnapshotReadError::Invalid { detail } => write!(f, "invalid snapshot: {detail}"),
        }
    }
}

/// Load and validate a snapshot document.
pub fn read_snapshot(path: &Path) -> Result<SnapshotDoc, SnapshotReadError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(SnapshotReadError::Missing),
        Err(e) => return Err(SnapshotReadError::Io(e)),
    };
    let doc: SnapshotDoc = serde_json::from_str(&text).map_err(|e| SnapshotReadError::Invalid {
        detail: e.to_string(),
    })?;
    if doc.version != 1 {
        return Err(SnapshotReadError::Invalid {
            detail: format!("unsupported snapshot version {}", doc.version),
        });
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geacc_core::Side;

    fn mutation(i: u32) -> Mutation {
        Mutation::SetCapacity {
            side: Side::User,
            id: i,
            capacity: 2,
        }
    }

    fn records(n: u32) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord::Mutation {
                mutation: mutation(i),
            })
            .collect()
    }

    fn write_all(records: &[WalRecord]) -> Vec<u8> {
        let mut w = WalWriter::with_sink(FaultSink::new(usize::MAX), FsyncPolicy::Never);
        for r in records {
            w.append(r).unwrap();
        }
        w.into_sink().written
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("interval:abc").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        for p in ["always", "never", "interval:250"] {
            assert_eq!(FsyncPolicy::parse(p).unwrap().to_string(), p);
        }
    }

    #[test]
    fn append_then_scan_roundtrips() {
        let rs = records(5);
        let bytes = write_all(&rs);
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        let decoded: Vec<WalRecord> = scan.records.into_iter().map(|s| s.record).collect();
        assert_eq!(decoded, rs);
    }

    #[test]
    fn scan_from_offset_skips_the_prefix() {
        let rs = records(4);
        let bytes = write_all(&rs);
        let full = scan(&bytes).unwrap();
        let third = full.records[2].offset;
        let tail = scan_from(&bytes, third).unwrap();
        assert_eq!(tail.records.len(), 2);
        assert_eq!(tail.records[0].record, rs[2]);
        // An offset past EOF is ambiguity, not a tail.
        assert!(scan_from(&bytes, bytes.len() as u64 + 1).is_err());
    }

    #[test]
    fn torn_tails_truncate_at_every_cut_point() {
        let rs = records(3);
        let bytes = write_all(&rs);
        let full = scan(&bytes).unwrap();
        let second_start = full.records[1].offset;
        // Every truncation inside the second record must recover exactly
        // the first record and report the rest as a torn tail.
        for cut in second_start + 1..bytes.len() as u64 {
            let scan = scan(&bytes[..cut as usize]).unwrap_or_else(|e| {
                panic!("cut at {cut} must be a torn tail, got corruption: {e}")
            });
            let expect_records = full
                .records
                .iter()
                .filter(|s| s.offset + frame_len(&bytes, s.offset) <= cut)
                .count();
            assert_eq!(scan.records.len(), expect_records, "cut at {cut}");
            assert_eq!(scan.valid_len + scan.truncated_bytes, cut);
        }
    }

    fn frame_len(bytes: &[u8], offset: u64) -> u64 {
        let at = offset as usize;
        let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        HEADER_LEN + len as u64
    }

    #[test]
    fn bit_flip_mid_log_is_corruption_with_the_offset() {
        let rs = records(3);
        let bytes = write_all(&rs);
        let full = scan(&bytes).unwrap();
        let second_start = full.records[1].offset;
        // Flip a payload byte of the *middle* record: corruption.
        let mut bad = bytes.clone();
        let idx = (second_start + HEADER_LEN) as usize + 2;
        bad[idx] ^= 0x40;
        let err = scan(&bad).unwrap_err();
        assert_eq!(err.offset, second_start);
        assert!(err.detail.contains("checksum"), "{}", err.detail);
    }

    #[test]
    fn bit_flip_in_the_last_record_is_a_torn_tail() {
        let rs = records(3);
        let bytes = write_all(&rs);
        let full = scan(&bytes).unwrap();
        let last_start = full.records[2].offset;
        let mut bad = bytes.clone();
        let idx = (last_start + HEADER_LEN) as usize + 1;
        bad[idx] ^= 0x01;
        let scan = scan(&bad).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, last_start);
    }

    #[test]
    fn valid_json_but_wrong_shape_mid_log_is_corruption() {
        // A record whose payload checksums fine but is not a WalRecord.
        let bogus = encode_frame(b"{\"not\":\"a record\"}");
        let mut bytes = bogus.clone();
        bytes.extend_from_slice(&write_all(&records(1)));
        let err = scan(&bytes).unwrap_err();
        assert_eq!(err.offset, 0);
        // The same payload as the final record is a truncatable tail.
        let scan = scan(&bogus).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn fault_sink_crashes_exactly_on_budget() {
        let rs = records(4);
        let clean = write_all(&rs);
        // Crash after 1.5 records' worth of bytes.
        let frame0 = frame_len(&clean, 0);
        let budget = frame0 + frame_len(&clean, frame0) / 2;
        let mut w = WalWriter::with_sink(FaultSink::new(budget as usize), FsyncPolicy::Always);
        let mut acked = 0;
        for r in &rs {
            match w.append(r) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        assert_eq!(acked, 1);
        let bytes = w.into_sink().written;
        assert_eq!(
            bytes.len() as u64,
            budget,
            "short write stops at the budget"
        );
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.records.len(), acked);
        assert_eq!(scan.records[0].record, rs[0]);
    }

    #[test]
    fn fsync_policy_counts_syncs() {
        let mut always = WalWriter::with_sink(FaultSink::new(usize::MAX), FsyncPolicy::Always);
        let mut never = WalWriter::with_sink(FaultSink::new(usize::MAX), FsyncPolicy::Never);
        for r in records(5) {
            always.append(&r).unwrap();
            never.append(&r).unwrap();
        }
        assert_eq!(always.fsyncs(), 5);
        assert_eq!(never.fsyncs(), 0);
        never.sync_now().unwrap();
        assert_eq!(never.fsyncs(), 1);
        assert_eq!(always.records(), 5);
        assert_eq!(always.offset(), always.into_sink().written.len() as u64);
    }

    #[test]
    fn keyed_records_roundtrip_and_payload_append_is_byte_identical() {
        let keyed = WalRecord::KeyedMutation {
            client: "c-1".to_string(),
            seq: 7,
            mutation: mutation(0),
        };
        let mut direct = WalWriter::with_sink(FaultSink::new(usize::MAX), FsyncPolicy::Never);
        direct.append(&keyed).unwrap();
        let mut via_payload = WalWriter::with_sink(FaultSink::new(usize::MAX), FsyncPolicy::Never);
        let payload = serde_json::to_string(&keyed).unwrap();
        via_payload.append_payload(payload.as_bytes()).unwrap();
        let a = direct.into_sink().written;
        let b = via_payload.into_sink().written;
        assert_eq!(a, b, "replica-side payload append must mirror the primary");
        let scanned = scan(&a).unwrap();
        assert_eq!(scanned.records[0].record, keyed);
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("geacc-wal-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!tmp_path(&path).exists(), "no stray temp file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
