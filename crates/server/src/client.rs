//! A reusable retrying client for the line protocol.
//!
//! Backs both the CLI (`geacc promote`, ad-hoc ops) and the bench
//! loadgen. Handles per-request deadlines, reconnects on transport
//! errors, jittered exponential backoff on `overloaded` and connect
//! failures (a server `retry_after_ms` hint replaces the exponential
//! outright — the server knows its drain rate better than a guess
//! doubling does), and stamps
//! every mutation with a `(client_id, seq)` idempotency key so a retry
//! after an ambiguous failure cannot double-apply server-side.
//!
//! ## Topology awareness
//!
//! The client remembers its configured address as the **seed** and
//! treats the address it currently talks to as mutable cluster state:
//!
//! - A `read_only`, `stale_generation`, or `lease_lost` rejection
//!   carrying a `primary_hint` re-points the client at the hinted
//!   address immediately (no backoff) and the request is retried there.
//! - The same rejections without a usable hint — and any transport
//!   error — fall back to the seed address with backoff; during a
//!   failover the seed is often a replica that learns the winner first
//!   and redirects us.
//! - After every fresh connect the client pre-flights a `health` probe:
//!   if the node answers as a replica that knows its primary, the
//!   client follows the hint before sending the real request, so a
//!   mutation is never burned discovering topology.
//!
//! Combined with idempotency keys this makes a retry that straddles a
//! failover safe: the resent `(client_id, seq)` lands on the promoted
//! replica, whose dedup table (shipped via the WAL) suppresses the
//! double-apply.

use crate::protocol::{get, get_str, get_u64};
use serde_json::Value;
use std::fmt;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Tunables for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub connect_timeout: Duration,
    /// Overall per-logical-request deadline, across all retries.
    pub request_timeout: Duration,
    /// Maximum retry attempts after the first try.
    pub max_retries: u32,
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Seed for deterministic jitter.
    pub seed: u64,
    /// Idempotency namespace; `(client_id, seq)` keys mutations.
    pub client_id: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(5),
            max_retries: 8,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            seed: 0x2545_f491_4f6c_dd1d,
            client_id: format!("client-{}", std::process::id()),
        }
    }
}

/// Counters a caller can surface (loadgen reports these).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Logical requests issued.
    pub requests: u64,
    /// Individual resend attempts beyond each request's first try.
    pub retries: u64,
    /// Connections (re)established.
    pub reconnects: u64,
    /// Logical requests that exhausted retries or their deadline.
    pub failed: u64,
    /// Times the client re-pointed at another node (followed a
    /// `primary_hint` or fell back to the seed address).
    pub redirects: u64,
}

/// Why a logical request failed for good.
#[derive(Debug)]
pub enum ClientError {
    /// Transport gave out and retries were exhausted.
    Io(io::Error),
    /// The overall request deadline passed.
    Timeout,
    /// The server rejected the request with a non-retryable code.
    Rejected { code: String, message: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Timeout => write!(f, "request deadline exceeded"),
            ClientError::Rejected { code, message } => write!(f, "{code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A line-protocol client with retries, reconnects, and idempotent
/// mutations. Not thread-safe; one per worker thread.
pub struct RetryClient {
    /// Where requests currently go; follows `primary_hint` redirects.
    addr: String,
    /// The configured address — the fallback when the cluster moves out
    /// from under us and we have no better hint.
    seed_addr: String,
    config: ClientConfig,
    conn: Option<Conn>,
    /// Pre-flight the next fresh connection with a `health` probe
    /// before spending a real request on it.
    verify_role: bool,
    rng: u64,
    next_seq: u64,
    next_id: u64,
    stats: ClientStats,
}

enum Attempt {
    Ok(Value),
    /// Retry after at least this hint (server-provided), if any.
    Backoff(Option<u64>),
    Fatal(ClientError),
    Transport,
    /// The node cannot take this write; re-point at the hinted primary
    /// (or the seed, absent a hint) and retry. A fencing node may also
    /// attach `retry_after_ms` (how long until the cluster converges);
    /// it paces the fallback wait exactly like an overload hint.
    Redirect {
        primary: Option<String>,
        retry_after: Option<u64>,
    },
}

impl RetryClient {
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Self {
        let addr = addr.into();
        RetryClient {
            seed_addr: addr.clone(),
            addr,
            rng: config.seed | 1,
            config,
            conn: None,
            verify_role: false,
            next_seq: 1,
            next_id: 1,
            stats: ClientStats::default(),
        }
    }

    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    pub fn client_id(&self) -> &str {
        &self.config.client_id
    }

    /// The address requests currently go to (may differ from the
    /// configured seed after following redirects across a failover).
    pub fn current_addr(&self) -> &str {
        &self.addr
    }

    /// Issue a read-style request (safe to resend blindly). `body` must
    /// be an object with an `op`; an `id` is stamped in.
    pub fn call(&mut self, body: &Value) -> Result<Value, ClientError> {
        let line = self.stamp(body, None);
        self.dispatch(&line)
    }

    /// Issue a `mutate` carrying an idempotency key: retries resend the
    /// same `(client_id, seq)`, so the server applies at most once.
    pub fn mutate(&mut self, mutation: Value) -> Result<Value, ClientError> {
        let body = Value::Object(vec![
            ("op".to_string(), Value::String("mutate".to_string())),
            ("mutation".to_string(), mutation),
        ]);
        self.mutate_body(&body)
    }

    /// Like [`Self::mutate`] but the caller supplies the full body
    /// (must have `op: "mutate"`); the idempotency key is stamped in.
    pub fn mutate_body(&mut self, body: &Value) -> Result<Value, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = self.stamp(body, Some(seq));
        self.dispatch(&line)
    }

    /// Serialize with an `id` (and optionally the idempotency key).
    fn stamp(&mut self, body: &Value, seq: Option<u64>) -> String {
        let id = self.next_id;
        self.next_id += 1;
        let mut fields: Vec<(String, Value)> = match body {
            Value::Object(entries) => entries.clone(),
            other => vec![("op".to_string(), other.clone())],
        };
        fields.retain(|(k, _)| k != "id" && k != "client_id" && k != "seq");
        fields.push((
            "id".to_string(),
            serde_json::to_value(&id).unwrap_or(Value::Null),
        ));
        if let Some(seq) = seq {
            fields.push((
                "client_id".to_string(),
                Value::String(self.config.client_id.clone()),
            ));
            fields.push((
                "seq".to_string(),
                serde_json::to_value(&seq).unwrap_or(Value::Null),
            ));
        }
        let mut line = serde_json::to_string(&Value::Object(fields)).unwrap_or_default();
        line.push('\n');
        line
    }

    fn dispatch(&mut self, line: &str) -> Result<Value, ClientError> {
        self.stats.requests += 1;
        let deadline = Instant::now() + self.config.request_timeout;
        let mut attempts: u32 = 0;
        loop {
            if Instant::now() >= deadline {
                self.stats.failed += 1;
                return Err(ClientError::Timeout);
            }
            match self.try_once(line, deadline) {
                Attempt::Ok(data) => return Ok(data),
                Attempt::Fatal(e) => {
                    self.stats.failed += 1;
                    return Err(e);
                }
                Attempt::Backoff(hint) => {
                    if attempts >= self.config.max_retries {
                        self.stats.failed += 1;
                        return Err(ClientError::Timeout);
                    }
                    attempts += 1;
                    self.stats.retries += 1;
                    self.sleep_backoff(attempts, hint, deadline);
                }
                Attempt::Transport => {
                    self.conn = None;
                    if attempts >= self.config.max_retries {
                        self.stats.failed += 1;
                        return Err(ClientError::Io(io::Error::new(
                            ErrorKind::BrokenPipe,
                            "retries exhausted",
                        )));
                    }
                    // The node we were on may be gone for good (a killed
                    // primary); re-resolve from the seed, whose health
                    // probe will redirect us to whoever got promoted.
                    if self.addr != self.seed_addr {
                        self.addr = self.seed_addr.clone();
                        self.stats.redirects += 1;
                    }
                    self.verify_role = true;
                    attempts += 1;
                    self.stats.retries += 1;
                    self.sleep_backoff(attempts, None, deadline);
                }
                Attempt::Redirect {
                    primary,
                    retry_after,
                } => {
                    self.conn = None;
                    if attempts >= self.config.max_retries {
                        self.stats.failed += 1;
                        return Err(ClientError::Timeout);
                    }
                    attempts += 1;
                    self.stats.retries += 1;
                    match primary {
                        // A fresh hint pointing elsewhere: follow it
                        // immediately, no backoff — the hinted node is
                        // (claimed to be) ready right now.
                        Some(h) if h != self.addr => {
                            self.addr = h;
                            self.verify_role = true;
                            self.stats.redirects += 1;
                        }
                        // Hint is where we already are (or absent): the
                        // cluster is still converging. Fall back to the
                        // seed, pacing the wait on the server's
                        // `retry_after_ms` when it sent one.
                        _ => {
                            if self.addr != self.seed_addr {
                                self.addr = self.seed_addr.clone();
                                self.stats.redirects += 1;
                            }
                            self.verify_role = true;
                            self.sleep_backoff(attempts, retry_after, deadline);
                        }
                    }
                }
            }
        }
    }

    fn try_once(&mut self, line: &str, deadline: Instant) -> Attempt {
        if self.conn.is_none() {
            match self.open() {
                Ok(conn) => {
                    self.conn = Some(conn);
                    self.stats.reconnects += 1;
                }
                Err(_) => return Attempt::Transport,
            }
            if self.verify_role {
                if let Some(attempt) = self.preflight(deadline) {
                    return attempt;
                }
            }
        }
        let Some(conn) = self.conn.as_mut() else {
            return Attempt::Transport;
        };
        if conn
            .writer
            .write_all(line.as_bytes())
            .and_then(|_| conn.writer.flush())
            .is_err()
        {
            return Attempt::Transport;
        }
        let mut response = String::new();
        loop {
            if Instant::now() >= deadline {
                // Abandon the connection: a late response on it would
                // desynchronize request/response pairing.
                self.conn = None;
                return Attempt::Fatal(ClientError::Timeout);
            }
            response.clear();
            match conn.reader.read_line(&mut response) {
                Ok(0) => return Attempt::Transport,
                Ok(_) => break,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue
                }
                Err(_) => return Attempt::Transport,
            }
        }
        let envelope: Value = match serde_json::from_str(&response) {
            Ok(v) => v,
            Err(_) => return Attempt::Transport,
        };
        match get(&envelope, "ok") {
            Some(Value::Bool(true)) => {
                let data = get(&envelope, "data").cloned().unwrap_or(Value::Null);
                Attempt::Ok(data)
            }
            Some(Value::Bool(false)) => {
                let error = get(&envelope, "error");
                let code = error.and_then(|e| get_str(e, "code")).unwrap_or("internal");
                match code {
                    "overloaded" => {
                        let hint = error.and_then(|e| get_u64(e, "retry_after_ms"));
                        Attempt::Backoff(hint)
                    }
                    "shutting_down" => Attempt::Backoff(None),
                    // The node can't take this request but the cluster
                    // as a whole can: follow its hint to the primary,
                    // keeping any pacing hint alongside it.
                    "read_only" | "stale_generation" | "lease_lost" => Attempt::Redirect {
                        primary: error
                            .and_then(|e| get_str(e, "primary_hint"))
                            .map(str::to_string),
                        retry_after: error.and_then(|e| get_u64(e, "retry_after_ms")),
                    },
                    _ => Attempt::Fatal(ClientError::Rejected {
                        code: code.to_string(),
                        message: error
                            .and_then(|e| get_str(e, "message"))
                            .unwrap_or("")
                            .to_string(),
                    }),
                }
            }
            _ => Attempt::Transport,
        }
    }

    /// One `health` round trip on a fresh connection: if the node
    /// answers as a replica that knows its primary, return a redirect
    /// so the real request is never burned discovering topology.
    /// Returns `None` when the node is fine to use as-is.
    fn preflight(&mut self, deadline: Instant) -> Option<Attempt> {
        let Some(conn) = self.conn.as_mut() else {
            return Some(Attempt::Transport);
        };
        if conn
            .writer
            .write_all(b"{\"op\":\"health\",\"id\":0}\n")
            .and_then(|_| conn.writer.flush())
            .is_err()
        {
            return Some(Attempt::Transport);
        }
        let mut response = String::new();
        loop {
            if Instant::now() >= deadline {
                self.conn = None;
                return Some(Attempt::Fatal(ClientError::Timeout));
            }
            response.clear();
            match conn.reader.read_line(&mut response) {
                Ok(0) => return Some(Attempt::Transport),
                Ok(_) => break,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue
                }
                Err(_) => return Some(Attempt::Transport),
            }
        }
        let envelope: Value = match serde_json::from_str(&response) {
            Ok(v) => v,
            Err(_) => return Some(Attempt::Transport),
        };
        self.verify_role = false;
        if let Some(data) = get(&envelope, "data") {
            if get_str(data, "role") == Some("replica") {
                if let Some(hint) = get_str(data, "primary_hint") {
                    if hint != self.addr {
                        return Some(Attempt::Redirect {
                            primary: Some(hint.to_string()),
                            retry_after: None,
                        });
                    }
                }
            }
        }
        None
    }

    fn open(&self) -> io::Result<Conn> {
        let addrs: Vec<SocketAddr> = self.addr.to_socket_addrs()?.collect();
        let addr = addrs
            .first()
            .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(addr, self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn {
            reader,
            writer: stream,
        })
    }

    fn sleep_backoff(&mut self, attempt: u32, hint: Option<u64>, deadline: Instant) {
        // An explicit `retry_after_ms` takes precedence over the
        // generic exponential: the server measured how long it needs,
        // so the first retry waits exactly that (plus upward jitter to
        // spread a retry herd) — whether it is shorter or longer than
        // the exponential would have been. Consecutive rejections
        // double the hint, because a repeat means the server's own
        // estimate was optimistic; the cap still bounds escalation
        // unless the hint itself is larger.
        let cap = self.config.backoff_cap.as_millis() as u64;
        let ms = match hint {
            Some(h) => {
                let h = h.max(1);
                let scaled = h
                    .saturating_mul(1u64 << attempt.saturating_sub(1).min(5))
                    .min(cap.max(h));
                scaled + self.roll() % (h / 2 + 1)
            }
            None => {
                let base = self.config.backoff_base.as_millis() as u64;
                let exp = base.saturating_mul(1u64 << attempt.min(5)).min(cap).max(1);
                exp / 2 + self.roll() % (exp / 2 + 1)
            }
        };
        let wait = Duration::from_millis(ms);
        let remaining = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(wait.min(remaining));
    }

    fn roll(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn stamp_injects_id_and_idempotency_key() {
        let mut client = RetryClient::new(
            "127.0.0.1:1",
            ClientConfig {
                client_id: "c-test".to_string(),
                ..ClientConfig::default()
            },
        );
        let body = json!({"op": "mutate", "mutation": {"x": 1}});
        let line = client.stamp(&body, Some(7));
        let v: Value = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(get_str(&v, "op"), Some("mutate"));
        assert_eq!(get_str(&v, "client_id"), Some("c-test"));
        assert_eq!(get_u64(&v, "seq"), Some(7));
        assert!(get_u64(&v, "id").is_some());

        let read = client.stamp(&json!({"op": "stats"}), None);
        let v: Value = serde_json::from_str(read.trim()).unwrap();
        assert!(get(&v, "client_id").is_none());
    }

    #[test]
    fn mutate_increments_seq_once_per_logical_call() {
        let mut client = RetryClient::new("127.0.0.1:1", ClientConfig::default());
        assert_eq!(client.next_seq, 1);
        // The call fails (nothing listening) but must consume one seq.
        let config_retries = client.config.max_retries;
        client.config.max_retries = 0;
        client.config.request_timeout = Duration::from_millis(50);
        let _ = client.mutate(json!({"AddConflict": {"a": 0, "b": 1}}));
        assert_eq!(client.next_seq, 2);
        assert_eq!(client.stats().failed, 1);
        client.config.max_retries = config_retries;
    }

    #[test]
    fn backoff_respects_hint_floor() {
        let mut client = RetryClient::new("127.0.0.1:1", ClientConfig::default());
        let start = Instant::now();
        client.sleep_backoff(1, Some(30), start + Duration::from_secs(2));
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn hint_overrides_the_exponential_in_both_directions() {
        // A small hint beats a large exponential: at attempt 5 the
        // generic backoff would be >= cap/2 = 250 ms, but a 5 ms hint
        // must pace the wait (5..=7 ms + scheduling slop), not the
        // exponential.
        let mut client = RetryClient::new("127.0.0.1:1", ClientConfig::default());
        let start = Instant::now();
        client.sleep_backoff(5, Some(5), start + Duration::from_secs(2));
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "hint should shorten the wait, slept {:?}",
            start.elapsed()
        );

        // And a hint larger than the exponential still floors it: at
        // attempt 1 the generic backoff is at most 40 ms, a 120 ms hint
        // must stretch the wait past it.
        let start = Instant::now();
        client.sleep_backoff(1, Some(120), start + Duration::from_secs(2));
        assert!(start.elapsed() >= Duration::from_millis(120));
    }
}
