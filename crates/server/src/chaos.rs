//! A deterministic in-process chaos proxy for the line protocol.
//!
//! Sits between a client (or replica) and a server, forwarding
//! newline-delimited traffic while injecting faults from a seeded
//! plan: per-line drop/duplicate/delay rolls, a hard partition switch,
//! and a deterministic cut trigger that kills the connection right
//! before the Nth line matching a needle — which is how the failover
//! tests sweep "crash at every record boundary" without racing a real
//! kill.
//!
//! Everything is std-only and line-oriented; binary traffic is not
//! supported (the protocol is newline-delimited JSON throughout).

use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault policy for one direction of a connection. Percentages are
/// rolled per line with a seeded xorshift, so a given (seed, traffic)
/// pair always faults identically.
#[derive(Debug, Clone, Default)]
pub struct LinePolicy {
    /// Chance (0–100) a line is silently dropped.
    pub drop_pct: u8,
    /// Chance (0–100) a line is forwarded twice.
    pub dup_pct: u8,
    /// Chance (0–100) a line is delayed by `delay_ms` before forwarding.
    pub delay_pct: u8,
    pub delay_ms: u64,
    /// Deterministic cut: forward lines until `count` lines containing
    /// `needle` have passed, then kill the connection *before*
    /// forwarding the next matching line. The budget is shared across
    /// every connection in this direction, so a client that reconnects
    /// after the cut still cannot get a line past it — exactly the
    /// "primary died at record boundary k" shape the failover sweep
    /// needs.
    pub cut_after_matching: Option<(String, u64)>,
    /// Deterministic targeted delay: every line containing the needle
    /// is held for the given milliseconds before forwarding. Unlike
    /// `delay_pct` this hits *specific* traffic (e.g. heartbeat pings)
    /// on every line — how the lease tests make a healthy-but-slow
    /// primary look dead to its followers.
    pub delay_matching: Option<(String, u64)>,
}

/// A full chaos plan: one policy per direction plus the jitter seed.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    pub seed: u64,
    pub client_to_server: LinePolicy,
    pub server_to_client: LinePolicy,
}

struct ConnHandle {
    kill: Arc<AtomicBool>,
}

/// The running proxy. Dropping it stops the accept loop and severs all
/// connections.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    accepted: Arc<AtomicUsize>,
    accept_handle: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and start proxying to `upstream`.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let partitioned = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::new(Mutex::new(Vec::new()));
        let accepted = Arc::new(AtomicUsize::new(0));
        // One shared cut budget per direction, so reconnects keep
        // counting where the severed connection left off.
        let cut_counts = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];

        let accept_stop = Arc::clone(&stop);
        let accept_partitioned = Arc::clone(&partitioned);
        let accept_conns = Arc::clone(&conns);
        let accept_counter = Arc::clone(&accepted);
        let accept_cuts = [Arc::clone(&cut_counts[0]), Arc::clone(&cut_counts[1])];
        let accept_handle = std::thread::spawn(move || {
            loop {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((downstream, _)) => {
                        if accept_partitioned.load(Ordering::SeqCst) {
                            let _ = downstream.shutdown(Shutdown::Both);
                            continue;
                        }
                        let index = accept_counter.fetch_add(1, Ordering::SeqCst);
                        let kill = Arc::new(AtomicBool::new(false));
                        {
                            let mut guard = lock(&accept_conns);
                            guard.push(ConnHandle {
                                kill: Arc::clone(&kill),
                            });
                        }
                        if pump_pair(
                            downstream,
                            upstream,
                            &plan,
                            index,
                            Arc::clone(&accept_stop),
                            kill,
                            [Arc::clone(&accept_cuts[0]), Arc::clone(&accept_cuts[1])],
                        )
                        .is_err()
                        {
                            // Upstream refused; downstream was shut in
                            // pump_pair's error path.
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            }
        });

        Ok(ChaosProxy {
            addr,
            stop,
            partitioned,
            conns,
            accepted,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total connections accepted so far.
    pub fn connections(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Partition on: refuse new connections and sever existing ones.
    /// Partition off: allow new connections again.
    pub fn partition(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst);
        if on {
            let mut guard = lock(&self.conns);
            for conn in guard.drain(..) {
                conn.kill.store(true, Ordering::SeqCst);
            }
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.partition(true);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wire one accepted downstream connection to a fresh upstream one and
/// start the two pump threads. Detached: they exit when either side
/// closes, the kill flag trips, or the proxy stops.
fn pump_pair(
    downstream: TcpStream,
    upstream_addr: SocketAddr,
    plan: &ChaosPlan,
    index: usize,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    cut_counts: [Arc<AtomicU64>; 2],
) -> std::io::Result<()> {
    let upstream = match TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(1)) {
        Ok(s) => s,
        Err(e) => {
            let _ = downstream.shutdown(Shutdown::Both);
            return Err(e);
        }
    };
    downstream.set_nodelay(true).ok();
    upstream.set_nodelay(true).ok();

    let d_read = downstream.try_clone()?;
    let u_read = upstream.try_clone()?;

    const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
    let c2s_seed = plan.seed ^ (index as u64).wrapping_mul(PHI) ^ 1;
    let s2c_seed = plan.seed ^ (index as u64).wrapping_mul(PHI) ^ 2;

    let c2s_policy = plan.client_to_server.clone();
    let s2c_policy = plan.server_to_client.clone();

    let c2s_stop = Arc::clone(&stop);
    let c2s_kill = Arc::clone(&kill);
    let c2s_down = downstream.try_clone()?;
    let c2s_up = upstream.try_clone()?;
    let [c2s_cut, s2c_cut] = cut_counts;
    std::thread::spawn(move || {
        pump(
            d_read,
            c2s_up,
            &c2s_policy,
            c2s_seed,
            &c2s_stop,
            &c2s_kill,
            &c2s_cut,
        );
        // Either direction dying severs both sockets so the partner
        // pump unblocks too.
        let _ = c2s_down.shutdown(Shutdown::Both);
        let _ = upstream.shutdown(Shutdown::Both);
    });
    std::thread::spawn(move || {
        pump(
            u_read,
            downstream,
            &s2c_policy,
            s2c_seed,
            &stop,
            &kill,
            &s2c_cut,
        );
    });
    Ok(())
}

/// Forward lines from `from` to `to`, applying the policy.
fn pump(
    from: TcpStream,
    mut to: TcpStream,
    policy: &LinePolicy,
    seed: u64,
    stop: &Arc<AtomicBool>,
    kill: &Arc<AtomicBool>,
    cut_count: &Arc<AtomicU64>,
) {
    from.set_read_timeout(Some(Duration::from_millis(100))).ok();
    let mut reader = BufReader::new(from);
    let mut rng = seed | 1;
    let mut partial: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) || kill.load(Ordering::SeqCst) {
            sever(&reader, &to);
            return;
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                sever(&reader, &to);
                return;
            }
            Ok(_) => {
                partial.push(byte[0]);
                if byte[0] != b'\n' {
                    continue;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => {
                sever(&reader, &to);
                return;
            }
        }
        let line = std::mem::take(&mut partial);
        let text = String::from_utf8_lossy(&line);

        if let Some((needle, count)) = &policy.cut_after_matching {
            if text.contains(needle.as_str()) && cut_count.fetch_add(1, Ordering::SeqCst) >= *count
            {
                // The cut: kill both directions before this line. The
                // shared counter is already past the budget, so every
                // later matching line (on any connection) cuts too.
                kill.store(true, Ordering::SeqCst);
                sever(&reader, &to);
                return;
            }
        }

        if let Some((needle, delay_ms)) = &policy.delay_matching {
            if text.contains(needle.as_str()) {
                std::thread::sleep(Duration::from_millis(*delay_ms));
            }
        }

        let roll = (xorshift(&mut rng) % 100) as u8;
        if roll < policy.drop_pct {
            continue;
        }
        let delayed = roll < policy.drop_pct.saturating_add(policy.delay_pct);
        if delayed {
            std::thread::sleep(Duration::from_millis(policy.delay_ms));
        }
        if to.write_all(&line).and_then(|_| to.flush()).is_err() {
            sever(&reader, &to);
            return;
        }
        let dup_roll = (xorshift(&mut rng) % 100) as u8;
        if dup_roll < policy.dup_pct && to.write_all(&line).and_then(|_| to.flush()).is_err() {
            sever(&reader, &to);
            return;
        }
    }
}

fn sever(reader: &BufReader<TcpStream>, to: &TcpStream) {
    let _ = reader.get_ref().shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// An echo server that prefixes lines with "echo:". Detached: the
    /// accept thread dies with the test process (joining it would race
    /// against proxy teardown dropping in-flight lines).
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let mut writer = stream.try_clone().unwrap();
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if writer
                        .write_all(format!("echo:{line}\n").as_bytes())
                        .is_err()
                    {
                        break;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn clean_plan_forwards_transparently() {
        let addr = echo_server();
        let proxy = ChaosProxy::spawn(addr, ChaosPlan::default()).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "echo:hello");
        assert_eq!(proxy.connections(), 1);
    }

    #[test]
    fn cut_after_matching_kills_before_the_nth_match() {
        let addr = echo_server();
        let plan = ChaosPlan {
            client_to_server: LinePolicy {
                cut_after_matching: Some(("ping".to_string(), 2)),
                ..LinePolicy::default()
            },
            ..ChaosPlan::default()
        };
        let proxy = ChaosProxy::spawn(addr, plan).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        // Two matching lines pass…
        for _ in 0..2 {
            stream.write_all(b"ping\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "echo:ping");
        }
        // …a non-matching line also passes…
        stream.write_all(b"other\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "echo:other");
        // …the third match severs the connection before forwarding.
        stream.write_all(b"ping\n").ok();
        line.clear();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "connection should be cut, got {line:?}");
        // A new connection forwards non-matching lines, but the cut
        // budget is global: another matching line cuts again.
        let mut stream2 = TcpStream::connect(proxy.addr()).unwrap();
        stream2.write_all(b"again\n").unwrap();
        let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
        let mut line2 = String::new();
        reader2.read_line(&mut line2).unwrap();
        assert_eq!(line2.trim(), "echo:again");
        stream2.write_all(b"ping\n").ok();
        line2.clear();
        let n = reader2.read_line(&mut line2).unwrap_or(0);
        assert_eq!(n, 0, "cut budget is shared across connections");
    }

    #[test]
    fn delay_matching_holds_only_matching_lines() {
        let addr = echo_server();
        let plan = ChaosPlan {
            client_to_server: LinePolicy {
                delay_matching: Some(("slow".to_string(), 120)),
                ..LinePolicy::default()
            },
            ..ChaosPlan::default()
        };
        let proxy = ChaosProxy::spawn(addr, plan).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        let start = std::time::Instant::now();
        stream.write_all(b"fast\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "echo:fast");
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "non-matching line should not be delayed"
        );

        let start = std::time::Instant::now();
        stream.write_all(b"slow ping\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "echo:slow ping");
        assert!(
            start.elapsed() >= Duration::from_millis(120),
            "matching line should be held for the full delay"
        );
    }

    #[test]
    fn partition_refuses_and_severs() {
        let addr = echo_server();
        let proxy = ChaosProxy::spawn(addr, ChaosPlan::default()).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        proxy.partition(true);
        // Existing connection dies.
        line.clear();
        stream.write_all(b"post-partition\n").ok();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0);
        // New connections are refused (accepted then shut immediately).
        let probe = TcpStream::connect(proxy.addr()).unwrap();
        let mut probe_reader = BufReader::new(probe.try_clone().unwrap());
        let mut probe_line = String::new();
        let n = probe_reader.read_line(&mut probe_line).unwrap_or(0);
        assert_eq!(n, 0);
        // Heal and reconnect.
        proxy.partition(false);
        let mut stream2 = TcpStream::connect(proxy.addr()).unwrap();
        stream2.write_all(b"back\n").unwrap();
        let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
        let mut line2 = String::new();
        reader2.read_line(&mut line2).unwrap();
        assert_eq!(line2.trim(), "echo:back");
    }
}
