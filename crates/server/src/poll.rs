//! A vendored `poll(2)` shim: readiness notification for the event
//! loop without taking a dependency on the `libc` crate (the server is
//! std-only by policy).
//!
//! `poll` has been in POSIX since 2001 with a stable ABI — three
//! `i16`/`i32` fields per descriptor — so declaring the symbol directly
//! is as safe as linking `libc` would be, and `std::os::fd::RawFd`
//! gives us the descriptor type. Only the three readiness bits the
//! event loop uses are exposed; everything else stays behind
//! [`PollFd::revents`] for callers that care.

use std::io;
use std::os::fd::RawFd;

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is invalid (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's poll registration, ABI-compatible with
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The descriptor is readable (or in an error/hangup state the
    /// read path must observe to learn about).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// The descriptor is writable (or errored; a write will surface it).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Wait until a registered descriptor is ready or `timeout_ms` passes
/// (`-1` blocks indefinitely). Returns the number of descriptors with
/// non-zero `revents`. `EINTR` is retried internally — signal delivery
/// is not an event the loop distinguishes from a timeout.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs, and `len()` bounds it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reports_readable_and_writable_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();

        // Nothing sent yet: `b` is not readable, both are writable.
        let mut fds = [
            PollFd::new(b.as_raw_fd(), POLLIN),
            PollFd::new(a.as_raw_fd(), POLLOUT),
        ];
        let ready = poll_fds(&mut fds, 0).unwrap();
        assert!(ready >= 1);
        assert!(!fds[0].readable());
        assert!(fds[1].writable());

        // After a write, `b` becomes readable (allow the loopback a
        // beat via the poll timeout itself).
        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn empty_set_times_out_cleanly() {
        assert_eq!(poll_fds(&mut [], 0).unwrap(), 0);
    }
}
