//! The TCP daemon: accept loop, per-connection readers, a bounded job
//! queue, and a fixed worker pool.
//!
//! ## Threading model
//!
//! ```text
//! accept loop ──spawns──▶ reader (1 per connection)
//!                           │  parse line → Job
//!                           ▼  try_send
//!                    bounded sync_channel(queue_depth)
//!                           │  recv
//!                           ▼
//!                    worker pool (N threads) ──▶ Service::handle
//!                           │
//!                           ▼  response line → the connection's writer
//! ```
//!
//! ## Backpressure and admission control
//!
//! The queue is a `sync_channel` of fixed depth. Readers **never block**
//! on it: a full queue fails `try_send` immediately and the reader
//! answers `{"error": {"code": "overloaded"}}` itself, so an overloaded
//! server keeps its memory bounded and its rejections structured instead
//! of stalling accepts or buffering without limit. Each admitted request
//! carries a deadline (`default_timeout_ms`, or the request's own
//! `timeout_ms`); a worker that dequeues an already-expired job answers
//! `deadline_exceeded` without doing the work.
//!
//! ## Shutdown
//!
//! The `shutdown` op raises a shared stop flag. The accept loop polls it
//! between non-blocking accepts; readers poll it on their socket read
//! timeout; workers drain the queue until every reader (and the accept
//! loop's own sender) has hung up. `run` then joins everything and
//! returns the final [`MetricsSnapshot`], which the CLI prints — no
//! request is abandoned mid-flight.

use crate::metrics::{MetricsSnapshot, Op, ServerMetrics};
use crate::protocol::{self, ServiceError};
use crate::recovery;
use crate::repl;
use crate::service::Service;
use crate::wal::FsyncPolicy;
use geacc_core::parallel::Threads;
use geacc_core::DynamicConfig;
use std::io::{BufRead, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration (the CLI's `serve` flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, CI smoke).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue depth between readers and workers; the admission
    /// limit.
    pub queue_depth: usize,
    /// Deadline for requests that do not set their own `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Thread budget for budgeted `solve` pipelines.
    pub solve_threads: Threads,
    /// `rebuild_drift_ratio` for the managed arranger.
    pub drift_ratio: f64,
    /// Durability directory (WAL + rotated snapshot); `None` serves
    /// purely in memory.
    pub wal_dir: Option<PathBuf>,
    /// When appended WAL records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Auto-snapshot cadence in mutations; `None` never rotates (the
    /// WAL alone carries recovery).
    pub snapshot_every: Option<u64>,
    /// Serve `replicate` handshakes (stream the WAL to followers).
    /// Requires `wal_dir`.
    pub accept_replicas: bool,
    /// Follow this `host:port` as a read-only replica. Requires
    /// `wal_dir`.
    pub replica_of: Option<String>,
    /// The `retry_after_ms` hint attached to `overloaded` rejections.
    pub retry_after_ms: u64,
    /// Run the failover supervisor (lease monitoring, automatic
    /// promotion/demotion). Requires `wal_dir`; on a primary it
    /// implies `accept_replicas` must be set.
    pub supervise: bool,
    /// Heartbeat cadence for the lease protocol.
    pub lease_interval_ms: u64,
    /// Missed intervals before the primary fences itself; replicas
    /// wait two more before electing.
    pub missed_leases: u32,
    /// Election tiebreak identity; defaults to a hash of the advertise
    /// address. Must be unique across the cluster.
    pub node_id: Option<u64>,
    /// Client-facing address handed out as `primary_hint`; defaults to
    /// the bound listener address.
    pub advertise: Option<String>,
    /// Client-facing addresses of the other cluster members, probed
    /// during elections and fence checks.
    pub peers: Vec<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".to_string(),
            workers: 4,
            queue_depth: 64,
            default_timeout_ms: 5000,
            solve_threads: Threads::from_env(),
            drift_ratio: 0.2,
            wal_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: None,
            accept_replicas: false,
            replica_of: None,
            retry_after_ms: 25,
            supervise: false,
            lease_interval_ms: 500,
            missed_leases: 3,
            node_id: None,
            advertise: None,
            peers: Vec::new(),
        }
    }
}

/// One admitted request travelling from a reader to a worker.
struct Job {
    request: protocol::Request,
    /// Admission time; latency is measured from here, and the deadline
    /// is anchored to it so queue time counts against the budget.
    received: Instant,
    deadline: Instant,
    writer: Arc<Mutex<TcpStream>>,
}

/// A bound listener ready to serve. Created with [`Server::bind`], run
/// to completion with [`Server::run`].
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    /// One human-readable line describing what startup recovery found
    /// (`None` without a `--wal-dir`); the CLI prints it at boot.
    recovery_summary: Option<String>,
    /// One line describing the replication role (`None` when
    /// replication is off); the CLI prints it at boot.
    replication_summary: Option<String>,
}

/// How often blocked loops (accept, reader) wake to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);
/// Socket read timeout for readers; bounds how long shutdown waits on an
/// idle connection.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

impl Server {
    /// Bind the listener and assemble the service. With a `wal_dir`,
    /// this is where crash recovery happens: the WAL (and snapshot) are
    /// replayed into the service and the writer is armed at the
    /// validated offset — a corrupt log refuses the bind with a
    /// structured error naming the bad byte offset. No thread starts
    /// until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::default());
        let service = Arc::new(Service::new(
            Arc::clone(&metrics),
            Arc::clone(&stop),
            config.solve_threads,
            config.drift_ratio,
        ));
        let mut recovery_summary = None;
        if let Some(dir) = &config.wal_dir {
            let rec = recovery::recover(
                dir,
                DynamicConfig {
                    rebuild_drift_ratio: config.drift_ratio,
                },
            )
            .map_err(recovery::RecoveryError::into_io)?;
            let writer = recovery::open_writer(dir, config.fsync, &rec)?;
            recovery_summary = Some(format!(
                "recovered {} WAL record(s) ({} replayed, {} skipped, {} torn byte(s) truncated){} from {}",
                rec.wal_records,
                rec.replayed,
                rec.skipped,
                rec.truncated_bytes,
                match rec.snapshot_epoch {
                    Some(epoch) => format!(" via snapshot at epoch {epoch}"),
                    None => String::new(),
                },
                dir.display(),
            ));
            service.install_recovered(
                rec,
                writer,
                dir.clone(),
                config.fsync,
                config.snapshot_every,
            );
        }
        service.init_replication(config.accept_replicas, config.replica_of.is_some())?;
        // Topology is tracked even unsupervised: a plain replica knows
        // its upstream and hands it out as `primary_hint` so a client
        // misconfigured to point at the replica self-corrects.
        if let Some(primary) = &config.replica_of {
            service.supervision().set_upstream(Some(primary.clone()));
        }
        if config.supervise {
            if config.wal_dir.is_none() {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    "supervision requires a --wal-dir (failover ships the WAL)",
                ));
            }
            if config.replica_of.is_none() && !config.accept_replicas {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    "a supervised primary must accept replicas (--accept-replicas); \
                     a lease with no followers protects nothing",
                ));
            }
            let advertise = match &config.advertise {
                Some(addr) => addr.clone(),
                None => listener.local_addr()?.to_string(),
            };
            let node_id = config
                .node_id
                .unwrap_or_else(|| fnv1a(advertise.as_bytes()));
            service.begin_supervision(&crate::supervisor::SupervisorConfig {
                lease_interval: Duration::from_millis(config.lease_interval_ms.max(1)),
                missed_leases: config.missed_leases,
                node_id,
                advertise,
                peers: config.peers.clone(),
            });
        }
        let supervised_note = if config.supervise {
            ", supervised (auto-failover)"
        } else {
            ""
        };
        let replication_summary = if let Some(primary) = &config.replica_of {
            Some(format!(
                "replicating from {primary} (generation {}){supervised_note}",
                service.replication().generation()
            ))
        } else if config.accept_replicas {
            Some(format!(
                "accepting replicas (generation {}){supervised_note}",
                service.replication().generation()
            ))
        } else {
            None
        };
        Ok(Server {
            listener,
            config,
            service,
            stop,
            recovery_summary,
            replication_summary,
        })
    }

    /// What startup recovery found, for the boot log line (`None`
    /// without a `wal_dir`).
    pub fn recovery_summary(&self) -> Option<&str> {
        self.recovery_summary.as_deref()
    }

    /// The replication role line for the boot log (`None` when
    /// replication is off).
    pub fn replication_summary(&self) -> Option<&str> {
        self.replication_summary.as_deref()
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the stop flag, for embedding callers (tests, the
    /// load generator) that stop the server without a `shutdown` op.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serve until the stop flag rises, drain every in-flight request,
    /// join all threads, and return the final metrics.
    pub fn run(self) -> std::io::Result<MetricsSnapshot> {
        let workers = self.config.workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(self.config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&self.service);
            worker_handles.push(std::thread::spawn(move || worker_loop(&rx, &service)));
        }

        // The follower thread: connects out to the primary, applies the
        // shipped stream, reconnects with backoff until promoted. A
        // supervised node keeps this thread alive even when it boots as
        // a primary: if it is ever demoted it starts following whatever
        // upstream the supervisor points it at.
        let replica_handle =
            if self.config.replica_of.is_some() || self.service.supervision().enabled() {
                let primary = self.config.replica_of.clone();
                let service = Arc::clone(&self.service);
                let stop = Arc::clone(&self.stop);
                Some(std::thread::spawn(move || {
                    repl::run_replica_loop(service, primary, stop, 0x9e37_79b9_7f4a_7c15);
                }))
            } else {
                None
            };

        // The lease monitor: renews/watches heartbeats and drives the
        // promotion / fencing / demotion state machine.
        let supervisor_handle = if self.service.supervision().enabled() {
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&self.stop);
            Some(std::thread::spawn(move || {
                crate::supervisor::run_supervisor(service, stop);
            }))
        } else {
            None
        };

        self.listener.set_nonblocking(true)?;
        let retry_after_ms = self.config.retry_after_ms;
        let mut reader_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Responses are single short writes; leaving Nagle on
                    // costs a delayed-ACK round trip (~40 ms) per line.
                    let _ = stream.set_nodelay(true);
                    self.service.metrics.record_connection();
                    let tx = tx.clone();
                    let service = Arc::clone(&self.service);
                    let stop = Arc::clone(&self.stop);
                    let default_timeout = Duration::from_millis(self.config.default_timeout_ms);
                    reader_handles.push(std::thread::spawn(move || {
                        reader_loop(
                            stream,
                            &tx,
                            &service,
                            &stop,
                            default_timeout,
                            retry_after_ms,
                        );
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            reader_handles.retain(|h| !h.is_finished());
        }

        // Readers notice the stop flag within READ_TIMEOUT and hang up
        // their queue senders; once the last sender (ours included) is
        // gone, workers see the channel close and drain out.
        for handle in reader_handles {
            let _ = handle.join();
        }
        drop(tx);
        for handle in worker_handles {
            let _ = handle.join();
        }
        if let Some(handle) = replica_handle {
            let _ = handle.join();
        }
        if let Some(handle) = supervisor_handle {
            let _ = handle.join();
        }
        // Final durability barrier: under `interval`/`never` fsync, any
        // buffered WAL bytes reach disk before the process exits. Best
        // effort — a sync failure must not eat the metrics dump.
        let _ = self.service.sync_wal();
        Ok(self.service.metrics.snapshot())
    }
}

/// FNV-1a over the advertise address: a stable, dependency-free default
/// node id. Operators who want explicit ranking pass `--node-id`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Read newline-delimited requests off one connection until EOF or
/// server stop, admitting each to the queue (or rejecting it inline).
fn reader_loop(
    stream: TcpStream,
    tx: &SyncSender<Job>,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    default_timeout: Duration,
    retry_after_ms: u64,
) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // A timeout can fire mid-line; `read_line` keeps what it read in
        // `line`, so looping just resumes the same line.
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client hung up.
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        let text = line.trim();
        if text.is_empty() {
            line.clear();
            continue;
        }
        let received = Instant::now();
        match protocol::parse_request(text) {
            Ok(request) => {
                if request.op == "replicate" {
                    // Hijack: this connection becomes a replication
                    // stream and this thread serves it until hangup.
                    repl::serve_replica(reader, writer, service, stop, &request);
                    return;
                }
                let timeout = protocol::get_u64(&request.body, "timeout_ms")
                    .map_or(default_timeout, Duration::from_millis);
                let job = Job {
                    received,
                    deadline: received + timeout,
                    request,
                    writer: Arc::clone(&writer),
                };
                match tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => {
                        service.metrics.record_rejected();
                        service.metrics.record_error();
                        let err = ServiceError::new(
                            "overloaded",
                            "request queue is full; retry with backoff",
                        )
                        .with_retry_after(retry_after_ms);
                        respond(&job.writer, &protocol::err_envelope(job.request.id, &err));
                    }
                    Err(TrySendError::Disconnected(job)) => {
                        let err = ServiceError::new(
                            "shutting_down",
                            "server is draining; reconnect later",
                        );
                        respond(&job.writer, &protocol::err_envelope(job.request.id, &err));
                        return;
                    }
                }
            }
            Err(err) => {
                service.metrics.record_error();
                respond(&writer, &protocol::err_envelope(None, &err));
            }
        }
        line.clear();
    }
}

/// Execute admitted jobs until every sender hangs up.
fn worker_loop(rx: &Mutex<Receiver<Job>>, service: &Service) {
    loop {
        // Hold the receiver lock only for the dequeue, not the work.
        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: server draining.
        };
        let op = Op::from_name(&job.request.op);
        let result = catch_unwind(AssertUnwindSafe(|| {
            service.handle(&job.request, job.deadline)
        }))
        .unwrap_or_else(|_| {
            Err(ServiceError::new(
                "internal",
                "request handler panicked; see server log",
            ))
        });
        let envelope = match result {
            Ok(data) => protocol::ok_envelope(job.request.id, data),
            Err(err) => {
                service.metrics.record_error();
                protocol::err_envelope(job.request.id, &err)
            }
        };
        respond(&job.writer, &envelope);
        service.metrics.record_request(op, job.received.elapsed());
    }
}

/// Write one response line, ignoring a dead peer (their loss).
fn respond(writer: &Mutex<TcpStream>, envelope: &serde_json::Value) {
    let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = protocol::write_response(&mut *guard, envelope);
}
