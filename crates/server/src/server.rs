//! The TCP daemon: a poll-based event loop front end feeding a bounded
//! worker pool.
//!
//! ## Threading model
//!
//! ```text
//! event loops (io_threads, poll(2) over nonblocking sockets)
//!   loop 0 also owns the listener; accepts hand off round-robin
//!     │ parse frame
//!     ├─ read ops (query_*, stats, health) ── answered INLINE on the
//!     │      loop thread over epoch-pinned state; never queued
//!     ├─ replicate ── connection hijacked to a dedicated stream thread
//!     └─ heavy ops (load, mutate, solve, …) → Job ──try_send──▶
//!                       bounded sync_channel(queue_depth)
//!                              │ recv
//!                              ▼
//!                       worker pool (N threads) ──▶ Service::handle
//!                              │
//!                              ▼ response line → the connection's outbox
//! ```
//!
//! Read-class ops execute on the event-loop thread itself: they touch
//! only the published summary cell or an epoch-pinned snapshot (see
//! `service`), so a 2-second solve occupying every worker cannot add a
//! microsecond to `health`, `stats`, or `query_*` latency — reads never
//! queue behind solves.
//!
//! ## The outbox
//!
//! Sockets are nonblocking, so a response writer can't just block until
//! the kernel takes the bytes. Each connection owns a `ConnOut`: a
//! worker (or the loop) writes directly while the outbox is empty and
//! stashes the remainder on `WouldBlock`; the event loop polls
//! `POLLOUT` for connections with stashed bytes and drains them as the
//! socket opens up. All writes serialize through the outbox lock, so
//! responses never interleave mid-line.
//!
//! ## Backpressure and admission control
//!
//! The queue is a `sync_channel` of fixed depth. The event loop
//! **never blocks** on it: a full queue fails `try_send` immediately
//! and the loop answers `{"error": {"code": "overloaded"}}` itself, so
//! an overloaded server keeps its memory bounded and its rejections
//! structured instead of stalling accepts or buffering without limit.
//! Each admitted request carries a deadline (`default_timeout_ms`, or
//! the request's own `timeout_ms`); a worker that dequeues an
//! already-expired job answers `deadline_exceeded` without doing the
//! work. Inline read ops are not admission-controlled — they cost less
//! than the rejection would.
//!
//! ## Shutdown
//!
//! The `shutdown` op raises a shared stop flag. Event loops observe it
//! within one poll tick, drop their connections and queue senders;
//! workers drain the queue until every sender is gone, answering every
//! admitted request (responses ride each job's own outbox handle, which
//! keeps the socket open until the response is written). `run` then
//! joins everything and returns the final [`MetricsSnapshot`], which
//! the CLI prints — no request is abandoned mid-flight.

use crate::metrics::{MetricsSnapshot, Op, ServerMetrics};
use crate::poll::{self, PollFd, POLLIN, POLLOUT};
use crate::protocol::{self, ServiceError};
use crate::recovery;
use crate::repl;
use crate::service::Service;
use crate::wal::FsyncPolicy;
use geacc_core::parallel::Threads;
use geacc_core::DynamicConfig;
use serde_json::Value;
use std::io::{BufReader, Cursor, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration (the CLI's `serve` flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, CI smoke).
    pub addr: String,
    /// Worker threads executing heavy requests (everything the event
    /// loop does not answer inline).
    pub workers: usize,
    /// Event-loop threads multiplexing connections; loop 0 also owns
    /// the listener.
    pub io_threads: usize,
    /// Bounded queue depth between the event loops and workers; the
    /// admission limit.
    pub queue_depth: usize,
    /// Deadline for requests that do not set their own `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Thread budget for budgeted `solve` pipelines.
    pub solve_threads: Threads,
    /// `rebuild_drift_ratio` for the managed arranger.
    pub drift_ratio: f64,
    /// Durability directory (WAL + rotated snapshot); `None` serves
    /// purely in memory.
    pub wal_dir: Option<PathBuf>,
    /// When appended WAL records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Auto-snapshot cadence in mutations; `None` never rotates (the
    /// WAL alone carries recovery).
    pub snapshot_every: Option<u64>,
    /// Serve `replicate` handshakes (stream the WAL to followers).
    /// Requires `wal_dir`.
    pub accept_replicas: bool,
    /// Follow this `host:port` as a read-only replica. Requires
    /// `wal_dir`.
    pub replica_of: Option<String>,
    /// The `retry_after_ms` hint attached to `overloaded` rejections.
    pub retry_after_ms: u64,
    /// Run the failover supervisor (lease monitoring, automatic
    /// promotion/demotion). Requires `wal_dir`; on a primary it
    /// implies `accept_replicas` must be set.
    pub supervise: bool,
    /// Heartbeat cadence for the lease protocol.
    pub lease_interval_ms: u64,
    /// Missed intervals before the primary fences itself; replicas
    /// wait two more before electing.
    pub missed_leases: u32,
    /// Election tiebreak identity; defaults to a hash of the advertise
    /// address. Must be unique across the cluster.
    pub node_id: Option<u64>,
    /// Client-facing address handed out as `primary_hint`; defaults to
    /// the bound listener address.
    pub advertise: Option<String>,
    /// Client-facing addresses of the other cluster members, probed
    /// during elections and fence checks.
    pub peers: Vec<String>,
}

/// Enough loops to keep reads flat under load without burning cores on
/// idle pollers.
fn default_io_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(4)
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".to_string(),
            workers: 4,
            io_threads: default_io_threads(),
            queue_depth: 64,
            default_timeout_ms: 5000,
            solve_threads: Threads::from_env(),
            drift_ratio: 0.2,
            wal_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: None,
            accept_replicas: false,
            replica_of: None,
            retry_after_ms: 25,
            supervise: false,
            lease_interval_ms: 500,
            missed_leases: 3,
            node_id: None,
            advertise: None,
            peers: Vec::new(),
        }
    }
}

/// One admitted request travelling from an event loop to a worker.
struct Job {
    request: protocol::Request,
    /// Admission time; latency is measured from here, and the deadline
    /// is anchored to it so queue time counts against the budget.
    received: Instant,
    deadline: Instant,
    writer: Arc<ConnOut>,
}

/// A bound listener ready to serve. Created with [`Server::bind`], run
/// to completion with [`Server::run`].
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    /// One human-readable line describing what startup recovery found
    /// (`None` without a `--wal-dir`); the CLI prints it at boot.
    recovery_summary: Option<String>,
    /// One line describing the replication role (`None` when
    /// replication is off); the CLI prints it at boot.
    replication_summary: Option<String>,
}

/// The poll timeout: how fast a loop notices the stop flag, injected
/// connections, and worker-stashed outbox bytes with no socket event.
const POLL_TICK_MS: i32 = 5;
/// Backoff when `poll(2)` itself errors (resource exhaustion).
const POLL_INTERVAL: Duration = Duration::from_millis(5);
/// Socket read timeout for hijacked replication streams (they leave
/// the event loop and block on their own thread).
const READ_TIMEOUT: Duration = Duration::from_millis(200);

impl Server {
    /// Bind the listener and assemble the service. With a `wal_dir`,
    /// this is where crash recovery happens: the WAL (and snapshot) are
    /// replayed into the service and the writer is armed at the
    /// validated offset — a corrupt log refuses the bind with a
    /// structured error naming the bad byte offset. No thread starts
    /// until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServerMetrics::default());
        let service = Arc::new(Service::new(
            Arc::clone(&metrics),
            Arc::clone(&stop),
            config.solve_threads,
            config.drift_ratio,
        ));
        let mut recovery_summary = None;
        if let Some(dir) = &config.wal_dir {
            let rec = recovery::recover(
                dir,
                DynamicConfig {
                    rebuild_drift_ratio: config.drift_ratio,
                },
            )
            .map_err(recovery::RecoveryError::into_io)?;
            let writer = recovery::open_writer(dir, config.fsync, &rec)?;
            recovery_summary = Some(format!(
                "recovered {} WAL record(s) ({} replayed, {} skipped, {} torn byte(s) truncated){} from {}",
                rec.wal_records,
                rec.replayed,
                rec.skipped,
                rec.truncated_bytes,
                match rec.snapshot_epoch {
                    Some(epoch) => format!(" via snapshot at epoch {epoch}"),
                    None => String::new(),
                },
                dir.display(),
            ));
            service.install_recovered(
                rec,
                writer,
                dir.clone(),
                config.fsync,
                config.snapshot_every,
            );
        }
        service.init_replication(config.accept_replicas, config.replica_of.is_some())?;
        // Topology is tracked even unsupervised: a plain replica knows
        // its upstream and hands it out as `primary_hint` so a client
        // misconfigured to point at the replica self-corrects.
        if let Some(primary) = &config.replica_of {
            service.supervision().set_upstream(Some(primary.clone()));
        }
        if config.supervise {
            if config.wal_dir.is_none() {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    "supervision requires a --wal-dir (failover ships the WAL)",
                ));
            }
            if config.replica_of.is_none() && !config.accept_replicas {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    "a supervised primary must accept replicas (--accept-replicas); \
                     a lease with no followers protects nothing",
                ));
            }
            let advertise = match &config.advertise {
                Some(addr) => addr.clone(),
                None => listener.local_addr()?.to_string(),
            };
            let node_id = config
                .node_id
                .unwrap_or_else(|| fnv1a(advertise.as_bytes()));
            service.begin_supervision(&crate::supervisor::SupervisorConfig {
                lease_interval: Duration::from_millis(config.lease_interval_ms.max(1)),
                missed_leases: config.missed_leases,
                node_id,
                advertise,
                peers: config.peers.clone(),
            });
        }
        let supervised_note = if config.supervise {
            ", supervised (auto-failover)"
        } else {
            ""
        };
        let replication_summary = if let Some(primary) = &config.replica_of {
            Some(format!(
                "replicating from {primary} (generation {}){supervised_note}",
                service.replication().generation()
            ))
        } else if config.accept_replicas {
            Some(format!(
                "accepting replicas (generation {}){supervised_note}",
                service.replication().generation()
            ))
        } else {
            None
        };
        Ok(Server {
            listener,
            config,
            service,
            stop,
            recovery_summary,
            replication_summary,
        })
    }

    /// What startup recovery found, for the boot log line (`None`
    /// without a `wal_dir`).
    pub fn recovery_summary(&self) -> Option<&str> {
        self.recovery_summary.as_deref()
    }

    /// The replication role line for the boot log (`None` when
    /// replication is off).
    pub fn replication_summary(&self) -> Option<&str> {
        self.replication_summary.as_deref()
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the stop flag, for embedding callers (tests, the
    /// load generator) that stop the server without a `shutdown` op.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serve until the stop flag rises, drain every in-flight request,
    /// join all threads, and return the final metrics.
    pub fn run(self) -> std::io::Result<MetricsSnapshot> {
        let Server {
            listener,
            config,
            service,
            stop,
            ..
        } = self;
        let workers = config.workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            worker_handles.push(std::thread::spawn(move || worker_loop(&rx, &service)));
        }

        // The follower thread: connects out to the primary, applies the
        // shipped stream, reconnects with backoff until promoted. A
        // supervised node keeps this thread alive even when it boots as
        // a primary: if it is ever demoted it starts following whatever
        // upstream the supervisor points it at.
        let replica_handle = if config.replica_of.is_some() || service.supervision().enabled() {
            let primary = config.replica_of.clone();
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            Some(std::thread::spawn(move || {
                repl::run_replica_loop(service, primary, stop, 0x9e37_79b9_7f4a_7c15);
            }))
        } else {
            None
        };

        // The lease monitor: renews/watches heartbeats and drives the
        // promotion / fencing / demotion state machine.
        let supervisor_handle = if service.supervision().enabled() {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            Some(std::thread::spawn(move || {
                crate::supervisor::run_supervisor(service, stop);
            }))
        } else {
            None
        };

        listener.set_nonblocking(true)?;
        let io_threads = config.io_threads.max(1);
        let injectors: Arc<Vec<Mutex<Vec<TcpStream>>>> =
            Arc::new((0..io_threads).map(|_| Mutex::new(Vec::new())).collect());
        let mut loop_handles = Vec::with_capacity(io_threads);
        for idx in 0..io_threads {
            let listener = if idx == 0 {
                Some(listener.try_clone()?)
            } else {
                None
            };
            let injectors = Arc::clone(&injectors);
            let ctx = LoopCtx {
                service: Arc::clone(&service),
                stop: Arc::clone(&stop),
                tx: tx.clone(),
                default_timeout: Duration::from_millis(config.default_timeout_ms),
                retry_after_ms: config.retry_after_ms,
            };
            loop_handles.push(std::thread::spawn(move || {
                event_loop(idx, listener, &injectors, &ctx);
            }));
        }
        drop(tx);
        drop(listener);

        // Event loops exit within a poll tick of the stop flag and drop
        // their queue senders; once the last sender is gone, workers see
        // the channel close and drain out.
        for handle in loop_handles {
            let _ = handle.join();
        }
        for handle in worker_handles {
            let _ = handle.join();
        }
        if let Some(handle) = replica_handle {
            let _ = handle.join();
        }
        if let Some(handle) = supervisor_handle {
            let _ = handle.join();
        }
        // Final durability barrier: under `interval`/`never` fsync, any
        // buffered WAL bytes reach disk before the process exits. Best
        // effort — a sync failure must not eat the metrics dump.
        let _ = service.sync_wal();
        Ok(service.metrics.snapshot())
    }
}

/// FNV-1a over the advertise address: a stable, dependency-free default
/// node id. Operators who want explicit ranking pass `--node-id`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-loop immutable context.
struct LoopCtx {
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    tx: SyncSender<Job>,
    default_timeout: Duration,
    retry_after_ms: u64,
}

/// The write half of a connection, shared by the owning event loop and
/// any worker holding a job for it. Writers go straight to the
/// (nonblocking) socket while the outbox is empty and stash the
/// remainder on `WouldBlock`; the loop drains stashed bytes on
/// `POLLOUT`. Everything serializes through the outbox lock, so
/// response lines never interleave. Write errors drop the bytes — a
/// dead peer's loss.
struct ConnOut {
    stream: TcpStream,
    queued: Mutex<Vec<u8>>,
}

impl ConnOut {
    /// Queue-or-write one response. Ordering: bytes already queued keep
    /// their place ahead of this write.
    fn send(&self, bytes: &[u8]) {
        let mut queued = self.queued.lock().unwrap_or_else(|e| e.into_inner());
        if !queued.is_empty() {
            queued.extend_from_slice(bytes);
            return;
        }
        let mut offset = 0;
        while offset < bytes.len() {
            match (&self.stream).write(&bytes[offset..]) {
                Ok(0) => return,
                Ok(n) => offset += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    queued.extend_from_slice(&bytes[offset..]);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Drain stashed bytes into the socket; `true` when some remain
    /// (keep polling `POLLOUT`).
    fn flush_pending(&self) -> bool {
        let mut queued = self.queued.lock().unwrap_or_else(|e| e.into_inner());
        while !queued.is_empty() {
            match (&self.stream).write(&queued) {
                Ok(0) => {
                    queued.clear();
                    return false;
                }
                Ok(n) => {
                    queued.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    queued.clear();
                    return false;
                }
            }
        }
        false
    }

    fn has_pending(&self) -> bool {
        !self
            .queued
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }
}

/// One multiplexed connection, owned by exactly one event loop.
struct Conn {
    stream: TcpStream,
    out: Arc<ConnOut>,
    /// Bytes read but not yet framed into a full line.
    inbuf: Vec<u8>,
}

impl Conn {
    fn adopt(stream: TcpStream) -> Option<Conn> {
        // Responses are single short writes; leaving Nagle on costs a
        // delayed-ACK round trip (~40 ms) per line.
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).ok()?;
        let out = Arc::new(ConnOut {
            stream: stream.try_clone().ok()?,
            queued: Mutex::new(Vec::new()),
        });
        Some(Conn {
            stream,
            out,
            inbuf: Vec::new(),
        })
    }
}

/// What the loop does with a connection after servicing it.
enum ConnFate {
    Keep,
    Close,
    /// A `replicate` handshake: the connection leaves the event loop
    /// and becomes a blocking replication stream on its own thread.
    Hijack(protocol::Request),
}

/// A per-event-loop cache of inline read responses, keyed on the raw
/// request line and guarded by the service's state version. Epoch
/// serving makes this sound: `query_user`/`query_event` responses are a
/// pure function of (request line, state version) — identical bytes in,
/// identical bytes out, until a mutation bumps the version and the
/// whole cache drops. Single-threaded (one per loop), so no locks on
/// the hit path: a hash lookup and a memcpy replace parse → pin →
/// serialize for every repeated read in an epoch.
#[derive(Default)]
struct ReadCache {
    version: u64,
    map: std::collections::HashMap<Vec<u8>, (Op, Vec<u8>)>,
}

/// Entry cap: a rogue client enumerating unique lines evicts everything
/// rather than growing without bound.
const READ_CACHE_MAX: usize = 8192;

impl ReadCache {
    /// Drop stale entries if the state moved; returns the version the
    /// cache is now valid for.
    fn sync(&mut self, version: u64) -> u64 {
        if self.version != version {
            self.map.clear();
            self.version = version;
        }
        version
    }

    fn insert(&mut self, line: &[u8], op: Op, response: &[u8]) {
        if self.map.len() >= READ_CACHE_MAX {
            self.map.clear();
        }
        self.map.insert(line.to_vec(), (op, response.to_vec()));
    }
}

/// One event loop: poll the listener (loop 0) and this loop's
/// connections, answer read ops inline, feed heavy ops to the worker
/// queue, and drain outboxes as sockets open up.
fn event_loop(
    idx: usize,
    listener: Option<TcpListener>,
    injectors: &[Mutex<Vec<TcpStream>>],
    ctx: &LoopCtx,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut hijacked: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut next = idx;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut cache = ReadCache::default();
    let mut outbuf: Vec<u8> = Vec::with_capacity(16 * 1024);
    while !ctx.stop.load(Ordering::SeqCst) {
        {
            let mut inj = injectors[idx].lock().unwrap_or_else(|e| e.into_inner());
            for stream in inj.drain(..) {
                if let Some(conn) = Conn::adopt(stream) {
                    conns.push(conn);
                }
            }
        }
        fds.clear();
        if let Some(l) = &listener {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        for conn in &conns {
            let mut events = POLLIN;
            if conn.out.has_pending() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
        }
        if poll::poll_fds(&mut fds, POLL_TICK_MS).is_err() {
            std::thread::sleep(POLL_INTERVAL);
            continue;
        }
        if let Some(l) = &listener {
            if fds[0].readable() {
                accept_ready(l, injectors, &mut next, ctx);
            }
        }
        let mut kept = Vec::with_capacity(conns.len());
        for (slot, mut conn) in conns.into_iter().enumerate() {
            let pf = &fds[base + slot];
            if pf.writable() && conn.out.has_pending() {
                conn.out.flush_pending();
            }
            let fate = if pf.readable() {
                read_conn(&mut conn, &mut buf, ctx, &mut cache, &mut outbuf)
            } else {
                ConnFate::Keep
            };
            match fate {
                ConnFate::Keep => kept.push(conn),
                ConnFate::Close => {
                    // Best effort on anything still queued; the peer is
                    // (half-)gone either way.
                    conn.out.flush_pending();
                }
                ConnFate::Hijack(request) => {
                    if let Some(handle) = hijack_replica(conn, request, ctx) {
                        hijacked.push(handle);
                    }
                }
            }
        }
        conns = kept;
        hijacked.retain(|h| !h.is_finished());
    }
    // Replication streams watch the same stop flag; join them so the
    // final WAL sync in `run` happens after their last append.
    for handle in hijacked {
        let _ = handle.join();
    }
}

/// Accept everything ready and deal connections round-robin across the
/// loops (including this one) via the injection queues.
fn accept_ready(
    listener: &TcpListener,
    injectors: &[Mutex<Vec<TcpStream>>],
    next: &mut usize,
    ctx: &LoopCtx,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ctx.service.metrics.record_connection();
                let target = *next % injectors.len();
                *next = next.wrapping_add(1);
                injectors[target]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Pull everything the socket has, then frame and dispatch buffered
/// lines.
fn read_conn(
    conn: &mut Conn,
    buf: &mut [u8],
    ctx: &LoopCtx,
    cache: &mut ReadCache,
    outbuf: &mut Vec<u8>,
) -> ConnFate {
    let mut eof = false;
    loop {
        match (&conn.stream).read(buf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&buf[..n]);
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ConnFate::Close,
        }
    }
    // A client may pipeline requests and half-close; serve what it sent
    // before honoring the EOF.
    match drain_lines(conn, ctx, cache, outbuf) {
        ConnFate::Keep if eof => ConnFate::Close,
        fate => fate,
    }
}

/// Frame complete lines out of the connection's buffer and dispatch
/// each: inline reads on this thread, heavy ops to the worker queue.
///
/// Inline responses accumulate in `outbuf` and go to the socket as one
/// write when the batch ends (or before a job is queued, so worker
/// responses cannot overtake earlier inline ones) — a pipelined window
/// of reads costs one write syscall, not one per response.
fn drain_lines(
    conn: &mut Conn,
    ctx: &LoopCtx,
    cache: &mut ReadCache,
    outbuf: &mut Vec<u8>,
) -> ConnFate {
    let mut start = 0usize;
    let fate = loop {
        let Some(rel) = conn.inbuf[start..].iter().position(|&b| b == b'\n') else {
            break ConnFate::Keep;
        };
        let line_end = start + rel;
        let line = &conn.inbuf[start..line_end];
        start = line_end + 1;

        // Trim without allocating (clients may send \r\n or padding).
        let trimmed = {
            let mut lo = 0;
            let mut hi = line.len();
            while lo < hi && line[lo].is_ascii_whitespace() {
                lo += 1;
            }
            while hi > lo && line[hi - 1].is_ascii_whitespace() {
                hi -= 1;
            }
            &line[lo..hi]
        };
        if trimmed.is_empty() {
            continue;
        }
        let received = Instant::now();

        // Cache hit: identical read line, unchanged state version —
        // answer from bytes without parsing anything.
        let version = cache.sync(ctx.service.state_version());
        if let Some((op, response)) = cache.map.get(trimmed) {
            outbuf.extend_from_slice(response);
            ctx.service.metrics.record_request(*op, received.elapsed());
            continue;
        }

        let Ok(text) = std::str::from_utf8(trimmed) else {
            ctx.service.metrics.record_error();
            let err = ServiceError::new("bad_json", "request line is not valid UTF-8");
            envelope_bytes_into(outbuf, &protocol::err_envelope(None, &err));
            continue;
        };
        match protocol::parse_request(text) {
            Ok(request) => {
                if request.op == "replicate" {
                    break ConnFate::Hijack(request);
                }
                let timeout = protocol::get_u64(&request.body, "timeout_ms")
                    .map_or(ctx.default_timeout, Duration::from_millis);
                let deadline = received + timeout;
                if matches!(
                    request.op.as_str(),
                    "query_user" | "query_event" | "stats" | "health"
                ) {
                    // Read ops never queue: they run on the loop thread
                    // over epoch-pinned state, out of every solve's way.
                    let op = Op::from_name(&request.op);
                    let result =
                        catch_unwind(AssertUnwindSafe(|| ctx.service.handle(&request, deadline)))
                            .unwrap_or_else(|_| {
                                Err(ServiceError::new(
                                    "internal",
                                    "request handler panicked; see server log",
                                ))
                            });
                    let mark = outbuf.len();
                    match result {
                        Ok(data) => {
                            envelope_bytes_into(outbuf, &protocol::ok_envelope(request.id, data));
                            // Query responses are deterministic per
                            // (line, version); stats/health mix in live
                            // counters, so only queries are cacheable.
                            // Skip the insert if the state moved during
                            // the handler — the response may already
                            // belong to the next version.
                            if matches!(request.op.as_str(), "query_user" | "query_event")
                                && ctx.service.state_version() == version
                            {
                                cache.insert(trimmed, op, &outbuf[mark..]);
                            }
                        }
                        Err(err) => {
                            ctx.service.metrics.record_error();
                            envelope_bytes_into(outbuf, &protocol::err_envelope(request.id, &err));
                        }
                    }
                    ctx.service.metrics.record_request(op, received.elapsed());
                    continue;
                }
                // Queue-class op: flush inline responses first so the
                // worker's response cannot overtake them on the wire.
                if !outbuf.is_empty() {
                    conn.out.send(outbuf);
                    outbuf.clear();
                }
                let job = Job {
                    received,
                    deadline,
                    request,
                    writer: Arc::clone(&conn.out),
                };
                match ctx.tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => {
                        ctx.service.metrics.record_rejected();
                        ctx.service.metrics.record_error();
                        let err = ServiceError::new(
                            "overloaded",
                            "request queue is full; retry with backoff",
                        )
                        .with_retry_after(ctx.retry_after_ms);
                        envelope_bytes_into(outbuf, &protocol::err_envelope(job.request.id, &err));
                    }
                    Err(TrySendError::Disconnected(job)) => {
                        let err = ServiceError::new(
                            "shutting_down",
                            "server is draining; reconnect later",
                        );
                        envelope_bytes_into(outbuf, &protocol::err_envelope(job.request.id, &err));
                        break ConnFate::Close;
                    }
                }
            }
            Err(err) => {
                ctx.service.metrics.record_error();
                envelope_bytes_into(outbuf, &protocol::err_envelope(None, &err));
            }
        }
    };
    // One compaction for the whole batch (a hijacked handshake leaves
    // any bytes past its line in place for the stream thread).
    conn.inbuf.drain(..start);
    if !outbuf.is_empty() {
        conn.out.send(outbuf);
        outbuf.clear();
    }
    fate
}

/// Move a `replicate` connection off the event loop: restore blocking
/// mode (shared fd flags — the outbox clone follows), flush anything
/// queued, and hand the socket (with any bytes already buffered past
/// the handshake line) to a dedicated stream thread.
fn hijack_replica(
    conn: Conn,
    request: protocol::Request,
    ctx: &LoopCtx,
) -> Option<std::thread::JoinHandle<()>> {
    let Conn { stream, out, inbuf } = conn;
    stream.set_nonblocking(false).ok()?;
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok()?;
    while out.flush_pending() {}
    let writer = Arc::new(Mutex::new(stream.try_clone().ok()?));
    let reader = Cursor::new(inbuf).chain(BufReader::new(stream));
    let service = Arc::clone(&ctx.service);
    let stop = Arc::clone(&ctx.stop);
    Some(std::thread::spawn(move || {
        repl::serve_replica(reader, writer, &service, &stop, &request);
    }))
}

/// Execute admitted jobs until every sender hangs up.
fn worker_loop(rx: &Mutex<Receiver<Job>>, service: &Service) {
    loop {
        // Hold the receiver lock only for the dequeue, not the work.
        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: server draining.
        };
        let op = Op::from_name(&job.request.op);
        let result = catch_unwind(AssertUnwindSafe(|| {
            service.handle(&job.request, job.deadline)
        }))
        .unwrap_or_else(|_| {
            Err(ServiceError::new(
                "internal",
                "request handler panicked; see server log",
            ))
        });
        let envelope = match result {
            Ok(data) => protocol::ok_envelope(job.request.id, data),
            Err(err) => {
                service.metrics.record_error();
                protocol::err_envelope(job.request.id, &err)
            }
        };
        job.writer.send(&envelope_bytes(&envelope));
        service.metrics.record_request(op, job.received.elapsed());
    }
}

/// Serialize one response envelope to its wire line.
fn envelope_bytes(envelope: &Value) -> Vec<u8> {
    let mut line = Vec::with_capacity(256);
    envelope_bytes_into(&mut line, envelope);
    line
}

/// Serialize one response envelope onto the end of a batch buffer.
fn envelope_bytes_into(out: &mut Vec<u8>, envelope: &Value) {
    let mark = out.len();
    if serde_json::to_writer(&mut *out, envelope).is_err() {
        out.truncate(mark);
        out.extend_from_slice(
            br#"{"ok":false,"error":{"code":"internal","message":"response serialization failed"}}"#,
        );
    }
    out.push(b'\n');
}
