//! Lease-based automatic failover: the self-healing half of replication.
//!
//! ## Lease protocol
//!
//! The primary's replica streams double as its heartbeat: every record
//! shipped (and an explicit `{"repl":"ping"}` line when the stream is
//! idle) renews a lease on the follower, and every ack a follower sends
//! back renews the primary's confidence that its replicas still see it.
//! Two monitor loops consume those signals:
//!
//! - A **replica** whose lease goes unrenewed for
//!   `(missed_leases + 2) × lease_interval` first probes its upstream's
//!   `health` op directly (a slow stream is not a dead primary); only
//!   when the primary is truly gone does it run the election.
//! - A **primary** that hears no replica ack for
//!   `missed_leases × lease_interval` **fences itself**: it keeps
//!   serving reads but refuses writes with `lease_lost`, on the
//!   assumption that the replicas it lost may be electing a successor.
//!   The fence window is strictly smaller than the promote window, so a
//!   partitioned primary stops acking writes *before* any replica goes
//!   writable — that ordering is the no-split-brain argument.
//!
//! ## Election
//!
//! Deterministic and leaderless: every electing replica probes the peer
//! list and ranks all candidates (itself included) by
//! `(acked WAL offset, node id)` — highest offset wins, ties break to
//! the lowest id — so every elector that sees the same candidate set
//! picks the same winner. The winner bumps its generation and persists
//! it to `repl.meta` **before** going writable (the PR 7 fence: a
//! resurrected stale primary sees `stale_generation` on its next
//! handshake and demotes itself); losers re-point their follower at the
//! winner and grant it a fresh lease window to take over.
//!
//! ## Healing
//!
//! A supervised primary starts **fenced on probation** when it has
//! peers: it must complete one probe round that reaches every peer and
//! finds no senior generation before it accepts writes. The same rule
//! governs un-fencing after a partition heals — a primary that cannot
//! reach every peer stays fenced, because the unreachable peer might be
//! a promoted successor. A primary that *does* find a senior generation
//! (or an equal-generation primary that outranks it — the symmetric
//! dual-promote tiebreak) demotes itself to replica and follows it.

use crate::protocol::{get, get_str, get_u64};
use crate::service::Service;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Floor on the configurable lease interval (a zero would spin).
pub const MIN_LEASE_INTERVAL: Duration = Duration::from_millis(10);

/// How long a peer `health` probe may take before the peer counts as
/// unreachable (connect and read each get this budget).
const PROBE_TIMEOUT: Duration = Duration::from_millis(250);

/// Supervision knobs, resolved by `Server::bind` from the CLI flags.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How often the primary's stream pings when idle (well, twice as
    /// often — pings flow at `lease_interval / 2` so one lost line
    /// cannot cost a whole window).
    pub lease_interval: Duration,
    /// Missed intervals before the primary self-fences; replicas wait
    /// two more before electing, which orders fence-before-promote.
    pub missed_leases: u32,
    /// Election tiebreak identity; must be unique across the cluster.
    pub node_id: u64,
    /// The address clients and peers should use to reach this node —
    /// carried on the replication stream so followers can hand it out
    /// as `primary_hint`.
    pub advertise: String,
    /// Client-facing addresses of the other cluster members.
    pub peers: Vec<String>,
}

/// Supervision state embedded in the service: lease clocks, cluster
/// topology, and the write fence. Always present, inert until
/// [`Service::begin_supervision`] enables it; the topology fields
/// (`upstream`, `primary_hint`) are maintained even unsupervised so a
/// plain replica can hint misdirected clients at its primary.
pub struct SupervisorState {
    enabled: AtomicBool,
    node_id: AtomicU64,
    lease_interval_ms: AtomicU64,
    missed_leases: AtomicU32,
    advertise: Mutex<Option<String>>,
    peers: Mutex<Vec<String>>,
    /// The address this node's follower loop connects to. Distinct from
    /// `primary_hint`: a follower may reach its primary through a relay
    /// while clients should go direct (or vice versa).
    upstream: Mutex<Option<String>>,
    /// Best known client-facing address of the current primary.
    primary_hint: Mutex<Option<String>>,
    /// Epoch for the millisecond clocks below.
    origin: Instant,
    last_lease_ms: AtomicU64,
    last_replica_contact_ms: AtomicU64,
    had_replica_contact: AtomicBool,
    fenced: AtomicBool,
}

impl Default for SupervisorState {
    fn default() -> Self {
        Self::new()
    }
}

impl SupervisorState {
    pub fn new() -> Self {
        SupervisorState {
            enabled: AtomicBool::new(false),
            node_id: AtomicU64::new(0),
            lease_interval_ms: AtomicU64::new(500),
            missed_leases: AtomicU32::new(3),
            advertise: Mutex::new(None),
            peers: Mutex::new(Vec::new()),
            upstream: Mutex::new(None),
            primary_hint: Mutex::new(None),
            origin: Instant::now(),
            last_lease_ms: AtomicU64::new(0),
            last_replica_contact_ms: AtomicU64::new(0),
            had_replica_contact: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
        }
    }

    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    /// Install the config and enable the monitor loops.
    pub fn configure(&self, config: &SupervisorConfig) {
        self.node_id.store(config.node_id, Ordering::SeqCst);
        self.lease_interval_ms.store(
            (config.lease_interval.max(MIN_LEASE_INTERVAL).as_millis() as u64).max(1),
            Ordering::SeqCst,
        );
        self.missed_leases
            .store(config.missed_leases.max(1), Ordering::SeqCst);
        *lock(&self.advertise) = Some(config.advertise.clone());
        *lock(&self.peers) = config.peers.clone();
        self.note_lease();
        self.enabled.store(true, Ordering::SeqCst);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    pub fn node_id(&self) -> u64 {
        self.node_id.load(Ordering::SeqCst)
    }

    pub fn lease_interval(&self) -> Duration {
        Duration::from_millis(self.lease_interval_ms.load(Ordering::SeqCst)).max(MIN_LEASE_INTERVAL)
    }

    pub fn missed_leases(&self) -> u32 {
        self.missed_leases.load(Ordering::SeqCst).max(1)
    }

    /// Silence after which a primary fences itself.
    pub fn fence_window(&self) -> Duration {
        self.lease_interval() * self.missed_leases()
    }

    /// Silence after which a replica elects — strictly wider than the
    /// fence window, so a partitioned primary is fenced before any
    /// replica can go writable.
    pub fn promote_window(&self) -> Duration {
        self.lease_interval() * (self.missed_leases() + 2)
    }

    /// A heartbeat arrived from the primary (hello/snapshot/record/ping).
    pub fn note_lease(&self) {
        self.last_lease_ms.store(self.now_ms(), Ordering::SeqCst);
    }

    pub fn lease_age(&self) -> Duration {
        Duration::from_millis(
            self.now_ms()
                .saturating_sub(self.last_lease_ms.load(Ordering::SeqCst)),
        )
    }

    /// A replica acked (primary side).
    pub fn note_replica_contact(&self) {
        self.had_replica_contact.store(true, Ordering::SeqCst);
        self.last_replica_contact_ms
            .store(self.now_ms(), Ordering::SeqCst);
    }

    /// How long since any replica acked; `None` before the first
    /// contact (a primary that never had replicas does not fence).
    pub fn replica_silence(&self) -> Option<Duration> {
        if !self.had_replica_contact.load(Ordering::SeqCst) {
            return None;
        }
        Some(Duration::from_millis(self.now_ms().saturating_sub(
            self.last_replica_contact_ms.load(Ordering::SeqCst),
        )))
    }

    pub fn advertise(&self) -> Option<String> {
        lock(&self.advertise).clone()
    }

    pub fn peers(&self) -> Vec<String> {
        lock(&self.peers).clone()
    }

    pub fn set_upstream(&self, addr: Option<String>) {
        *lock(&self.upstream) = addr;
    }

    pub fn upstream(&self) -> Option<String> {
        lock(&self.upstream).clone()
    }

    pub fn set_primary_hint(&self, addr: Option<String>) {
        *lock(&self.primary_hint) = addr;
    }

    /// Best known primary address for client redirects, falling back to
    /// the follow target (a plain replica knows at least its upstream).
    pub fn primary_hint(&self) -> Option<String> {
        lock(&self.primary_hint).clone().or_else(|| self.upstream())
    }

    pub fn fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    pub fn set_fenced(&self, fenced: bool) {
        self.fenced.store(fenced, Ordering::SeqCst);
    }

    /// This node just became the primary: drop the fence, forget the
    /// old upstream, hint clients here, and re-arm the replica-contact
    /// probation (silence only counts from the first new follower).
    pub fn on_promoted(&self) {
        self.set_fenced(false);
        self.set_upstream(None);
        let advertise = self.advertise();
        self.set_primary_hint(advertise);
        self.had_replica_contact.store(false, Ordering::SeqCst);
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// What a peer's `health` op reported (the probe's view of a node).
#[derive(Debug, Clone)]
pub struct PeerHealth {
    pub role_primary: bool,
    pub generation: u64,
    /// Acked WAL offset in remote coordinates — the election rank.
    pub offset: u64,
    pub node_id: u64,
    pub fenced: bool,
    pub advertise: Option<String>,
}

/// One blocking `health` round-trip with hard timeouts. `None` means
/// unreachable (refused, timed out, or spoke garbage).
pub fn probe_health(addr: &str, timeout: Duration) -> Option<PeerHealth> {
    let sock: SocketAddr = addr.to_socket_addrs().ok()?.next()?;
    let stream = TcpStream::connect_timeout(&sock, timeout).ok()?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"{\"op\":\"health\",\"id\":0}\n").ok()?;
    writer.flush().ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let value: Value = serde_json::from_str(&line).ok()?;
    let data = get(&value, "data")?;
    Some(PeerHealth {
        role_primary: get_str(data, "role") == Some("primary"),
        generation: get_u64(data, "generation").unwrap_or(0),
        offset: get_u64(data, "repl_offset").unwrap_or(0),
        node_id: get_u64(data, "node_id").unwrap_or(u64::MAX),
        fenced: matches!(get(data, "fenced"), Some(Value::Bool(true))),
        advertise: get_str(data, "advertise").map(str::to_string),
    })
}

/// The election order over `(acked offset, node id)` pairs: the highest
/// offset wins (most acked history survives), ties break to the lowest
/// id. Total, and computed identically by every elector.
pub fn ranks_higher(candidate: (u64, u64), incumbent: (u64, u64)) -> bool {
    candidate.0 > incumbent.0 || (candidate.0 == incumbent.0 && candidate.1 < incumbent.1)
}

/// The monitor loop: ticks at half the lease interval, running the
/// replica- or primary-side checks for the node's current role (the
/// role can flip either way mid-life). Returns when `stop` is raised.
pub fn run_supervisor(service: Arc<Service>, stop: Arc<AtomicBool>) {
    let sup = service.supervision();
    if !sup.enabled() {
        return;
    }
    // A replica that boots against an already-dead primary never gets a
    // first heartbeat; start the lease clock now so it still elects.
    sup.note_lease();
    while !stop.load(Ordering::SeqCst) {
        let tick = (sup.lease_interval() / 2).max(MIN_LEASE_INTERVAL);
        sleep_poll(tick, &stop);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if service.replication().is_replica() {
            replica_tick(&service);
        } else {
            primary_tick(&service);
        }
    }
}

fn sleep_poll(total: Duration, stop: &Arc<AtomicBool>) {
    let slice = Duration::from_millis(5);
    let start = Instant::now();
    while start.elapsed() < total && !stop.load(Ordering::SeqCst) {
        std::thread::sleep(slice.min(total));
    }
}

/// Replica side: if the lease expired, double-check the primary over a
/// direct probe (the stream may be slow, not dead), then elect.
fn replica_tick(service: &Arc<Service>) {
    let sup = service.supervision();
    if sup.lease_age() < sup.promote_window() {
        return;
    }
    if let Some(upstream) = sup.upstream() {
        if let Some(h) = probe_health(&upstream, PROBE_TIMEOUT) {
            if h.role_primary && h.generation >= service.replication().generation() && !h.fenced {
                // The primary is alive and writable; only the stream is
                // ailing. Renew and let the follower's backoff reconnect.
                sup.note_lease();
                return;
            }
        }
    }
    elect(service);
}

/// One election round. Probes every peer; a live unfenced primary at
/// our generation or newer short-circuits the vote (someone already
/// won — follow it). Otherwise the highest-ranked reachable candidate
/// wins: us, by promoting; a peer, by re-pointing our follower at it.
fn elect(service: &Arc<Service>) {
    let sup = service.supervision();
    let repl = service.replication();
    service.metrics.record_sup_election();
    let mut best = (repl.remote_cursor(), sup.node_id());
    let mut winner: Option<(String, Option<String>)> = None;
    for peer in sup.peers() {
        let Some(h) = probe_health(&peer, PROBE_TIMEOUT) else {
            continue;
        };
        if h.role_primary {
            if h.generation >= repl.generation() && !h.fenced {
                let hint = h.advertise.clone().unwrap_or_else(|| peer.clone());
                sup.set_upstream(Some(peer));
                sup.set_primary_hint(Some(hint));
                sup.note_lease();
                return;
            }
            // A fenced or stale primary is not a candidate.
            continue;
        }
        if ranks_higher((h.offset, h.node_id), best) {
            best = (h.offset, h.node_id);
            winner = Some((peer, h.advertise));
        }
    }
    match winner {
        None => {
            // Nobody reachable outranks us: take over. The generation
            // bump is durable before the role flips writable.
            if service.promote_to_primary().is_ok() {
                service.metrics.record_sup_promotion();
            } else {
                // Meta persist failed — stay a replica and retry on the
                // next tick rather than go writable unfenced.
                sup.note_lease();
            }
        }
        Some((addr, advertise)) => {
            let hint = advertise.unwrap_or_else(|| addr.clone());
            sup.set_upstream(Some(addr));
            sup.set_primary_hint(Some(hint));
            // Grant the winner a full window to bump and take over.
            sup.note_lease();
        }
    }
}

/// Primary side: fence on replica silence, demote under a senior
/// generation, and un-fence only when the whole peer list is reachable
/// and quiet — an unreachable peer might be a promoted successor.
fn primary_tick(service: &Arc<Service>) {
    let sup = service.supervision();
    let repl = service.replication();
    if let Some(silence) = sup.replica_silence() {
        if silence >= sup.fence_window() && !sup.fenced() {
            sup.set_fenced(true);
            service.metrics.record_sup_fence();
        }
    }
    let peers = sup.peers();
    let mut all_reachable = true;
    let mut senior: Option<(String, Option<String>)> = None;
    for peer in &peers {
        match probe_health(peer, PROBE_TIMEOUT) {
            Some(h) if h.role_primary => {
                let outranked = h.generation > repl.generation()
                    || (h.generation == repl.generation()
                        && !h.fenced
                        && h.node_id < sup.node_id());
                if outranked {
                    senior = Some((peer.clone(), h.advertise));
                }
            }
            Some(_) => {}
            None => all_reachable = false,
        }
    }
    if let Some((addr, advertise)) = senior {
        let hint = advertise.unwrap_or_else(|| addr.clone());
        service.demote_to_replica(Some((addr, hint)));
        service.metrics.record_sup_demotion();
        return;
    }
    if sup.fenced() && all_reachable {
        let quiet = match sup.replica_silence() {
            None => true, // probation: no follower yet, nothing to lose a lease to
            Some(s) => s < sup.fence_window(),
        };
        if quiet {
            sup.set_fenced(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_prefers_offset_then_lowest_id() {
        // More acked history always wins…
        assert!(ranks_higher((100, 9), (50, 1)));
        assert!(!ranks_higher((50, 1), (100, 9)));
        // …ties break to the lowest node id…
        assert!(ranks_higher((100, 1), (100, 2)));
        assert!(!ranks_higher((100, 2), (100, 1)));
        // …and a candidate never outranks itself.
        assert!(!ranks_higher((100, 1), (100, 1)));
    }

    #[test]
    fn windows_order_fence_before_promote() {
        let sup = SupervisorState::new();
        sup.configure(&SupervisorConfig {
            lease_interval: Duration::from_millis(100),
            missed_leases: 3,
            node_id: 7,
            advertise: "127.0.0.1:7411".to_string(),
            peers: vec![],
        });
        assert_eq!(sup.fence_window(), Duration::from_millis(300));
        assert_eq!(sup.promote_window(), Duration::from_millis(500));
        assert!(sup.fence_window() < sup.promote_window());
        // Degenerate knobs are clamped, and the ordering survives.
        sup.configure(&SupervisorConfig {
            lease_interval: Duration::from_millis(0),
            missed_leases: 0,
            node_id: 7,
            advertise: "127.0.0.1:7411".to_string(),
            peers: vec![],
        });
        assert!(sup.lease_interval() >= MIN_LEASE_INTERVAL);
        assert!(sup.fence_window() < sup.promote_window());
    }

    #[test]
    fn lease_and_contact_clocks_track_notes() {
        let sup = SupervisorState::new();
        assert_eq!(sup.replica_silence(), None);
        sup.note_lease();
        assert!(sup.lease_age() < Duration::from_secs(5));
        sup.note_replica_contact();
        let silence = sup.replica_silence().expect("contact noted");
        assert!(silence < Duration::from_secs(5));
    }

    #[test]
    fn hint_falls_back_to_upstream_and_promotion_clears_topology() {
        let sup = SupervisorState::new();
        assert_eq!(sup.primary_hint(), None);
        sup.set_upstream(Some("10.0.0.1:7411".to_string()));
        assert_eq!(sup.primary_hint(), Some("10.0.0.1:7411".to_string()));
        sup.set_primary_hint(Some("10.0.0.2:7411".to_string()));
        assert_eq!(sup.primary_hint(), Some("10.0.0.2:7411".to_string()));
        *lock(&sup.advertise) = Some("10.0.0.3:7411".to_string());
        sup.set_fenced(true);
        sup.on_promoted();
        assert!(!sup.fenced());
        assert_eq!(sup.upstream(), None);
        assert_eq!(sup.primary_hint(), Some("10.0.0.3:7411".to_string()));
        assert_eq!(sup.replica_silence(), None);
    }

    #[test]
    fn probe_returns_none_for_unreachable_peers() {
        // Port 1 on localhost is essentially never listening.
        assert!(probe_health("127.0.0.1:1", Duration::from_millis(50)).is_none());
        assert!(probe_health("not an address", Duration::from_millis(50)).is_none());
    }
}
