//! # geacc-cli
//!
//! The `geacc` command-line tool: generate GEACC instances (synthetic or
//! Meetup-like), solve them with any of the paper's algorithms, validate
//! arrangements, and inspect instance statistics — all over a JSON
//! interchange format, so the library slots into shell pipelines:
//!
//! ```sh
//! geacc generate --kind meetup --city auckland --output city.json
//! geacc solve --input city.json --algorithm greedy --output plan.json
//! geacc validate --input city.json --arrangement plan.json
//! ```
//!
//! The crate is a thin shell around `geacc-core` / `geacc-datagen`; all
//! command logic lives in [`commands`] as testable functions, and
//! `src/main.rs` only handles process exit codes.

pub mod args;
pub mod commands;
pub mod io;

pub use args::{ArgError, ParsedArgs};
pub use commands::{run, run_tokens, CmdOutput, USAGE};
pub use io::{CliError, LoadError};
