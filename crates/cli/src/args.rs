//! Hand-rolled argument parsing (the workspace's dependency policy keeps
//! the tree to the vetted crates; a full CLI framework isn't warranted
//! for six subcommands).
//!
//! Grammar: `geacc <command> [--flag [value]]…`. Flags take at most one
//! value; repeated flags are an error; unknown flags are an error, so
//! typos fail loudly instead of silently running defaults.

use std::collections::BTreeMap;

/// Parsed command line: the subcommand and its flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// First positional token (`generate`, `solve`, …).
    pub command: String,
    flags: BTreeMap<String, Option<String>>,
}

/// A user-facing argument error (printed with usage, exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parse a raw token stream (without the program name).
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut tokens = tokens.into_iter().peekable();
        let command = tokens
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a command, got flag {command:?}"
            )));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = tokens.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            };
            if name.is_empty() {
                return Err(ArgError("empty flag name '--'".into()));
            }
            let value = match tokens.peek() {
                Some(next) if !next.starts_with("--") => tokens.next(),
                _ => None,
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{name} given more than once")));
            }
        }
        Ok(ParsedArgs { command, flags })
    }

    /// String value of `--name`, if the flag is present with a value.
    pub fn value(&self, name: &str) -> Result<Option<&str>, ArgError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(ArgError(format!("flag --{name} needs a value"))),
        }
    }

    /// Required string value of `--name`.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.value(name)?
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Whether bare `--name` is present (with or without value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Parsed value of `--name`, or `default` if absent.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.value(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgError(format!("invalid value for --{name}: {e}"))),
        }
    }

    /// Error unless every present flag is in `allowed` (typo guard).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{name} for command {:?} (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_and_flags() {
        let a = parse("solve --input x.json --algorithm greedy").unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.value("input").unwrap(), Some("x.json"));
        assert_eq!(a.required("algorithm").unwrap(), "greedy");
        assert_eq!(a.value("missing").unwrap(), None);
    }

    #[test]
    fn bare_flags_have_no_value() {
        let a = parse("solve --quiet --input x").unwrap();
        assert!(a.has("quiet"));
        assert!(a.value("quiet").is_err()); // present without value
    }

    #[test]
    fn values_never_start_with_dashes() {
        let a = parse("solve --quiet --verbose").unwrap();
        assert!(a.has("quiet") && a.has("verbose"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(parse("").is_err());
        assert!(parse("--flag").is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(parse("solve --x 1 --x 2").is_err());
    }

    #[test]
    fn stray_positional_is_an_error() {
        assert!(parse("solve input.json").is_err());
    }

    #[test]
    fn parsed_or_converts_and_defaults() {
        let a = parse("generate --events 50").unwrap();
        assert_eq!(a.parsed_or("events", 10usize).unwrap(), 50);
        assert_eq!(a.parsed_or("users", 10usize).unwrap(), 10);
        assert!(a.parsed_or("events", 0.5f64).is_ok());
        let bad = parse("generate --events fifty").unwrap();
        assert!(bad.parsed_or("events", 10usize).is_err());
    }

    #[test]
    fn expect_only_catches_typos() {
        let a = parse("solve --inptu x").unwrap();
        let err = a.expect_only(&["input", "algorithm"]).unwrap_err();
        assert!(err.0.contains("inptu"));
        assert!(a.expect_only(&["inptu"]).is_ok());
    }

    #[test]
    fn required_reports_flag_name() {
        let a = parse("solve").unwrap();
        assert!(a.required("input").unwrap_err().0.contains("--input"));
    }
}
