//! File I/O helpers: JSON instances and arrangements on disk, `-` for
//! stdin/stdout.
//!
//! Loading — including the [`LoadError`] classification carrying the
//! file path and the line/column serde_json blamed — lives in
//! [`geacc_core::loader`] and is shared with the server, so both
//! surfaces report malformed input identically. This module re-exports
//! it and adds the CLI-only pieces: [`CliError`] and output writing.

use std::io::Write;
use std::path::Path;

pub use geacc_core::loader::{load_arrangement, load_instance, read_input, LoadError};

/// A CLI-level error with a user-facing message (exit code 1).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<crate::args::ArgError> for CliError {
    fn from(e: crate::args::ArgError) -> Self {
        CliError(e.0)
    }
}

impl From<LoadError> for CliError {
    fn from(e: LoadError) -> Self {
        CliError(e.to_string())
    }
}

/// Write `content` to a file, or stdout when `path` is `-`.
pub fn write_output(path: &str, content: &str) -> Result<(), CliError> {
    if path == "-" {
        std::io::stdout()
            .write_all(content.as_bytes())
            .map_err(|e| CliError(format!("writing stdout: {e}")))
    } else {
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| CliError(format!("creating {}: {e}", parent.display())))?;
            }
        }
        std::fs::write(path, content).map_err(|e| CliError(format!("writing {path}: {e}")))
    }
}

/// Serialize any value as pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> Result<String, CliError> {
    serde_json::to_string_pretty(value).map_err(|e| CliError(format!("serializing: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(dir: &str, name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(dir).join(name);
        let path = path.to_string_lossy().into_owned();
        write_output(&path, content).unwrap();
        path
    }

    /// A valid 2-event, 1-user matrix instance as a JSON template the
    /// negative-path tests below mutate one field at a time.
    fn valid_instance_json() -> String {
        let inst = geacc_core::toy::table1_instance();
        to_json(&inst).unwrap()
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("geacc_cli_io_test");
        let path = dir.join("x.json").to_string_lossy().into_owned();
        write_output(&path, "{\"a\": 1}").unwrap();
        assert_eq!(read_input(&path).unwrap(), "{\"a\": 1}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error_reporting_the_path() {
        let err = read_input("/nonexistent/geacc/file.json").unwrap_err();
        assert!(matches!(err, LoadError::Io { .. }), "{err:?}");
        assert_eq!(err.path(), "/nonexistent/geacc/file.json");
        assert!(err.to_string().contains("/nonexistent/geacc/file.json"));
    }

    #[test]
    fn instance_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("geacc_cli_io_inst");
        let path = dir.join("toy.json").to_string_lossy().into_owned();
        let inst = geacc_core::toy::table1_instance();
        write_output(&path, &to_json(&inst).unwrap()).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(inst, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_json_is_a_syntax_error_with_position() {
        // Chop a valid instance file mid-token: an interrupted download.
        let full = valid_instance_json();
        let truncated = &full[..full.len() / 2];
        let path = write_tmp("geacc_cli_io_trunc", "cut.json", truncated);
        let err = load_instance(&path).unwrap_err();
        match &err {
            LoadError::Syntax { line, column, .. } => {
                assert!(*line >= 1 && *column >= 1, "{err}");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains(&path), "{msg}");
        assert!(msg.contains("invalid JSON"), "{msg}");
    }

    #[test]
    fn non_json_bytes_are_a_syntax_error() {
        let path = write_tmp("geacc_cli_io_bad", "bad.json", "{not json");
        assert!(matches!(
            load_instance(&path).unwrap_err(),
            LoadError::Syntax { .. }
        ));
        assert!(matches!(
            load_arrangement(&path).unwrap_err(),
            LoadError::Syntax { .. }
        ));
    }

    #[test]
    fn negative_capacity_is_an_invalid_value_error() {
        // Capacities are u32; a negative one is well-formed JSON that
        // cannot describe an instance.
        // Deserialization fails at the -3 itself, before any length
        // check, so the extra element doesn't matter.
        let json = valid_instance_json().replacen("\"user_caps\": [", "\"user_caps\": [-3,", 1);
        let path = write_tmp("geacc_cli_io_negcap", "neg.json", &json);
        let err = load_instance(&path).unwrap_err();
        assert!(matches!(err, LoadError::Invalid { .. }), "{err:?}");
        assert!(err.to_string().contains("invalid value"), "{err}");
    }

    #[test]
    fn out_of_range_similarity_is_an_invalid_value_error() {
        // The toy instance uses an explicit matrix; push one entry past 1.
        let json = valid_instance_json().replacen("0.9", "1.9", 1);
        assert_ne!(json, valid_instance_json(), "template lost its 0.9 probe");
        let path = write_tmp("geacc_cli_io_sim", "sim.json", &json);
        let err = load_instance(&path).unwrap_err();
        assert!(matches!(err, LoadError::Invalid { .. }), "{err:?}");
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn unknown_conflict_event_is_an_invalid_value_error() {
        // Point a conflict pair at an event id the instance doesn't have.
        let json = valid_instance_json();
        let mutated = json.replacen("\"pairs\": [", "\"pairs\": [[0, 99],", 1);
        assert_ne!(json, mutated, "template lost its conflict pair list");
        let path = write_tmp("geacc_cli_io_conf", "conf.json", &mutated);
        let err = load_instance(&path).unwrap_err();
        assert!(matches!(err, LoadError::Invalid { .. }), "{err:?}");
        assert!(err.to_string().contains("unknown event"), "{err}");
    }

    #[test]
    fn load_errors_convert_to_cli_errors_with_the_same_message() {
        let err = read_input("/nonexistent/geacc/file.json").unwrap_err();
        let msg = err.to_string();
        let cli: CliError = err.into();
        assert_eq!(cli.0, msg);
    }
}
