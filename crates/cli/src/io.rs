//! File I/O helpers: JSON instances and arrangements on disk, `-` for
//! stdin/stdout.

use geacc_core::{Arrangement, Instance};
use std::io::{Read, Write};
use std::path::Path;

/// A CLI-level error with a user-facing message (exit code 1).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<crate::args::ArgError> for CliError {
    fn from(e: crate::args::ArgError) -> Self {
        CliError(e.0)
    }
}

/// Read an entire file, or stdin when `path` is `-`.
pub fn read_input(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError(format!("reading stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))
    }
}

/// Write `content` to a file, or stdout when `path` is `-`.
pub fn write_output(path: &str, content: &str) -> Result<(), CliError> {
    if path == "-" {
        std::io::stdout()
            .write_all(content.as_bytes())
            .map_err(|e| CliError(format!("writing stdout: {e}")))
    } else {
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| CliError(format!("creating {}: {e}", parent.display())))?;
            }
        }
        std::fs::write(path, content).map_err(|e| CliError(format!("writing {path}: {e}")))
    }
}

/// Load a JSON instance.
pub fn load_instance(path: &str) -> Result<Instance, CliError> {
    let text = read_input(path)?;
    serde_json::from_str(&text).map_err(|e| CliError(format!("parsing instance {path}: {e}")))
}

/// Load a JSON arrangement.
pub fn load_arrangement(path: &str) -> Result<Arrangement, CliError> {
    let text = read_input(path)?;
    serde_json::from_str(&text).map_err(|e| CliError(format!("parsing arrangement {path}: {e}")))
}

/// Serialize any value as pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> Result<String, CliError> {
    serde_json::to_string_pretty(value).map_err(|e| CliError(format!("serializing: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("geacc_cli_io_test");
        let path = dir.join("x.json").to_string_lossy().into_owned();
        write_output(&path, "{\"a\": 1}").unwrap();
        assert_eq!(read_input(&path).unwrap(), "{\"a\": 1}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reports_path() {
        let err = read_input("/nonexistent/geacc/file.json").unwrap_err();
        assert!(err.0.contains("/nonexistent/geacc/file.json"));
    }

    #[test]
    fn instance_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("geacc_cli_io_inst");
        let path = dir.join("toy.json").to_string_lossy().into_owned();
        let inst = geacc_core::toy::table1_instance();
        write_output(&path, &to_json(&inst).unwrap()).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(inst, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_instance_is_a_clean_error() {
        let dir = std::env::temp_dir().join("geacc_cli_io_bad");
        let path = dir.join("bad.json").to_string_lossy().into_owned();
        write_output(&path, "{not json").unwrap();
        assert!(load_instance(&path).is_err());
        assert!(load_arrangement(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
