//! The `geacc` subcommands. Each returns its textual output so tests can
//! assert on it directly; `main` prints it.

use crate::args::ParsedArgs;
use crate::io::{load_arrangement, load_instance, to_json, write_output, CliError};
use geacc_core::algorithms::{self, Algorithm};
use geacc_core::engine::{self, SolveParams, SolverRegistry};
use geacc_core::parallel::Threads;
use geacc_core::runtime::{BudgetMeter, SolveBudget, SolverPipeline};
use geacc_datagen::{AttrDistribution, City, MeetupConfig, SyntheticConfig};
use std::time::{Duration, Instant};

/// A command's result: the text to print plus the process exit code.
///
/// Most commands exit `0` on success; budgeted `solve` maps its
/// [`SolveStatus`][geacc_core::SolveStatus] to the documented codes
/// (0 complete, 3 incumbent, 4 degraded, 5 timed out) so scripts can
/// branch on *how* an answer was produced without parsing text.
/// `CmdOutput` derefs to `str`, so test assertions read naturally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// The text `main` prints to stdout.
    pub text: String,
    /// The process exit code (`0` = fully successful).
    pub code: i32,
}

impl From<String> for CmdOutput {
    fn from(text: String) -> Self {
        CmdOutput { text, code: 0 }
    }
}

impl std::ops::Deref for CmdOutput {
    type Target = str;
    fn deref(&self) -> &str {
        &self.text
    }
}

impl std::fmt::Display for CmdOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Usage text for `geacc help` and argument errors.
pub const USAGE: &str = "\
geacc — conflict-aware event-participant arrangement (ICDE 2015)

USAGE:
  geacc generate [--kind synthetic|meetup] [--events N] [--users N] [--dim D]
                 [--attr-dist uniform|normal|zipf] [--conflict-ratio R]
                 [--city vancouver|auckland|singapore] [--seed S] [--output FILE]
  geacc solve    --input FILE [--algorithm greedy|mincostflow|prune|exhaustive|
                 exact-dp|random-v|random-u|alns] [--seed S] [--threads N]
                 [--output FILE] [--timeout-ms MS] [--max-nodes N]
                 [--on-timeout incumbent|greedy|alns|error]
  geacc validate --input FILE --arrangement FILE
  geacc stats    --input FILE
  geacc inspect  --input FILE --arrangement FILE [--top N] [--certify]
  geacc improve  --input FILE --arrangement FILE [--output FILE] [--max-passes N]
  geacc toy      [--output FILE]
  geacc serve    [--addr HOST:PORT] [--workers N] [--io-threads N]
                 [--queue-depth N]
                 [--default-timeout-ms MS] [--threads N] [--drift-ratio R]
                 [--wal-dir DIR] [--fsync always|never|interval:MS]
                 [--snapshot-every N] [--accept-replicas]
                 [--replica-of HOST:PORT] [--retry-after-ms MS]
                 [--supervise] [--lease-interval-ms MS] [--missed-leases N]
                 [--node-id N] [--advertise HOST:PORT] [--peers A,B,...]
  geacc promote  --addr HOST:PORT [--timeout-ms MS]
  geacc help

FILE may be '-' for stdin/stdout. Instances and arrangements are JSON.
--threads defaults to the GEACC_THREADS environment variable, then to the
host's available parallelism; it affects wall-clock only (greedy and the
exact search produce identical results at every thread count).

--seed (default 0) drives the stochastic solvers (random-v, random-u,
alns) and is echoed in every solve report line; an alns run is fully
reproduced by (instance, seed, --max-nodes) at any --threads.

--timeout-ms / --max-nodes bound the solve (wall clock / search-tree
nodes); either makes `solve` anytime: it always returns a feasible
arrangement and reports how it was produced. --on-timeout picks what a
budget stop yields: the solver's best incumbent (default), a greedy
fallback, `alns` (spend the same budget again refining the incumbent
with the adaptive large-neighborhood search — reported as degraded to
ALNS-GEACC only when it actually improves the arrangement), or an
error. Exit codes: 0 complete, 3 incumbent, 4 degraded to a fallback
algorithm, 5 timed out without an arrangement.

`serve` runs the long-lived arrangement daemon: newline-delimited JSON
over TCP (load/mutate/query_user/query_event/solve/snapshot/restore/
stats/shutdown — see DESIGN.md §10). It prints `listening on ADDR` once
bound, serves until a shutdown request, then prints final metrics.
--queue-depth bounds admitted-but-unserved requests; beyond it the
server answers structured `overloaded` errors instead of queueing.
--io-threads sets the poll event-loop threads multiplexing connections
(reads and health/stats are answered there, never queued behind
solves); --workers sets the pool executing the heavy ops.

--wal-dir makes the daemon durable: every load/mutate/solve is appended
to a checksummed write-ahead log before it is acknowledged, and restarts
recover the exact acked state (torn tails from a crash are truncated;
mid-log corruption refuses to boot, naming the byte offset). --fsync
picks the durability/throughput trade: `always` survives power loss,
`interval:MS` bounds loss to MS, `never` survives a process kill only.
--snapshot-every N rotates an atomic snapshot every N mutations so
recovery replays a short tail instead of the whole log.

--accept-replicas lets other daemons stream this one's WAL (requires
--wal-dir); --replica-of starts the daemon as a read-only follower of
that primary: it applies shipped records through the recovery path,
serves queries, and answers mutations with a `read_only` error.
`geacc promote` turns a follower into a primary (bumping its generation
so the old primary is fenced if it comes back). --retry-after-ms sets
the backoff hint attached to `overloaded` rejections.

--supervise adds automatic failover on top of replication: heartbeats
ride the replication stream, a follower that misses enough leases runs
a deterministic election (highest acked WAL offset wins, ties broken by
lowest --node-id), the winner bumps its generation durably before going
writable, and a resurrected stale primary fences itself and rejoins as
a replica — no human `promote` needed. --lease-interval-ms (default
500) and --missed-leases (default 3) tune detection speed; --peers
lists the *other* nodes each node probes during elections; --advertise
is the address handed to clients in `primary_hint` redirects (defaults
to the bound address). Requires --wal-dir, and --accept-replicas on a
primary.
";

/// Dispatch a parsed command line; returns the text to print plus the
/// exit code (only budgeted `solve` uses non-zero success codes).
pub fn run(args: &ParsedArgs) -> Result<CmdOutput, CliError> {
    match args.command.as_str() {
        "generate" => generate(args).map(Into::into),
        "solve" => solve(args),
        "validate" => validate(args).map(Into::into),
        "stats" => stats(args).map(Into::into),
        "inspect" => inspect(args).map(Into::into),
        "improve" => improve_cmd(args).map(Into::into),
        "toy" => toy(args).map(Into::into),
        "serve" => serve(args).map(Into::into),
        "promote" => promote(args).map(Into::into),
        "help" | "--help" => Ok(USAGE.to_string().into()),
        other => Err(CliError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn generate(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "kind",
        "events",
        "users",
        "dim",
        "attr-dist",
        "conflict-ratio",
        "city",
        "seed",
        "output",
    ])?;
    let kind = args.value("kind")?.unwrap_or("synthetic");
    let seed: u64 = args.parsed_or("seed", 0)?;
    let instance = match kind {
        "synthetic" => {
            let attr_dist = match args.value("attr-dist")?.unwrap_or("uniform") {
                "uniform" => AttrDistribution::Uniform,
                "normal" => AttrDistribution::Normal,
                "zipf" => AttrDistribution::Zipf { exponent: 1.3 },
                other => return Err(CliError(format!("unknown attr-dist {other:?}"))),
            };
            SyntheticConfig {
                num_events: args.parsed_or("events", 100)?,
                num_users: args.parsed_or("users", 1000)?,
                dim: args.parsed_or("dim", 20)?,
                attr_dist,
                conflict_ratio: args.parsed_or("conflict-ratio", 0.25)?,
                seed,
                ..SyntheticConfig::default()
            }
            .generate()
        }
        "meetup" => {
            let city = match args.value("city")?.unwrap_or("auckland") {
                "vancouver" => City::Vancouver,
                "auckland" => City::Auckland,
                "singapore" => City::Singapore,
                other => return Err(CliError(format!("unknown city {other:?}"))),
            };
            let mut config = MeetupConfig::new(city);
            config.conflict_ratio = args.parsed_or("conflict-ratio", 0.25)?;
            config.seed = seed;
            config.generate()
        }
        other => return Err(CliError(format!("unknown kind {other:?}"))),
    };
    let json = to_json(&instance)?;
    let output = args.value("output")?.unwrap_or("-");
    write_output(output, &json)?;
    Ok(format!(
        "generated {kind} instance: {} events, {} users, {} conflicting pairs → {output}",
        instance.num_events(),
        instance.num_users(),
        instance.conflicts().num_pairs()
    ))
}

fn parse_algorithm(name: &str, seed: u64) -> Result<Algorithm, CliError> {
    SolverRegistry::global()
        .parse(name, seed)
        .map_err(|e| CliError(e.to_string()))
}

/// Resolve the worker budget for commands that accept `--threads`:
/// explicit flag first, then `GEACC_THREADS`, then available parallelism.
fn threads_arg(args: &ParsedArgs) -> Result<Threads, CliError> {
    Ok(match args.value("threads")? {
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|e| CliError(format!("invalid value for --threads: {e}")))?;
            if n == 0 {
                return Err(CliError("--threads must be at least 1".into()));
            }
            Threads::new(n)
        }
        None => Threads::from_env(),
    })
}

fn solve(args: &ParsedArgs) -> Result<CmdOutput, CliError> {
    args.expect_only(&[
        "input",
        "algorithm",
        "seed",
        "threads",
        "output",
        "timeout-ms",
        "max-nodes",
        "on-timeout",
    ])?;
    let instance = load_instance(args.required("input")?)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let threads = threads_arg(args)?;
    let algorithm = parse_algorithm(args.value("algorithm")?.unwrap_or("greedy"), seed)?;
    let timeout_ms: Option<u64> = args
        .value("timeout-ms")?
        .map(|v| {
            v.parse()
                .map_err(|e| CliError(format!("invalid value for --timeout-ms: {e}")))
        })
        .transpose()?;
    let max_nodes: Option<u64> = args
        .value("max-nodes")?
        .map(|v| {
            v.parse()
                .map_err(|e| CliError(format!("invalid value for --max-nodes: {e}")))
        })
        .transpose()?;
    let on_timeout = args.value("on-timeout")?;
    if let Some(policy) = on_timeout {
        if !matches!(policy, "incumbent" | "greedy" | "alns" | "error") {
            return Err(CliError(format!(
                "unknown on-timeout policy {policy:?} (incumbent, greedy, alns, error)"
            )));
        }
        if timeout_ms.is_none() && max_nodes.is_none() {
            return Err(CliError(
                "--on-timeout needs a budget: pass --timeout-ms and/or --max-nodes".into(),
            ));
        }
    }
    if timeout_ms.is_some() || max_nodes.is_some() {
        return solve_budgeted_cmd(
            args,
            &instance,
            algorithm,
            threads,
            seed,
            SolveBudget {
                deadline: timeout_ms.map(Duration::from_millis),
                max_nodes,
                max_memory_bytes: None,
            },
            on_timeout.unwrap_or("incumbent"),
        );
    }
    if matches!(algorithm, Algorithm::Prune | Algorithm::Exhaustive)
        && instance.num_events() * instance.num_users() > 200
    {
        return Err(CliError(format!(
            "refusing to run the exact search on {} pairs (exponential) without a budget; \
             use greedy or mincostflow, or bound it with --timeout-ms/--max-nodes",
            instance.num_events() * instance.num_users()
        )));
    }
    // Exact-DP has its own size guard (state-space, not pair count);
    // surface its error cleanly instead of panicking inside the solver.
    if matches!(algorithm, Algorithm::ExactDp) {
        algorithms::dp_state_space(&instance).map_err(|e| CliError(e.to_string()))?;
    }
    let start = Instant::now();
    // One dispatch path for every algorithm: the engine registry over a
    // shared candidate graph, with an unlimited meter (bit-identical to
    // the classic meterless entry points). The worker budget reaches
    // graph construction and the parallel solvers; results are
    // identical at every thread count.
    let arrangement = engine::solve_instance(
        &instance,
        algorithm,
        &SolveParams {
            threads,
            seed,
            ..SolveParams::default()
        },
        &BudgetMeter::unlimited(),
    )
    .arrangement;
    let elapsed = start.elapsed();
    let violations = arrangement.validate(&instance);
    if !violations.is_empty() {
        return Err(CliError(format!(
            "internal error: infeasible output: {violations:?}"
        )));
    }
    if let Some(output) = args.value("output")? {
        write_output(output, &to_json(&arrangement)?)?;
    }
    Ok(format!(
        "{}: MaxSum {:.4}, {} pairs, {:.3?}, seed {seed}",
        algorithm.name(),
        arrangement.max_sum(),
        arrangement.len(),
        elapsed
    )
    .into())
}

/// The budgeted `solve` path: run the anytime pipeline, map its status
/// to an exit code, and honour the `--on-timeout` policy.
#[allow(clippy::too_many_arguments)]
fn solve_budgeted_cmd(
    args: &ParsedArgs,
    instance: &geacc_core::Instance,
    algorithm: Algorithm,
    threads: Threads,
    seed: u64,
    budget: SolveBudget,
    on_timeout: &str,
) -> Result<CmdOutput, CliError> {
    let mut pipeline = SolverPipeline::new(algorithm, budget)
        .with_threads(threads)
        .with_seed(seed)
        .degrade_on_stop(on_timeout == "greedy");
    if on_timeout == "alns" {
        // Spend the same budget again refining the stopped incumbent.
        pipeline = pipeline.with_alns_refine(budget);
    }
    let outcome = pipeline.run(instance);
    if on_timeout == "error" && !outcome.status.is_complete() {
        // The operator asked for all-or-nothing: report the stop
        // without writing a partial arrangement anywhere.
        return Ok(CmdOutput {
            text: format!(
                "{}: {} after {} nodes, {:.3?} — no arrangement written (--on-timeout error)",
                algorithm.name(),
                outcome.status.label(),
                outcome.nodes,
                outcome.elapsed
            ),
            code: 5,
        });
    }
    debug_assert!(outcome.arrangement.validate(instance).is_empty());
    if let Some(output) = args.value("output")? {
        write_output(output, &to_json(&outcome.arrangement)?)?;
    }
    let mut text = format!(
        "{}: MaxSum {:.4}, {} pairs, {:.3?}, {} nodes, seed {seed}, {}",
        algorithm.name(),
        outcome.arrangement.max_sum(),
        outcome.arrangement.len(),
        outcome.elapsed,
        outcome.nodes,
        outcome.status.label()
    );
    if let Some(alns) = &outcome.alns {
        // Anytime progress: how hard the destroy/repair search worked.
        text.push_str(&format!(
            " [alns: {} iterations, {} improvements]",
            alns.iterations, alns.improvements
        ));
    }
    Ok(CmdOutput {
        text,
        code: outcome.status.exit_code(),
    })
}

fn validate(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["input", "arrangement"])?;
    let instance = load_instance(args.required("input")?)?;
    let arrangement = load_arrangement(args.required("arrangement")?)?;
    let violations = arrangement.validate(&instance);
    if violations.is_empty() {
        Ok(format!(
            "feasible: {} pairs, MaxSum {:.4}",
            arrangement.len(),
            arrangement.max_sum()
        ))
    } else {
        let mut out = format!("INFEASIBLE: {} violation(s)\n", violations.len());
        for v in &violations {
            out.push_str(&format!("  - {v}\n"));
        }
        Err(CliError(out))
    }
}

fn stats(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["input"])?;
    let instance = load_instance(args.required("input")?)?;
    let mut out = String::new();
    out.push_str(&format!(
        "events: {} (capacity total {}, max {})\n",
        instance.num_events(),
        instance.total_event_capacity(),
        instance.max_event_capacity()
    ));
    out.push_str(&format!(
        "users:  {} (capacity total {}, max {})\n",
        instance.num_users(),
        instance.total_user_capacity(),
        instance.max_user_capacity()
    ));
    out.push_str(&format!(
        "conflicts: {} pairs (density {:.4})\n",
        instance.conflicts().num_pairs(),
        instance.conflicts().density()
    ));
    out.push_str(&format!("attribute dimensionality: {}\n", instance.dim()));
    out.push_str(&format!(
        "approximation ratios here: greedy ≥ 1/{}, mincostflow ≥ 1/{}\n",
        1 + instance.max_user_capacity(),
        instance.max_user_capacity().max(1)
    ));
    match instance.validate_paper_assumptions() {
        Ok(()) => out.push_str("paper assumptions: satisfied\n"),
        Err(e) => out.push_str(&format!("paper assumptions: VIOLATED — {e}\n")),
    }
    Ok(out)
}

fn inspect(args: &ParsedArgs) -> Result<String, CliError> {
    use geacc_core::model::ArrangementStats;
    args.expect_only(&["input", "arrangement", "top", "certify"])?;
    let instance = load_instance(args.required("input")?)?;
    let arrangement = load_arrangement(args.required("arrangement")?)?;
    let violations = arrangement.validate(&instance);
    if !violations.is_empty() {
        return Err(CliError(format!(
            "arrangement is infeasible for this instance ({} violations); run `geacc validate` for details",
            violations.len()
        )));
    }
    let stats = ArrangementStats::compute(&instance, &arrangement);
    let mut out = String::new();
    out.push_str(&format!(
        "MaxSum {:.4} over {} pairs (mean sim {:.4}, min {:.4})\n",
        stats.max_sum, stats.pairs, stats.mean_similarity, stats.min_similarity
    ));
    out.push_str(&format!(
        "seats filled {:.1}%, user slots filled {:.1}%\n",
        stats.seat_utilization * 100.0,
        stats.slot_utilization * 100.0
    ));
    out.push_str(&format!(
        "active: {}/{} events, {}/{} users ({} users unassigned)\n",
        stats.active_events,
        instance.num_events(),
        stats.active_users,
        instance.num_users(),
        stats.unassigned_users
    ));
    let top: usize = args.parsed_or("top", 5)?;
    let mut occupancy = ArrangementStats::occupancy(&instance, &arrangement);
    occupancy.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.push_str(&format!("top {top} events by attendance:\n"));
    for (v, attendees, capacity) in occupancy.into_iter().take(top) {
        out.push_str(&format!("  {v}: {attendees}/{capacity}\n"));
    }
    if args.has("certify") {
        // The relaxation bound needs a min-cost-flow solve — opt-in.
        let gap = geacc_core::algorithms::optimality_gap(&instance, &arrangement);
        out.push_str(&format!(
            "certified ≥ {:.1}% of optimal (upper bound {:.4} via conflict-free relaxation)\n",
            gap.certified_ratio * 100.0,
            gap.upper_bound
        ));
    }
    Ok(out)
}

fn improve_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    use geacc_core::algorithms::localsearch::{improve, LocalSearchConfig};
    args.expect_only(&["input", "arrangement", "output", "max-passes"])?;
    let instance = load_instance(args.required("input")?)?;
    let arrangement = load_arrangement(args.required("arrangement")?)?;
    let violations = arrangement.validate(&instance);
    if !violations.is_empty() {
        return Err(CliError(format!(
            "refusing to improve an infeasible arrangement ({} violations)",
            violations.len()
        )));
    }
    let before = arrangement.max_sum();
    let config = LocalSearchConfig {
        max_passes: args.parsed_or("max-passes", 32usize)?,
        ..LocalSearchConfig::default()
    };
    let start = Instant::now();
    let result = improve(&instance, arrangement, config);
    let elapsed = start.elapsed();
    debug_assert!(result.arrangement.validate(&instance).is_empty());
    if let Some(output) = args.value("output")? {
        write_output(output, &to_json(&result.arrangement)?)?;
    }
    Ok(format!(
        "local search: MaxSum {before:.4} → {:.4} ({} moves, {} passes, {elapsed:.3?})",
        result.arrangement.max_sum(),
        result.moves,
        result.passes
    ))
}

fn toy(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["output"])?;
    let instance = geacc_core::toy::table1_instance();
    if let Some(output) = args.value("output")? {
        write_output(output, &to_json(&instance)?)?;
    }
    let mut out = String::from("paper Table I toy instance\n");
    for algo in [Algorithm::Prune, Algorithm::Greedy, Algorithm::MinCostFlow] {
        let arrangement = engine::solve_instance(
            &instance,
            algo,
            &SolveParams::default(),
            &BudgetMeter::unlimited(),
        )
        .arrangement;
        out.push_str(&format!(
            "  {:<20} MaxSum {:.2}\n",
            algo.name(),
            arrangement.max_sum()
        ));
    }
    out.push_str("  (paper: optimal 4.39, greedy 4.28, min-cost-flow 4.13)\n");
    Ok(out)
}

fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "addr",
        "workers",
        "io-threads",
        "queue-depth",
        "default-timeout-ms",
        "threads",
        "drift-ratio",
        "wal-dir",
        "fsync",
        "snapshot-every",
        "accept-replicas",
        "replica-of",
        "retry-after-ms",
        "supervise",
        "lease-interval-ms",
        "missed-leases",
        "node-id",
        "advertise",
        "peers",
    ])?;
    let defaults = geacc_server::ServerConfig::default();
    let config = geacc_server::ServerConfig {
        addr: args.value("addr")?.unwrap_or(&defaults.addr).to_string(),
        workers: args.parsed_or("workers", defaults.workers)?,
        io_threads: args.parsed_or("io-threads", defaults.io_threads)?,
        queue_depth: args.parsed_or("queue-depth", defaults.queue_depth)?,
        default_timeout_ms: args.parsed_or("default-timeout-ms", defaults.default_timeout_ms)?,
        solve_threads: match args.value("threads")? {
            Some(n) => Threads::new(
                n.parse()
                    .map_err(|e| CliError(format!("invalid value for --threads: {e}")))?,
            ),
            None => Threads::from_env(),
        },
        drift_ratio: args.parsed_or("drift-ratio", defaults.drift_ratio)?,
        wal_dir: args.value("wal-dir")?.map(std::path::PathBuf::from),
        fsync: match args.value("fsync")? {
            Some(text) => geacc_server::FsyncPolicy::parse(text)
                .map_err(|e| CliError(format!("invalid value for --fsync: {e}")))?,
            None => defaults.fsync,
        },
        snapshot_every: match args.value("snapshot-every")? {
            Some(n) => Some(
                n.parse()
                    .map_err(|e| CliError(format!("invalid value for --snapshot-every: {e}")))?,
            ),
            None => defaults.snapshot_every,
        },
        accept_replicas: args.has("accept-replicas"),
        replica_of: args.value("replica-of")?.map(String::from),
        retry_after_ms: args.parsed_or("retry-after-ms", defaults.retry_after_ms)?,
        supervise: args.has("supervise"),
        lease_interval_ms: args.parsed_or("lease-interval-ms", defaults.lease_interval_ms)?,
        missed_leases: args.parsed_or("missed-leases", defaults.missed_leases)?,
        node_id: match args.value("node-id")? {
            Some(n) => Some(
                n.parse()
                    .map_err(|e| CliError(format!("invalid value for --node-id: {e}")))?,
            ),
            None => defaults.node_id,
        },
        advertise: args.value("advertise")?.map(String::from),
        peers: match args.value("peers")? {
            Some(list) => list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect(),
            None => Vec::new(),
        },
    };
    let server = geacc_server::Server::bind(config)
        .map_err(|e| CliError(format!("binding listener: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError(format!("resolving bound address: {e}")))?;
    if let Some(summary) = server.recovery_summary() {
        println!("{summary}");
    }
    if let Some(summary) = server.replication_summary() {
        println!("{summary}");
    }
    // Printed (and flushed) immediately, not via CmdOutput: clients and
    // the CI smoke stage wait on this line to learn the ephemeral port.
    println!("listening on {addr}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let metrics = server
        .run()
        .map_err(|e| CliError(format!("serving: {e}")))?;
    Ok(format!("server drained\n{}\n", to_json(&metrics)?))
}

fn promote(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["addr", "timeout-ms"])?;
    let addr = args.required("addr")?;
    let config = geacc_server::ClientConfig {
        request_timeout: std::time::Duration::from_millis(args.parsed_or("timeout-ms", 5_000u64)?),
        ..geacc_server::ClientConfig::default()
    };
    let mut client = geacc_server::RetryClient::new(addr.to_string(), config);
    let response = client
        .call(&serde_json::json!({"op": "promote"}))
        .map_err(|e| CliError(format!("promote against {addr}: {e}")))?;
    use geacc_server::protocol::{get, get_str, get_u64};
    let promoted = matches!(
        get(&response, "promoted"),
        Some(serde_json::Value::Bool(true))
    );
    let generation = get_u64(&response, "generation").unwrap_or(0);
    let role = get_str(&response, "role").unwrap_or("unknown");
    if promoted {
        Ok(format!(
            "promoted {addr} to primary (generation {generation})\n"
        ))
    } else {
        Ok(format!(
            "{addr} is already {role} (generation {generation}); nothing to do\n"
        ))
    }
}

/// Helper for tests and `main`: run from raw tokens.
pub fn run_tokens(tokens: impl IntoIterator<Item = String>) -> Result<CmdOutput, CliError> {
    let args = ParsedArgs::parse(tokens)?;
    run(&args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<CmdOutput, CliError> {
        run_tokens(s.split_whitespace().map(String::from))
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join("geacc_cli_cmd_tests")
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn toy_reports_golden_values() {
        let out = run_str("toy").unwrap();
        assert!(out.contains("4.39"));
        assert!(out.contains("4.28"));
        assert!(out.contains("4.13"));
    }

    #[test]
    fn generate_solve_validate_pipeline() {
        let inst = tmp("pipeline_instance.json");
        let arr = tmp("pipeline_arrangement.json");
        let out = run_str(&format!(
            "generate --kind synthetic --events 8 --users 30 --seed 3 --output {inst}"
        ))
        .unwrap();
        assert!(out.contains("8 events"));
        let out = run_str(&format!(
            "solve --input {inst} --algorithm greedy --output {arr}"
        ))
        .unwrap();
        assert!(out.contains("Greedy-GEACC"));
        let out = run_str(&format!("validate --input {inst} --arrangement {arr}")).unwrap();
        assert!(out.contains("feasible"));
    }

    #[test]
    fn stats_reports_shape() {
        let inst = tmp("stats_instance.json");
        run_str(&format!("generate --events 5 --users 12 --output {inst}")).unwrap();
        let out = run_str(&format!("stats --input {inst}")).unwrap();
        assert!(out.contains("events: 5"));
        assert!(out.contains("users:  12"));
        assert!(out.contains("paper assumptions"));
    }

    #[test]
    fn meetup_generation() {
        let inst = tmp("meetup_instance.json");
        let out = run_str(&format!(
            "generate --kind meetup --city auckland --output {inst}"
        ))
        .unwrap();
        assert!(out.contains("37 events"));
    }

    #[test]
    fn exact_search_is_size_guarded() {
        let inst = tmp("guard_instance.json");
        run_str(&format!("generate --events 50 --users 100 --output {inst}")).unwrap();
        let err = run_str(&format!("solve --input {inst} --algorithm prune")).unwrap_err();
        assert!(err.0.contains("refusing"));
    }

    #[test]
    fn unknown_things_error_cleanly() {
        assert!(run_str("frobnicate").is_err());
        assert!(run_str("generate --kind cube").is_err());
        assert!(run_str("generate --city atlantis --kind meetup").is_err());
        let inst = tmp("err_instance.json");
        run_str(&format!("generate --events 4 --users 8 --output {inst}")).unwrap();
        assert!(run_str(&format!("solve --input {inst} --algorithm magic")).is_err());
    }

    #[test]
    fn validate_rejects_mismatched_arrangement() {
        let inst_a = tmp("va_instance.json");
        let inst_b = tmp("vb_instance.json");
        let arr_b = tmp("vb_arrangement.json");
        run_str(&format!(
            "generate --events 4 --users 10 --seed 1 --output {inst_a}"
        ))
        .unwrap();
        run_str(&format!(
            "generate --events 9 --users 25 --seed 2 --output {inst_b}"
        ))
        .unwrap();
        run_str(&format!("solve --input {inst_b} --output {arr_b}")).unwrap();
        // Arrangement for B validated against A: shape mismatch ⇒ error.
        assert!(run_str(&format!("validate --input {inst_a} --arrangement {arr_b}")).is_err());
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_str("help").unwrap().contains("USAGE"));
    }

    #[test]
    fn improve_lifts_a_random_arrangement() {
        let inst = tmp("improve_instance.json");
        let arr = tmp("improve_arrangement.json");
        let better = tmp("improve_better.json");
        run_str(&format!(
            "generate --events 6 --users 20 --seed 4 --output {inst}"
        ))
        .unwrap();
        run_str(&format!(
            "solve --input {inst} --algorithm random-v --seed 3 --output {arr}"
        ))
        .unwrap();
        let out = run_str(&format!(
            "improve --input {inst} --arrangement {arr} --output {better}"
        ))
        .unwrap();
        assert!(out.contains("local search"));
        assert!(
            run_str(&format!("validate --input {inst} --arrangement {better}"))
                .unwrap()
                .contains("feasible")
        );
    }

    #[test]
    fn improve_refuses_infeasible_input() {
        let inst_a = tmp("imp_a.json");
        let inst_b = tmp("imp_b.json");
        let arr_b = tmp("imp_b_arr.json");
        run_str(&format!(
            "generate --events 3 --users 8 --seed 1 --output {inst_a}"
        ))
        .unwrap();
        run_str(&format!(
            "generate --events 9 --users 30 --seed 2 --output {inst_b}"
        ))
        .unwrap();
        run_str(&format!("solve --input {inst_b} --output {arr_b}")).unwrap();
        assert!(run_str(&format!("improve --input {inst_a} --arrangement {arr_b}")).is_err());
    }

    #[test]
    fn inspect_summarizes_an_arrangement() {
        let inst = tmp("inspect_instance.json");
        let arr = tmp("inspect_arrangement.json");
        run_str(&format!("generate --events 6 --users 20 --output {inst}")).unwrap();
        run_str(&format!("solve --input {inst} --output {arr}")).unwrap();
        let out = run_str(&format!(
            "inspect --input {inst} --arrangement {arr} --top 3"
        ))
        .unwrap();
        assert!(out.contains("MaxSum"));
        assert!(out.contains("seats filled"));
        assert!(out.contains("top 3 events"));
    }

    #[test]
    fn inspect_certify_reports_a_ratio() {
        let inst = tmp("certify_instance.json");
        let arr = tmp("certify_arrangement.json");
        run_str(&format!("generate --events 5 --users 15 --output {inst}")).unwrap();
        run_str(&format!("solve --input {inst} --output {arr}")).unwrap();
        let out = run_str(&format!(
            "inspect --input {inst} --arrangement {arr} --certify"
        ))
        .unwrap();
        assert!(out.contains("certified"), "{out}");
        assert!(out.contains("% of optimal"));
    }

    #[test]
    fn inspect_rejects_infeasible_arrangement() {
        let inst_a = tmp("inspect_a.json");
        let inst_b = tmp("inspect_b.json");
        let arr_b = tmp("inspect_b_arr.json");
        run_str(&format!(
            "generate --events 3 --users 9 --seed 5 --output {inst_a}"
        ))
        .unwrap();
        run_str(&format!(
            "generate --events 7 --users 30 --seed 6 --output {inst_b}"
        ))
        .unwrap();
        run_str(&format!("solve --input {inst_b} --output {arr_b}")).unwrap();
        assert!(run_str(&format!("inspect --input {inst_a} --arrangement {arr_b}")).is_err());
    }

    #[test]
    fn solve_threads_flag_is_accepted_and_validated() {
        let inst = tmp("threads_instance.json");
        run_str(&format!(
            "generate --events 3 --users 6 --seed 9 --output {inst}"
        ))
        .unwrap();
        let one = run_str(&format!(
            "solve --input {inst} --algorithm prune --threads 1"
        ))
        .unwrap();
        let four = run_str(&format!(
            "solve --input {inst} --algorithm prune --threads 4"
        ))
        .unwrap();
        // Same MaxSum printed at every thread count.
        let max_sum = |s: &str| {
            s.split("MaxSum ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .to_owned()
        };
        assert_eq!(max_sum(&one), max_sum(&four));
        let greedy_out = run_str(&format!(
            "solve --input {inst} --algorithm greedy --threads 2"
        ))
        .unwrap();
        assert!(greedy_out.contains("Greedy-GEACC"));
        assert!(run_str(&format!("solve --input {inst} --threads 0")).is_err());
        assert!(run_str(&format!("solve --input {inst} --threads two")).is_err());
    }

    #[test]
    fn budgeted_solve_returns_incumbent_with_exit_code_3() {
        let inst = tmp("budget_incumbent.json");
        run_str(&format!(
            "generate --events 3 --users 6 --seed 9 --output {inst}"
        ))
        .unwrap();
        let out = run_str(&format!(
            "solve --input {inst} --algorithm prune --max-nodes 0"
        ))
        .unwrap();
        assert_eq!(out.code, 3, "{}", out.text);
        assert!(out.contains("incumbent"), "{}", out.text);
        assert!(out.contains("node budget"), "{}", out.text);
    }

    #[test]
    fn budgeted_solve_on_timeout_greedy_degrades_with_exit_code_4() {
        let inst = tmp("budget_greedy.json");
        run_str(&format!(
            "generate --events 3 --users 6 --seed 9 --output {inst}"
        ))
        .unwrap();
        let out = run_str(&format!(
            "solve --input {inst} --algorithm prune --max-nodes 0 --on-timeout greedy"
        ))
        .unwrap();
        assert_eq!(out.code, 4, "{}", out.text);
        assert!(out.contains("degraded to Greedy-GEACC"), "{}", out.text);
    }

    #[test]
    fn budgeted_solve_on_timeout_error_exits_5_without_writing() {
        let inst = tmp("budget_error.json");
        let arr = tmp("budget_error_arr.json");
        let _ = std::fs::remove_file(&arr);
        run_str(&format!(
            "generate --events 3 --users 6 --seed 9 --output {inst}"
        ))
        .unwrap();
        let out = run_str(&format!(
            "solve --input {inst} --algorithm prune --max-nodes 0 --on-timeout error --output {arr}"
        ))
        .unwrap();
        assert_eq!(out.code, 5, "{}", out.text);
        assert!(out.contains("no arrangement written"), "{}", out.text);
        assert!(!std::path::Path::new(&arr).exists());
    }

    #[test]
    fn budgeted_solve_completing_within_budget_exits_0() {
        let inst = tmp("budget_complete.json");
        run_str(&format!(
            "generate --events 3 --users 6 --seed 9 --output {inst}"
        ))
        .unwrap();
        let out = run_str(&format!(
            "solve --input {inst} --algorithm greedy --timeout-ms 60000"
        ))
        .unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.contains("feasible (complete)"), "{}", out.text);
    }

    #[test]
    fn on_timeout_needs_a_budget_and_a_known_policy() {
        let inst = tmp("budget_flags.json");
        run_str(&format!(
            "generate --events 3 --users 6 --seed 9 --output {inst}"
        ))
        .unwrap();
        let err = run_str(&format!("solve --input {inst} --on-timeout greedy")).unwrap_err();
        assert!(err.0.contains("needs a budget"), "{}", err.0);
        let err = run_str(&format!(
            "solve --input {inst} --max-nodes 5 --on-timeout shrug"
        ))
        .unwrap_err();
        assert!(err.0.contains("on-timeout policy"), "{}", err.0);
        assert!(run_str(&format!("solve --input {inst} --timeout-ms abc")).is_err());
        assert!(run_str(&format!("solve --input {inst} --max-nodes -1")).is_err());
    }

    #[test]
    fn budget_lifts_the_exact_search_size_guard() {
        // 50×100 pairs is refused unbudgeted (see
        // `exact_search_is_size_guarded`) but fine under a node budget:
        // the solve becomes anytime instead of exponential.
        let inst = tmp("budget_guard.json");
        run_str(&format!("generate --events 50 --users 100 --output {inst}")).unwrap();
        let out = run_str(&format!(
            "solve --input {inst} --algorithm prune --max-nodes 1000"
        ))
        .unwrap();
        assert_eq!(out.code, 3, "{}", out.text);
        assert!(out.contains("incumbent"), "{}", out.text);
    }

    #[test]
    fn solve_algorithms_all_work_on_small_instances() {
        // 3×6 keeps the exact algorithms sub-second even with the CLI's
        // default capacity distributions (c_v up to 50).
        let inst = tmp("algos_instance.json");
        run_str(&format!("generate --events 3 --users 6 --output {inst}")).unwrap();
        for algo in [
            "greedy",
            "mincostflow",
            "prune",
            "exhaustive",
            "random-v",
            "random-u",
            "alns",
        ] {
            let out = run_str(&format!("solve --input {inst} --algorithm {algo}")).unwrap();
            assert!(out.contains("MaxSum"), "{algo}: {out}");
        }
    }

    #[test]
    fn alns_solve_echoes_the_seed_and_reproduces_per_seed() {
        let inst = tmp("alns_instance.json");
        run_str(&format!(
            "generate --events 6 --users 24 --seed 2 --output {inst}"
        ))
        .unwrap();
        let max_sum = |s: &str| {
            s.split("MaxSum ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .to_owned()
        };
        let a = run_str(&format!("solve --input {inst} --algorithm alns --seed 7")).unwrap();
        let b = run_str(&format!("solve --input {inst} --algorithm alns --seed 7")).unwrap();
        assert!(a.contains("ALNS-GEACC"), "{}", a.text);
        assert!(a.contains("seed 7"), "{}", a.text);
        assert_eq!(max_sum(&a), max_sum(&b), "same seed, same MaxSum");
        // The default seed is 0 and is echoed too.
        let d = run_str(&format!("solve --input {inst} --algorithm alns")).unwrap();
        assert!(d.contains("seed 0"), "{}", d.text);
    }

    #[test]
    fn on_timeout_alns_refines_or_keeps_the_stopped_incumbent() {
        let inst = tmp("alns_policy_instance.json");
        run_str(&format!(
            "generate --events 10 --users 40 --seed 6 --output {inst}"
        ))
        .unwrap();
        let out = run_str(&format!(
            "solve --input {inst} --algorithm prune --max-nodes 50 --on-timeout alns"
        ))
        .unwrap();
        // Either ALNS improved the incumbent (degraded-to attribution,
        // exit 4) or it could not (the primary's incumbent, exit 3).
        assert!(
            out.code == 3 || out.code == 4,
            "{} (code {})",
            out.text,
            out.code
        );
        if out.code == 4 {
            assert!(out.contains("degraded to ALNS-GEACC"), "{}", out.text);
        } else {
            assert!(out.contains("incumbent"), "{}", out.text);
        }
    }
}
