//! Binary entry point for the `geacc` CLI. See [`geacc_cli`] for the
//! command surface; this shim only maps results to exit codes
//! (2 = bad arguments, 1 = runtime failure, and for budgeted solves
//! 3 = incumbent, 4 = degraded, 5 = timed out).

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    if tokens.is_empty() {
        eprint!("{}", geacc_cli::USAGE);
        std::process::exit(2);
    }
    let parsed = match geacc_cli::ParsedArgs::parse(tokens) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", geacc_cli::USAGE);
            std::process::exit(2);
        }
    };
    match geacc_cli::run(&parsed) {
        Ok(output) => {
            println!("{output}");
            if output.code != 0 {
                std::process::exit(output.code);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
