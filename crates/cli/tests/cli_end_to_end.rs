//! End-to-end CLI tests driving the actual command dispatch (the same
//! code path `main` uses), over real temp files — the closest thing to
//! shelling out without depending on the compiled binary's location.

use geacc_cli::run_tokens;

fn run(s: &str) -> Result<geacc_cli::CmdOutput, geacc_cli::CliError> {
    run_tokens(s.split_whitespace().map(String::from))
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("geacc_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn full_operator_workflow() {
    let inst = tmp("wf_instance.json");
    let plan = tmp("wf_plan.json");

    // 1. Generate a city.
    let out = run(&format!(
        "generate --kind meetup --city singapore --conflict-ratio 0.5 --output {inst}"
    ))
    .unwrap();
    assert!(out.contains("87 events"));

    // 2. Inspect the instance.
    let out = run(&format!("stats --input {inst}")).unwrap();
    assert!(out.contains("events: 87"));
    assert!(out.contains("users:  1500"));

    // 3. Solve it.
    let out = run(&format!(
        "solve --input {inst} --algorithm greedy --output {plan}"
    ))
    .unwrap();
    assert!(out.contains("Greedy-GEACC"));

    // 4. Validate + inspect the arrangement.
    assert!(
        run(&format!("validate --input {inst} --arrangement {plan}"))
            .unwrap()
            .contains("feasible")
    );
    let out = run(&format!(
        "inspect --input {inst} --arrangement {plan} --top 3"
    ))
    .unwrap();
    assert!(out.contains("MaxSum"));
}

#[test]
fn solve_algorithms_agree_on_quality_ordering() {
    // Tiny on purpose: `prune`/`exhaustive` run here, and the CLI's
    // default generator capacities (c_v ~ U[1,50]) make the exact search
    // blow up beyond a handful of events/users.
    let inst = tmp("ord_instance.json");
    run(&format!(
        "generate --events 3 --users 6 --seed 9 --output {inst}"
    ))
    .unwrap();
    let extract = |s: &str| -> f64 {
        let idx = s.find("MaxSum").unwrap();
        s[idx + 7..]
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };
    let opt = extract(&run(&format!("solve --input {inst} --algorithm prune")).unwrap());
    let dp = extract(&run(&format!("solve --input {inst} --algorithm exact-dp")).unwrap());
    let grd = extract(&run(&format!("solve --input {inst} --algorithm greedy")).unwrap());
    let mcf = extract(&run(&format!("solve --input {inst} --algorithm mincostflow")).unwrap());
    assert!((opt - dp).abs() < 1e-9, "two exact algorithms disagree");
    assert!(opt + 1e-9 >= grd);
    assert!(opt + 1e-9 >= mcf);
}

#[test]
fn generate_accepts_every_attr_dist() {
    for dist in ["uniform", "normal", "zipf"] {
        let inst = tmp(&format!("dist_{dist}.json"));
        let out = run(&format!(
            "generate --events 4 --users 10 --attr-dist {dist} --output {inst}"
        ))
        .unwrap();
        assert!(out.contains("4 events"), "{dist}");
    }
}

#[test]
fn stdout_output_works() {
    // `--output -` writes JSON to stdout (captured by the test harness);
    // the command must still succeed and report.
    let out = run("toy").unwrap();
    assert!(out.contains("Table I"));
}

#[test]
fn pathological_exact_search_respects_a_small_deadline() {
    // Branch-and-bound's worst case: similarities concentrated in a
    // narrow band (the Lemma 6 bound stays tight, so almost nothing
    // prunes), a dense conflict graph, and large user capacities (deep
    // search tree). Unbudgeted this runs for geological time; with
    // --timeout-ms 100 the CLI must hand back a feasible incumbent
    // well inside a second.
    use geacc_core::{ConflictGraph, EventId, Instance, SimMatrix};
    let (nv, nu) = (8usize, 24usize);
    let values: Vec<f64> = (0..nv * nu)
        .map(|i| 0.55 + 0.01 * ((i * 37 % 97) as f64 / 97.0))
        .collect();
    let matrix = SimMatrix::from_flat(nv, nu, values);
    let conflicts = ConflictGraph::from_pairs(
        nv,
        (0..nv as u32).flat_map(|i| {
            (i + 1..nv as u32)
                .filter(move |j| (i * 7 + j * 13) % 3 != 0)
                .map(move |j| (EventId(i), EventId(j)))
        }),
    );
    let instance = Instance::from_matrix(matrix, vec![6; nv], vec![8; nu], conflicts).unwrap();
    let path = tmp("pathological.json");
    std::fs::write(&path, serde_json::to_string_pretty(&instance).unwrap()).unwrap();

    let started = std::time::Instant::now();
    let out = run(&format!(
        "solve --input {path} --algorithm prune --timeout-ms 100"
    ))
    .unwrap();
    let wall = started.elapsed();
    assert!(
        wall < std::time::Duration::from_secs(1),
        "deadline overrun: {wall:?}"
    );
    assert_eq!(out.code, 3, "{}", out.text);
    assert!(out.contains("incumbent"), "{}", out.text);

    // The same stop under --on-timeout greedy degrades instead.
    let out = run(&format!(
        "solve --input {path} --algorithm prune --timeout-ms 100 --on-timeout greedy"
    ))
    .unwrap();
    assert_eq!(out.code, 4, "{}", out.text);

    // Whatever came back must validate against the instance.
    let plan = tmp("pathological_plan.json");
    run(&format!(
        "solve --input {path} --algorithm prune --timeout-ms 100 --output {plan}"
    ))
    .unwrap();
    assert!(
        run(&format!("validate --input {path} --arrangement {plan}"))
            .unwrap()
            .contains("feasible")
    );
}

#[test]
fn errors_use_distinct_channels() {
    // Argument errors vs runtime errors both surface as Err with
    // readable messages.
    let e = run("solve").unwrap_err();
    assert!(e.0.contains("--input"));
    let e = run("solve --input /nonexistent.json").unwrap_err();
    assert!(e.0.contains("/nonexistent.json"));
}
