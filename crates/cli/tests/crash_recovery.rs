//! Kill-injection test: boot the real `geacc serve` binary with a WAL,
//! stream mutations over TCP, `kill -9` it mid-stream, restart on the
//! same directory, and check the durability contract:
//!
//! - the restart never crashes, whatever the kill left on disk (torn
//!   tails are truncated, the valid prefix replays);
//! - the recovered epoch `E` satisfies `acked ≤ E ≤ sent` — under
//!   `--fsync always` every acked mutation is durable, and nothing the
//!   client never sent can appear;
//! - the recovered state is bit-identical to replaying the first `E`
//!   mutations through a local [`IncrementalArranger`] — the recovered
//!   log is exactly a prefix of the sent stream.

use geacc_core::{toy, DynamicConfig, IncrementalArranger, Mutation, Side, UserId};
use geacc_server::protocol;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A running `geacc serve` child, killed on drop so a failing assert
/// never leaks a daemon.
struct ServerProc {
    child: Child,
    addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server(wal_dir: &Path, fsync: &str, extra: &[&str]) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_geacc"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--fsync",
            fsync,
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning geacc serve");
    // The server prints (optionally) a recovery line, then
    // `listening on ADDR`; wait for the latter to learn the port.
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) if line.starts_with("listening on ") => {
                break line["listening on ".len()..].to_string();
            }
            Some(Ok(_)) => continue,
            other => panic!("server exited before listening: {other:?}"),
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    ServerProc { child, addr }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connecting to server");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Send one request line; `None` if the connection died mid-write.
    fn send(&mut self, line: &str) -> Option<()> {
        self.writer.write_all(line.as_bytes()).ok()?;
        self.writer.write_all(b"\n").ok()?;
        self.writer.flush().ok()
    }

    /// Read one response; `None` on EOF/error (the server was killed).
    fn recv(&mut self) -> Option<Value> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => serde_json::from_str(&line).ok(),
        }
    }

    fn call(&mut self, line: &str) -> Option<Value> {
        self.send(line)?;
        self.recv()
    }
}

fn is_ok(response: &Value) -> bool {
    protocol::get(response, "ok") == Some(&Value::Bool(true))
}

fn data<'a>(response: &'a Value, key: &str) -> &'a Value {
    protocol::get(response, "data")
        .and_then(|d| protocol::get(d, key))
        .unwrap_or_else(|| panic!("response missing data.{key}"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("geacc-crash-recovery").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic mutation stream: capacity churn that always
/// applies, so `epoch == mutations applied == WAL mutation records`.
fn mutation_stream(num_users: u64) -> impl Iterator<Item = Mutation> {
    (0u64..).map(move |i| Mutation::SetCapacity {
        side: Side::User,
        id: (i % num_users) as u32,
        capacity: 1 + (i % 3) as u32,
    })
}

#[test]
fn kill_nine_mid_stream_recovers_the_acked_prefix() {
    let dir = tmp_dir("kill-mid-stream");
    let server = start_server(&dir, "always", &[]);
    let mut client = Client::connect(&server.addr);

    let instance = toy::table1_instance();
    let loaded = client
        .call(&format!(
            r#"{{"op": "load", "instance": {}}}"#,
            serde_json::to_string(&instance).unwrap()
        ))
        .expect("load must be acked");
    assert!(is_ok(&loaded), "load failed: {loaded:?}");
    let num_users = protocol::as_u64(data(&loaded, "num_users")).unwrap();

    // Kill the server ~80 ms into the stream — mid-append under
    // `--fsync always` pacing. `/bin/kill -9` delivers SIGKILL: no
    // drain, no destructors, whatever the WAL holds is what recovery
    // gets.
    let pid = server.child.id().to_string();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(80));
        let _ = Command::new("kill").args(["-9", &pid]).status();
    });

    let mutations: Vec<Mutation> = mutation_stream(num_users).take(200_000).collect();
    let (mut sent, mut acked) = (0u64, 0u64);
    for mutation in &mutations {
        let line = format!(
            r#"{{"op": "mutate", "mutation": {}}}"#,
            serde_json::to_string(mutation).unwrap()
        );
        if client.send(&line).is_none() {
            break;
        }
        sent += 1;
        match client.recv() {
            Some(r) if is_ok(&r) => acked += 1,
            Some(r) => panic!("SetCapacity must never fail: {r:?}"),
            None => break, // killed between our write and its ack
        }
    }
    killer.join().unwrap();
    drop(client);
    assert!(
        acked < mutations.len() as u64,
        "the kill must land mid-stream; all {acked} mutations were acked first"
    );

    // Restart on the same directory: boot must succeed whatever the
    // kill tore, and the recovered epoch must cover every acked record.
    let server2 = start_server(&dir, "always", &[]);
    let mut client2 = Client::connect(&server2.addr);
    let stats = client2
        .call(r#"{"op": "stats"}"#)
        .expect("stats after recovery");
    assert!(is_ok(&stats), "stats failed: {stats:?}");
    let epoch =
        protocol::get_u64(data(&stats, "arranger"), "epoch").expect("recovered arranger epoch");
    assert!(
        epoch >= acked,
        "acked mutations lost: acked {acked}, recovered epoch {epoch}"
    );
    assert!(
        epoch <= sent,
        "recovered epoch {epoch} exceeds the {sent} mutations ever sent"
    );

    // The recovered state must be bit-identical to replaying the first
    // `epoch` mutations locally: same MaxSum bits, same assignments.
    let mut local = IncrementalArranger::new(
        instance.clone(),
        DynamicConfig {
            rebuild_drift_ratio: 0.2,
        },
    );
    for mutation in &mutations[..epoch as usize] {
        local
            .apply(mutation.clone())
            .expect("SetCapacity replays cleanly");
    }
    let recovered_max_sum: f64 = serde_json::from_value(
        protocol::get(data(&stats, "arranger"), "max_sum")
            .unwrap()
            .clone(),
    )
    .unwrap();
    assert_eq!(
        recovered_max_sum.to_bits(),
        local.max_sum().to_bits(),
        "recovered MaxSum {} != local replay {}",
        recovered_max_sum,
        local.max_sum()
    );
    for user in 0..num_users {
        let response = client2
            .call(&format!(r#"{{"op": "query_user", "user": {user}}}"#))
            .expect("query_user after recovery");
        assert!(is_ok(&response), "query_user failed: {response:?}");
        let events = match data(&response, "events") {
            Value::Array(events) => events,
            other => panic!("events must be an array, got {other:?}"),
        };
        let served: Vec<u64> = events
            .iter()
            .map(|e| protocol::get_u64(e, "event").unwrap())
            .collect();
        let expected: Vec<u64> = local
            .arrangement()
            .events_of(UserId(user as u32))
            .iter()
            .map(|v| v.0 as u64)
            .collect();
        assert_eq!(served, expected, "user {user} assignments diverged");
    }

    // Recovery surfaced its own counters.
    let recovered = protocol::get_u64(data(&stats, "server"), "recovered_records").unwrap();
    assert_eq!(
        recovered,
        epoch + 1,
        "replayed records = load + {epoch} mutations"
    );

    // Clean shutdown of the recovered server still works.
    let bye = client2.call(r#"{"op": "shutdown"}"#).unwrap();
    assert!(is_ok(&bye));
    drop(server2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_nine_with_snapshots_recovers_via_the_fast_path() {
    let dir = tmp_dir("kill-with-snapshots");
    let server = start_server(&dir, "always", &["--snapshot-every", "16"]);
    let mut client = Client::connect(&server.addr);

    let instance = toy::table1_instance();
    let loaded = client
        .call(&format!(
            r#"{{"op": "load", "instance": {}}}"#,
            serde_json::to_string(&instance).unwrap()
        ))
        .unwrap();
    assert!(is_ok(&loaded));
    let num_users = protocol::as_u64(data(&loaded, "num_users")).unwrap();

    // Enough acked mutations to rotate several snapshots, then kill.
    let mutations: Vec<Mutation> = mutation_stream(num_users).take(100).collect();
    for mutation in &mutations {
        let r = client
            .call(&format!(
                r#"{{"op": "mutate", "mutation": {}}}"#,
                serde_json::to_string(mutation).unwrap()
            ))
            .unwrap();
        assert!(is_ok(&r), "mutate failed: {r:?}");
    }
    let pid = server.child.id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    drop(client);
    drop(server);

    let snapshot = dir.join("snapshot.json");
    assert!(snapshot.exists(), "a snapshot must have rotated");

    let server2 = start_server(&dir, "always", &["--snapshot-every", "16"]);
    let mut client2 = Client::connect(&server2.addr);
    let stats = client2.call(r#"{"op": "stats"}"#).unwrap();
    assert!(is_ok(&stats));
    let epoch = protocol::get_u64(data(&stats, "arranger"), "epoch").unwrap();
    assert_eq!(epoch, 100, "every acked mutation recovered");
    // The fast path replays only the tail past the last snapshot, not
    // the whole history.
    let replayed = protocol::get_u64(data(&stats, "server"), "recovered_records").unwrap();
    assert!(
        replayed < 101,
        "snapshot fast path must not replay the full log ({replayed} records)"
    );

    let mut local = IncrementalArranger::new(
        instance,
        DynamicConfig {
            rebuild_drift_ratio: 0.2,
        },
    );
    for mutation in &mutations {
        local.apply(mutation.clone()).unwrap();
    }
    let recovered_max_sum: f64 = serde_json::from_value(
        protocol::get(data(&stats, "arranger"), "max_sum")
            .unwrap()
            .clone(),
    )
    .unwrap();
    assert_eq!(recovered_max_sum.to_bits(), local.max_sum().to_bits());

    let bye = client2.call(r#"{"op": "shutdown"}"#).unwrap();
    assert!(is_ok(&bye));
    drop(server2);
    std::fs::remove_dir_all(&dir).ok();
}
