//! Value-determinism of the parallel runtime on random generated
//! instances: every `Threads` setting must produce bit-identical results
//! to the single-threaded run. Wall-clock may vary; values may not.
//!
//! The instances come from the real generator (not hand-rolled
//! matrices) so the tests cover the full pipeline the benchmarks run:
//! attribute sampling → similarity model → conflict graph → algorithm.

use geacc_core::algorithms::{greedy_with, prune_with, GreedyConfig, NeighborOracle, PruneConfig};
use geacc_core::parallel::Threads;
use geacc_core::{EventId, Instance, UserId};
use geacc_datagen::{CapDistribution, SyntheticConfig};
use proptest::prelude::*;

/// A generator configuration small enough for the exact search: tiny
/// event set, tight capacities, low dimension (spread-out similarities
/// keep the Lemma 6 bound effective, bounding the B&B's runtime).
fn small_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        2usize..=6,
        4usize..=14,
        1usize..=3,
        0.0f64..=1.0,
        0u64..=u64::MAX,
    )
        .prop_map(|(nv, nu, dim, conflict_ratio, seed)| SyntheticConfig {
            num_events: nv,
            num_users: nu,
            dim,
            cap_v_dist: CapDistribution::Uniform { min: 1, max: 3 },
            cap_u_dist: CapDistribution::Uniform { min: 1, max: 2 },
            conflict_ratio,
            seed,
            ..Default::default()
        })
}

/// Larger instances for the polynomial paths (greedy, oracle, dense
/// similarities), where exact search would not terminate.
fn medium_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        5usize..=20,
        20usize..=80,
        1usize..=4,
        0.0f64..=1.0,
        0u64..=u64::MAX,
    )
        .prop_map(|(nv, nu, dim, conflict_ratio, seed)| SyntheticConfig {
            num_events: nv,
            num_users: nu,
            dim,
            conflict_ratio,
            seed,
            ..Default::default()
        })
}

/// Fully drain both oracles, asserting identical candidate streams.
fn assert_streams_equal(inst: &Instance, a: &mut NeighborOracle, b: &mut NeighborOracle) {
    for v in 0..inst.num_events() {
        let v = EventId(v as u32);
        loop {
            let (x, y) = (a.next_user_for_event(v), b.next_user_for_event(v));
            match (x, y) {
                (Some((ux, sx)), Some((uy, sy))) => {
                    assert_eq!(ux, uy, "event {v:?} stream diverged");
                    assert_eq!(
                        sx.to_bits(),
                        sy.to_bits(),
                        "event {v:?} similarity diverged"
                    );
                }
                (None, None) => break,
                (x, y) => panic!("event {v:?} stream lengths diverged: {x:?} vs {y:?}"),
            }
        }
    }
    for u in 0..inst.num_users() {
        let u = UserId(u as u32);
        loop {
            let (x, y) = (a.next_event_for_user(u), b.next_event_for_user(u));
            match (x, y) {
                (Some((vx, sx)), Some((vy, sy))) => {
                    assert_eq!(vx, vy, "user {u:?} stream diverged");
                    assert_eq!(sx.to_bits(), sy.to_bits(), "user {u:?} similarity diverged");
                }
                (None, None) => break,
                (x, y) => panic!("user {u:?} stream lengths diverged: {x:?} vs {y:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel Prune-GEACC returns the *same arrangement* (not just the
    /// same MaxSum) as the sequential search, at every worker count.
    #[test]
    fn prune_is_bit_identical_at_every_thread_count(config in small_config()) {
        let inst = config.generate();
        let sequential = prune_with(&inst, PruneConfig::default());
        for t in [2usize, 3, 8] {
            let parallel = prune_with(
                &inst,
                PruneConfig { threads: Threads::new(t), ..Default::default() },
            );
            prop_assert_eq!(
                sequential.arrangement.max_sum().to_bits(),
                parallel.arrangement.max_sum().to_bits(),
                "MaxSum diverged at {} threads", t
            );
            prop_assert_eq!(
                &sequential.arrangement, &parallel.arrangement,
                "arrangement diverged at {} threads", t
            );
        }
    }

    /// The exhaustive configuration (pruning off) must agree too — it
    /// exercises the task-splitting machinery without the shared bound.
    #[test]
    fn exhaustive_is_bit_identical_in_parallel(config in small_config()) {
        let mut config = config;
        config.num_events = config.num_events.min(4);
        config.num_users = config.num_users.min(8);
        let inst = config.generate();
        let base = PruneConfig { enable_pruning: false, greedy_seed: false, ..Default::default() };
        let sequential = prune_with(&inst, base);
        let parallel = prune_with(&inst, PruneConfig { threads: Threads::new(4), ..base });
        prop_assert_eq!(
            sequential.arrangement.max_sum().to_bits(),
            parallel.arrangement.max_sum().to_bits()
        );
        prop_assert_eq!(&sequential.arrangement, &parallel.arrangement);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy with the prewarmed (parallel-built) oracle equals greedy
    /// with lazy streams.
    #[test]
    fn greedy_is_identical_at_every_thread_count(config in medium_config()) {
        let inst = config.generate();
        let sequential = greedy_with(&inst, GreedyConfig { threads: Threads::single() });
        for t in [2usize, 8] {
            let parallel = greedy_with(&inst, GreedyConfig { threads: Threads::new(t) });
            prop_assert_eq!(
                sequential.max_sum().to_bits(),
                parallel.max_sum().to_bits(),
                "MaxSum diverged at {} threads", t
            );
            prop_assert_eq!(&sequential, &parallel, "arrangement diverged at {} threads", t);
        }
    }

    /// The parallel-prewarmed oracle serves exactly the lazy oracle's
    /// candidate streams, in both directions, to exhaustion.
    #[test]
    fn prewarmed_oracle_streams_match_lazy(config in medium_config()) {
        let inst = config.generate();
        let mut lazy = NeighborOracle::new(&inst);
        let mut warm = NeighborOracle::prewarmed(&inst, Threads::new(4));
        assert_streams_equal(&inst, &mut lazy, &mut warm);
    }

    /// The dense similarity matrix is bit-identical at every thread
    /// count and agrees with pointwise evaluation.
    #[test]
    fn dense_similarity_is_identical_at_every_thread_count(config in medium_config()) {
        let inst = config.generate();
        let base = inst.dense_similarity(Threads::single());
        for t in [2usize, 8] {
            let par = inst.dense_similarity(Threads::new(t));
            for v in 0..inst.num_events() {
                for u in 0..inst.num_users() {
                    prop_assert_eq!(
                        base.get(v, u).to_bits(),
                        par.get(v, u).to_bits(),
                        "cell ({}, {}) diverged at {} threads", v, u, t
                    );
                }
            }
        }
        for v in 0..inst.num_events() {
            for u in 0..inst.num_users() {
                let direct = inst.similarity(EventId(v as u32), UserId(u as u32));
                prop_assert_eq!(base.get(v, u).to_bits(), direct.to_bits());
            }
        }
    }
}
