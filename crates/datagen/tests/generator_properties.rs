//! Property tests over the workload generators: any configuration in the
//! paper's parameter space must yield a structurally valid, reproducible
//! instance with exactly the requested shape.

use geacc_datagen::{AttrDistribution, CapDistribution, SyntheticConfig};
use proptest::prelude::*;

fn attr_dist() -> impl Strategy<Value = AttrDistribution> {
    prop_oneof![
        Just(AttrDistribution::Uniform),
        Just(AttrDistribution::Normal),
        (1.05f64..2.0).prop_map(|e| AttrDistribution::Zipf { exponent: e }),
    ]
}

fn cap_dist(max_hi: u32) -> impl Strategy<Value = CapDistribution> {
    prop_oneof![
        (1u32..=max_hi).prop_flat_map(move |hi| {
            (1u32..=hi).prop_map(move |lo| CapDistribution::Uniform { min: lo, max: hi })
        }),
        (1.0f64..30.0, 0.5f64..15.0)
            .prop_map(|(mean, std_dev)| CapDistribution::Normal { mean, std_dev }),
    ]
}

fn config() -> impl Strategy<Value = SyntheticConfig> {
    (
        1usize..=20,
        1usize..=60,
        1usize..=8,
        attr_dist(),
        cap_dist(20),
        cap_dist(6),
        0.0f64..=1.0,
        0u64..1000,
    )
        .prop_map(
            |(num_events, num_users, dim, attr_dist, cap_v_dist, cap_u_dist, ratio, seed)| {
                SyntheticConfig {
                    num_events,
                    num_users,
                    dim,
                    attr_dist,
                    cap_v_dist,
                    cap_u_dist,
                    conflict_ratio: ratio,
                    seed,
                    ..SyntheticConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_instances_have_the_requested_shape(config in config()) {
        let inst = config.generate();
        prop_assert_eq!(inst.num_events(), config.num_events);
        prop_assert_eq!(inst.num_users(), config.num_users);
        prop_assert_eq!(inst.dim(), config.dim);
        let total = config.num_events * config.num_events.saturating_sub(1) / 2;
        let expected = (config.conflict_ratio * total as f64).round() as usize;
        prop_assert_eq!(inst.conflicts().num_pairs(), expected);
    }

    #[test]
    fn attributes_stay_in_the_cube(config in config()) {
        let inst = config.generate();
        for v in inst.events() {
            for &x in inst.event_attrs(v) {
                prop_assert!((0.0..=config.t).contains(&x), "event attr {x}");
            }
        }
        for u in inst.users() {
            for &x in inst.user_attrs(u) {
                prop_assert!((0.0..=config.t).contains(&x), "user attr {x}");
            }
        }
    }

    #[test]
    fn capacities_are_positive_integers(config in config()) {
        let inst = config.generate();
        for v in inst.events() {
            prop_assert!(inst.event_capacity(v) >= 1);
        }
        for u in inst.users() {
            prop_assert!(inst.user_capacity(u) >= 1);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_config(config in config()) {
        prop_assert_eq!(config.generate(), config.generate());
    }

    #[test]
    fn greedy_solves_any_generated_instance_feasibly(config in config()) {
        let inst = config.generate();
        let arr = geacc_core::algorithms::greedy(&inst);
        prop_assert!(arr.validate(&inst).is_empty());
    }
}
