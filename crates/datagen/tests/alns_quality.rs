//! Golden quality bar for ALNS-GEACC at fig3 scale: the anytime search
//! must beat Greedy-GEACC's MaxSum on the paper's default synthetic
//! workload, and identical seeds must reproduce bit-identical runs.

use geacc_core::engine::{CandidateGraph, SolveParams};
use geacc_core::parallel::Threads;
use geacc_core::runtime::{BudgetMeter, SolveBudget};
use geacc_core::{alns_on, AlnsConfig};
use geacc_datagen::SyntheticConfig;

/// A reduced cut of the paper's fig3 default workload (|V| = 100,
/// |U| = 1000, bold Table III settings) sized for test wall-clock.
fn fig3_config() -> SyntheticConfig {
    SyntheticConfig {
        num_events: 50,
        num_users: 500,
        seed: 2015,
        ..SyntheticConfig::default()
    }
}

fn params(seed: u64) -> SolveParams {
    SolveParams {
        seed,
        alns: AlnsConfig {
            max_iterations: 2_000,
            ..AlnsConfig::default()
        },
        ..SolveParams::default()
    }
}

#[test]
fn alns_beats_greedy_on_the_fig3_workload() {
    let inst = fig3_config().generate();
    let graph = CandidateGraph::build(&inst, Threads::single());
    let greedy = geacc_core::algorithms::greedy_on(&graph, None).0;
    let (best, stopped, stats) = alns_on(&graph, &params(1), &BudgetMeter::unlimited(), None);
    assert_eq!(stopped, None);
    assert!(best.validate(&inst).is_empty());
    assert!(
        best.max_sum() > greedy.max_sum() + 1e-9,
        "ALNS {} must beat greedy {} at fig3 scale",
        best.max_sum(),
        greedy.max_sum()
    );
    assert!(stats.improvements > 0);
}

#[test]
fn alns_is_deterministic_per_seed_at_fig3_scale() {
    let inst = fig3_config().generate();
    let run = |threads: usize| {
        let graph = CandidateGraph::build(&inst, Threads::new(threads));
        let meter = BudgetMeter::new(&SolveBudget::from_max_nodes(800));
        let p = SolveParams {
            threads: Threads::new(threads),
            ..params(7)
        };
        alns_on(&graph, &p, &meter, None)
    };
    let (a, sa, ta) = run(1);
    let (b, sb, tb) = run(4);
    assert_eq!(a, b, "(instance, seed, node budget) must pin the result");
    assert_eq!(a.max_sum().to_bits(), b.max_sum().to_bits());
    assert_eq!(sa, sb);
    assert_eq!(
        (ta.iterations, ta.improvements, ta.accepted),
        (tb.iterations, tb.improvements, tb.accepted)
    );
}
