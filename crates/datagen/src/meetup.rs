//! Meetup-like real-dataset simulator (Table II of the paper).
//!
//! **Substitution notice** (see DESIGN.md §4): the paper evaluates on a
//! crawl of Meetup [Liu et al., KDD'12] that is proprietary and not
//! redistributable. The algorithms, however, only observe the similarity
//! structure, capacities, and conflicts — so this module reproduces the
//! *statistical shape* of the paper's preprocessing pipeline instead of
//! the raw data:
//!
//! 1. a vocabulary of raw tags is many-to-one mapped onto the paper's
//!    **20 merged tags** (their misspelling/synonym merge step);
//! 2. every event/user draws a multiset of raw tags concentrated on a few
//!    personal interest topics (EBSN users are topically focused);
//! 3. attribute `k` = (# raw tags mapping to merged tag `k`) / (total raw
//!    tags) — the paper's normalization, verbatim — giving sparse,
//!    non-negative vectors that sum to 1;
//! 4. per-city cardinalities come from Table II: Vancouver (225 events,
//!    2012 users), Auckland (37, 569), Singapore (87, 1500); each city
//!    gets its own topical popularity profile, mimicking the per-city
//!    clustering of the original pipeline;
//! 5. capacities and conflicts are generated exactly as the paper does
//!    for the real data ("capacity and conflict information is not given
//!    in the dataset"): Uniform `[1,50]`/`[1,4]` or Normal
//!    `(25,12.5)`/`(2,1)` capacities, conflict pairs sampled at ratios
//!    {0, 0.25, 0.5, 0.75, 1}.
//!
//! Because the vectors live in `[0, 1]^20`, the Euclidean similarity of
//! Equation 1 is instantiated with `T = 1`.

use crate::distributions::CapDistribution;
use crate::synthetic::random_conflicts;
use geacc_core::{Instance, SimilarityModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of merged tags = attribute dimensionality (the paper keeps the
/// 20 most popular merged tags).
pub const NUM_MERGED_TAGS: usize = 20;

/// Raw tags per merged tag in the simulated vocabulary (synonyms,
/// misspellings, compound tags like "outdoor-lovers-and-travel-lovers").
const RAW_TAGS_PER_MERGED: usize = 3;

/// The three cities of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum City {
    /// "VA" in Table II: 225 events, 2012 users.
    Vancouver,
    /// 37 events, 569 users.
    Auckland,
    /// 87 events, 1500 users.
    Singapore,
}

impl City {
    /// `(|V|, |U|)` from Table II.
    pub fn cardinality(self) -> (usize, usize) {
        match self {
            City::Vancouver => (225, 2012),
            City::Auckland => (37, 569),
            City::Singapore => (87, 1500),
        }
    }

    /// All three cities.
    pub fn all() -> [City; 3] {
        [City::Vancouver, City::Auckland, City::Singapore]
    }

    /// Seed offset so each city has a distinct topical profile.
    fn profile_seed(self) -> u64 {
        match self {
            City::Vancouver => 0xBA,
            City::Auckland => 0xAC,
            City::Singapore => 0x51,
        }
    }
}

/// Configuration for the Meetup-like generator. Defaults mirror the
/// paper's real-data experiments: Uniform capacities, conflict ratio
/// 0.25.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeetupConfig {
    /// Which city's cardinalities to use.
    pub city: City,
    /// Event capacity distribution (paper: `U[1,50]` or `N(25,12.5)`).
    pub cap_v_dist: CapDistribution,
    /// User capacity distribution (paper: `U[1,4]` or `N(2,1)`).
    pub cap_u_dist: CapDistribution,
    /// Fraction of event pairs that conflict (paper: 0–1 in steps of
    /// 0.25).
    pub conflict_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MeetupConfig {
    /// The paper's default real-data setting for `city`.
    pub fn new(city: City) -> Self {
        MeetupConfig {
            city,
            cap_v_dist: CapDistribution::Uniform { min: 1, max: 50 },
            cap_u_dist: CapDistribution::Uniform { min: 1, max: 4 },
            conflict_ratio: 0.25,
            seed: 0,
        }
    }

    /// Generate the simulated city instance.
    pub fn generate(&self) -> Instance {
        let (nv, nu) = self.city.cardinality();
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.city.profile_seed() << 32);

        // City-wide popularity over merged tags: a few hot topics.
        let mut profile_rng = StdRng::seed_from_u64(self.city.profile_seed());
        let popularity = city_popularity(&mut profile_rng);

        let mut builder = Instance::builder(NUM_MERGED_TAGS, SimilarityModel::Euclidean { t: 1.0 });
        let mut attrs = [0.0; NUM_MERGED_TAGS];
        for _ in 0..nv {
            tag_vector(&popularity, &mut rng, &mut attrs);
            builder.event(&attrs, self.cap_v_dist.sample(&mut rng));
        }
        for _ in 0..nu {
            tag_vector(&popularity, &mut rng, &mut attrs);
            builder.user(&attrs, self.cap_u_dist.sample(&mut rng));
        }
        builder.conflicts(random_conflicts(nv, self.conflict_ratio, &mut rng));
        builder.build().expect("tag frequencies lie in [0, 1]")
    }
}

/// Draw a city-level popularity weight per merged tag (heavy-tailed:
/// a handful of topics dominate an EBSN city, the long tail is niche).
fn city_popularity(rng: &mut StdRng) -> [f64; NUM_MERGED_TAGS] {
    let mut w = [0.0; NUM_MERGED_TAGS];
    for x in &mut w {
        // Exp(1)-ish via inverse transform, squared for extra skew.
        let e: f64 = -(1.0 - rng.gen::<f64>()).ln();
        *x = e * e;
    }
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// Simulate one entity's tag pipeline: pick 2–4 interest topics biased by
/// city popularity, draw 5–30 raw tags (80 % from interests, 20 % noise),
/// map raw → merged, normalize counts by the total — exactly the paper's
/// attribute construction.
fn tag_vector(popularity: &[f64; NUM_MERGED_TAGS], rng: &mut StdRng, out: &mut [f64]) {
    out.fill(0.0);
    // Interest topics, sampled by popularity without replacement.
    let num_interests = rng.gen_range(2..=4);
    let mut interests = [usize::MAX; 4];
    let mut picked = 0;
    while picked < num_interests {
        let t = sample_weighted(popularity, rng);
        if !interests[..picked].contains(&t) {
            interests[picked] = t;
            picked += 1;
        }
    }
    let total_raw = rng.gen_range(5..=30);
    for _ in 0..total_raw {
        let merged = if rng.gen::<f64>() < 0.8 {
            interests[rng.gen_range(0..num_interests)]
        } else {
            rng.gen_range(0..NUM_MERGED_TAGS)
        };
        // Which raw synonym was used is irrelevant after merging — the
        // paper's example maps both "outdoor-activities" and
        // "outdoor-lovers-and-travel-lovers" to "outdoor" — but we draw
        // it anyway to mirror the pipeline stage.
        let _raw = merged * RAW_TAGS_PER_MERGED + rng.gen_range(0..RAW_TAGS_PER_MERGED);
        out[merged] += 1.0;
    }
    for x in out.iter_mut() {
        *x /= total_raw as f64;
    }
}

/// Sample an index proportionally to `weights` (which sum to 1).
fn sample_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let mut x = rng.gen::<f64>();
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_table2() {
        assert_eq!(City::Vancouver.cardinality(), (225, 2012));
        assert_eq!(City::Auckland.cardinality(), (37, 569));
        assert_eq!(City::Singapore.cardinality(), (87, 1500));
    }

    #[test]
    fn auckland_instance_has_table2_shape() {
        let inst = MeetupConfig::new(City::Auckland).generate();
        assert_eq!(inst.num_events(), 37);
        assert_eq!(inst.num_users(), 569);
        assert_eq!(inst.dim(), NUM_MERGED_TAGS);
        let expected = (0.25_f64 * (37.0 * 36.0 / 2.0)).round() as usize;
        assert_eq!(inst.conflicts().num_pairs(), expected);
    }

    #[test]
    fn attributes_are_normalized_tag_frequencies() {
        let inst = MeetupConfig::new(City::Auckland).generate();
        for v in inst.events() {
            let attrs = inst.event_attrs(v);
            let sum: f64 = attrs.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "frequencies must sum to 1, got {sum}"
            );
            assert!(attrs.iter().all(|&x| (0.0..=1.0).contains(&x)));
            // Sparse: interests + noise touch well under all 20 tags.
            let nonzero = attrs.iter().filter(|&&x| x > 0.0).count();
            assert!(nonzero <= 15, "vector unexpectedly dense: {nonzero}");
        }
    }

    #[test]
    fn cities_have_distinct_topical_profiles() {
        let a = MeetupConfig::new(City::Auckland).generate();
        let s = MeetupConfig::new(City::Singapore).generate();
        // Average attribute vectors differ across cities.
        let mean = |inst: &Instance| {
            let mut m = [0.0; NUM_MERGED_TAGS];
            for u in inst.users() {
                for (k, &x) in inst.user_attrs(u).iter().enumerate() {
                    m[k] += x;
                }
            }
            for x in &mut m {
                *x /= inst.num_users() as f64;
            }
            m
        };
        let (ma, ms) = (mean(&a), mean(&s));
        let diff: f64 = ma.iter().zip(&ms).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.05, "city profiles too similar: L1 diff {diff}");
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let c = MeetupConfig::new(City::Auckland);
        assert_eq!(c.generate(), c.generate());
        let mut c2 = c.clone();
        c2.seed = 99;
        assert_ne!(c.generate(), c2.generate());
    }

    #[test]
    fn normal_capacity_variant_is_valid() {
        let mut c = MeetupConfig::new(City::Auckland);
        c.cap_v_dist = CapDistribution::Normal {
            mean: 25.0,
            std_dev: 12.5,
        };
        c.cap_u_dist = CapDistribution::Normal {
            mean: 2.0,
            std_dev: 1.0,
        };
        let inst = c.generate();
        for v in inst.events() {
            assert!(inst.event_capacity(v) >= 1);
        }
    }

    #[test]
    fn paper_assumptions_hold_on_simulated_cities() {
        // Overlapping tag interests ⇒ positive similarities everywhere…
        // Euclidean over [0,1]^20 rarely reaches the full diameter.
        let inst = MeetupConfig::new(City::Auckland).generate();
        assert!(inst.validate_paper_assumptions().is_ok());
    }
}
