//! Arrival-order generators for the online-arrangement extension.
//!
//! The streaming arranger's quality depends on *who shows up first*;
//! these generators produce the orders worth testing against:
//!
//! - [`ArrivalOrder::Uniform`] — a seeded uniform shuffle (the average
//!   case);
//! - [`ArrivalOrder::BestFirst`] / [`ArrivalOrder::BestLast`] — users
//!   sorted by their best similarity to any event, most (least)
//!   enthusiastic first. `BestLast` is the adversarial case thresholds
//!   are designed for: lukewarm arrivals burn capacity before the
//!   enthusiasts appear.

use geacc_core::{Instance, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How users arrive at the online arranger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalOrder {
    /// Seeded uniform shuffle.
    Uniform {
        /// Shuffle seed.
        seed: u64,
    },
    /// Users with the highest best-event similarity arrive first.
    BestFirst,
    /// Users with the highest best-event similarity arrive **last** —
    /// the adversarial order for capacity-burning.
    BestLast,
}

impl ArrivalOrder {
    /// Materialize the order for `inst` as a permutation of its users.
    pub fn sequence(&self, inst: &Instance) -> Vec<UserId> {
        let mut users: Vec<UserId> = inst.users().collect();
        match *self {
            ArrivalOrder::Uniform { seed } => {
                users.shuffle(&mut StdRng::seed_from_u64(seed));
            }
            ArrivalOrder::BestFirst | ArrivalOrder::BestLast => {
                let mut col = Vec::new();
                let mut best = vec![0.0f64; inst.num_users()];
                for (slot, u) in best.iter_mut().zip(inst.users()) {
                    inst.similarity_column(u, &mut col);
                    *slot = col.iter().copied().fold(0.0, f64::max);
                }
                users.sort_by(|a, b| best[b.index()].total_cmp(&best[a.index()]).then(a.cmp(b)));
                if matches!(self, ArrivalOrder::BestLast) {
                    users.reverse();
                }
            }
        }
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;
    use geacc_core::algorithms::online::{online_greedy, OnlineConfig};

    fn instance() -> Instance {
        SyntheticConfig {
            num_events: 8,
            num_users: 40,
            seed: 5,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn every_order_is_a_permutation() {
        let inst = instance();
        for order in [
            ArrivalOrder::Uniform { seed: 3 },
            ArrivalOrder::BestFirst,
            ArrivalOrder::BestLast,
        ] {
            let mut seq = order.sequence(&inst);
            assert_eq!(seq.len(), inst.num_users());
            seq.sort();
            seq.dedup();
            assert_eq!(seq.len(), inst.num_users(), "{order:?} repeated a user");
        }
    }

    #[test]
    fn best_last_reverses_best_first() {
        let inst = instance();
        let mut first = ArrivalOrder::BestFirst.sequence(&inst);
        first.reverse();
        assert_eq!(first, ArrivalOrder::BestLast.sequence(&inst));
    }

    #[test]
    fn uniform_orders_are_seeded() {
        let inst = instance();
        let a = ArrivalOrder::Uniform { seed: 1 }.sequence(&inst);
        let b = ArrivalOrder::Uniform { seed: 1 }.sequence(&inst);
        let c = ArrivalOrder::Uniform { seed: 2 }.sequence(&inst);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn enthusiasts_first_beats_enthusiasts_last() {
        // With tight capacities, the adversarial order must not do better
        // than the favourable one.
        let inst = SyntheticConfig {
            num_events: 6,
            num_users: 60,
            cap_v_dist: crate::CapDistribution::Uniform { min: 1, max: 2 },
            seed: 9,
            ..Default::default()
        }
        .generate();
        let good = online_greedy(
            &inst,
            ArrivalOrder::BestFirst.sequence(&inst),
            OnlineConfig::default(),
        );
        let bad = online_greedy(
            &inst,
            ArrivalOrder::BestLast.sequence(&inst),
            OnlineConfig::default(),
        );
        assert!(good.max_sum() + 1e-9 >= bad.max_sum());
    }

    #[test]
    fn serde_roundtrip() {
        let o = ArrivalOrder::Uniform { seed: 11 };
        let back: ArrivalOrder = serde_json::from_str(&serde_json::to_string(&o).unwrap()).unwrap();
        assert_eq!(o, back);
    }
}
