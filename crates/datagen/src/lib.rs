//! # geacc-datagen
//!
//! Workload generators for the GEACC evaluation:
//!
//! - [`synthetic`] — the Table III synthetic generator (Uniform / Normal
//!   / Zipf attributes and capacities, conflict-ratio sampling), whose
//!   defaults are the paper's bold settings;
//! - [`meetup`] — a Meetup-like simulator of the Table II real datasets
//!   (tag-frequency attribute vectors for three cities), substituting for
//!   the proprietary crawl — see the module docs and DESIGN.md §4;
//! - [`temporal`] — schedule-derived conflicts (time intervals + venue
//!   travel, per Definition 3), for workloads with realistic
//!   interval-graph conflict structure;
//! - [`distributions`] — the underlying value distributions.
//!
//! Everything is seeded and reproducible: a config plus a seed fully
//! determines the instance.
//!
//! ```
//! use geacc_datagen::synthetic::SyntheticConfig;
//! use geacc_core::algorithms::greedy;
//!
//! let inst = SyntheticConfig {
//!     num_events: 10,
//!     num_users: 50,
//!     ..SyntheticConfig::default()
//! }
//! .generate();
//! let arrangement = greedy(&inst);
//! assert!(arrangement.validate(&inst).is_empty());
//! ```

pub mod arrival;
pub mod distributions;
pub mod meetup;
pub mod synthetic;
pub mod temporal;

pub use arrival::ArrivalOrder;
pub use distributions::{AttrDistribution, CapDistribution};
pub use meetup::{City, MeetupConfig};
pub use synthetic::SyntheticConfig;
pub use temporal::{TemporalConfig, TemporalInstance};
