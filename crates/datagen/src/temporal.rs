//! Temporal workloads: conflicts derived from actual timetables.
//!
//! The paper's evaluation *samples* conflict pairs at a target ratio
//! (Table II/III); its problem statement, however, derives conflicts
//! from schedules — overlapping time slots, or venues too far apart to
//! attend both (Definition 3 and the introduction's Sunday-sports
//! scenario). This generator produces that richer structure: events get
//! start/end times within a planning horizon and venue coordinates;
//! the conflict graph comes from
//! [`ConflictGraph::from_intervals_with_travel`]. The resulting graphs
//! are *interval-graph-like* (plus travel edges) rather than
//! Erdős–Rényi — much more clustered, which is exactly what a deployed
//! arranger faces on a real weekend.
//!
//! Attribute vectors and capacities reuse the Table III machinery, so a
//! temporal instance differs from a synthetic one only in how `CF`
//! arises.

use crate::distributions::{AttrDistribution, CapDistribution};
use geacc_core::{ConflictGraph, Instance, SimilarityModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the temporal generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalConfig {
    /// `|V|` — number of events.
    pub num_events: usize,
    /// `|U|` — number of users.
    pub num_users: usize,
    /// Attribute dimensionality `d`.
    pub dim: usize,
    /// Attribute upper bound `T`.
    pub t: f64,
    /// Distribution of attribute values.
    pub attr_dist: AttrDistribution,
    /// Event capacity distribution.
    pub cap_v_dist: CapDistribution,
    /// User capacity distribution.
    pub cap_u_dist: CapDistribution,
    /// Planning horizon in hours (e.g. 48 for a weekend).
    pub horizon_hours: f64,
    /// Event duration range `[min, max]` in hours.
    pub duration_hours: (f64, f64),
    /// Side length of the square city, in travel-hours: venue
    /// coordinates are uniform in `[0, city_extent]²` and travel time is
    /// the Euclidean distance.
    pub city_extent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemporalConfig {
    /// A weekend across a mid-sized city: 48 h horizon, 1–4 h events,
    /// venues up to ~1.4 h apart diagonally, Table III defaults
    /// elsewhere.
    fn default() -> Self {
        TemporalConfig {
            num_events: 100,
            num_users: 1000,
            dim: 20,
            t: 10_000.0,
            attr_dist: AttrDistribution::Uniform,
            cap_v_dist: CapDistribution::Uniform { min: 1, max: 50 },
            cap_u_dist: CapDistribution::Uniform { min: 1, max: 4 },
            horizon_hours: 48.0,
            duration_hours: (1.0, 4.0),
            city_extent: 1.0,
            seed: 0,
        }
    }
}

/// A generated temporal instance plus its schedule metadata (so callers
/// can display or post-process the timetable).
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalInstance {
    /// The GEACC instance (conflicts already derived).
    pub instance: Instance,
    /// `(start, end)` hours per event, aligned with event ids.
    pub intervals: Vec<(f64, f64)>,
    /// Venue coordinates per event, aligned with event ids.
    pub venues: Vec<(f64, f64)>,
}

impl TemporalConfig {
    /// Generate the instance and its schedule.
    pub fn generate(&self) -> TemporalInstance {
        assert!(
            self.num_events > 0 && self.num_users > 0,
            "need events and users"
        );
        assert!(
            self.duration_hours.0 > 0.0 && self.duration_hours.0 <= self.duration_hours.1,
            "need 0 < min duration ≤ max duration"
        );
        assert!(
            self.duration_hours.1 <= self.horizon_hours,
            "events must fit in the horizon"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut intervals = Vec::with_capacity(self.num_events);
        let mut venues = Vec::with_capacity(self.num_events);
        for _ in 0..self.num_events {
            let duration = rng.gen_range(self.duration_hours.0..=self.duration_hours.1);
            let start = rng.gen_range(0.0..=self.horizon_hours - duration);
            intervals.push((start, start + duration));
            venues.push((
                rng.gen_range(0.0..=self.city_extent),
                rng.gen_range(0.0..=self.city_extent),
            ));
        }
        // Travel at unit speed: distance in city units = hours.
        let conflicts = ConflictGraph::from_intervals_with_travel(&intervals, &venues, 1.0);

        let mut builder = Instance::builder(self.dim, SimilarityModel::Euclidean { t: self.t });
        let mut attrs = vec![0.0; self.dim];
        for cap_slot in 0..self.num_events {
            let _ = cap_slot;
            for a in &mut attrs {
                *a = self.attr_dist.sample(self.t, &mut rng);
            }
            builder.event(&attrs, self.cap_v_dist.sample(&mut rng));
        }
        for _ in 0..self.num_users {
            for a in &mut attrs {
                *a = self.attr_dist.sample(self.t, &mut rng);
            }
            builder.user(&attrs, self.cap_u_dist.sample(&mut rng));
        }
        builder.conflicts(conflicts);
        let instance = builder.build().expect("attributes lie in [0, T]");
        TemporalInstance {
            instance,
            intervals,
            venues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geacc_core::algorithms::greedy;
    use geacc_core::EventId;

    fn small() -> TemporalConfig {
        TemporalConfig {
            num_events: 30,
            num_users: 100,
            ..TemporalConfig::default()
        }
    }

    #[test]
    fn conflicts_match_the_schedule() {
        let gen = small().generate();
        let inst = &gen.instance;
        for i in 0..inst.num_events() {
            for j in (i + 1)..inst.num_events() {
                let (s1, e1) = gen.intervals[i];
                let (s2, e2) = gen.intervals[j];
                let overlap = s1 < e2 && s2 < e1;
                let dx = gen.venues[i].0 - gen.venues[j].0;
                let dy = gen.venues[i].1 - gen.venues[j].1;
                let travel = (dx * dx + dy * dy).sqrt();
                let gap = if e1 <= s2 { s2 - e1 } else { s1 - e2 };
                let expected = overlap || gap < travel;
                assert_eq!(
                    inst.conflicts()
                        .conflicts(EventId(i as u32), EventId(j as u32)),
                    expected,
                    "events {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn intervals_fit_the_horizon() {
        let config = small();
        let gen = config.generate();
        for &(s, e) in &gen.intervals {
            assert!(s >= 0.0 && e <= config.horizon_hours && s < e);
            let d = e - s;
            assert!(d >= config.duration_hours.0 - 1e-9 && d <= config.duration_hours.1 + 1e-9);
        }
    }

    #[test]
    fn temporal_instances_solve_feasibly() {
        let gen = small().generate();
        let arr = greedy(&gen.instance);
        assert!(arr.validate(&gen.instance).is_empty());
        assert!(arr.max_sum() > 0.0);
    }

    #[test]
    fn denser_schedules_conflict_more() {
        // Squeezing the same events into a shorter horizon raises the
        // conflict density.
        let loose = TemporalConfig {
            horizon_hours: 96.0,
            ..small()
        }
        .generate();
        let tight = TemporalConfig {
            horizon_hours: 12.0,
            ..small()
        }
        .generate();
        assert!(
            tight.instance.conflicts().density() > loose.instance.conflicts().density(),
            "tight {} ≤ loose {}",
            tight.instance.conflicts().density(),
            loose.instance.conflicts().density()
        );
    }

    #[test]
    fn bigger_city_conflicts_more_via_travel() {
        let compact = TemporalConfig {
            city_extent: 0.01,
            ..small()
        }
        .generate();
        let sprawling = TemporalConfig {
            city_extent: 10.0,
            ..small()
        }
        .generate();
        assert!(sprawling.instance.conflicts().density() >= compact.instance.conflicts().density());
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let config = small();
        assert_eq!(config.generate(), config.generate());
        let other = TemporalConfig { seed: 1, ..small() };
        assert_ne!(config.generate(), other.generate());
    }

    #[test]
    #[should_panic(expected = "fit in the horizon")]
    fn oversized_durations_rejected() {
        TemporalConfig {
            duration_hours: (1.0, 100.0),
            horizon_hours: 10.0,
            ..small()
        }
        .generate();
    }

    #[test]
    fn serde_roundtrip() {
        let config = small();
        let back: TemporalConfig =
            serde_json::from_str(&serde_json::to_string(&config).unwrap()).unwrap();
        assert_eq!(config, back);
    }
}
