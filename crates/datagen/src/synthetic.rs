//! Synthetic instance generator (Table III of the paper).
//!
//! Defaults are the paper's bold settings: `|V| = 100`, `|U| = 1000`,
//! `d = 20`, attributes Uniform on `[0, T]` with `T = 10⁴`,
//! `c_v ~ U[1, 50]`, `c_u ~ U[1, 4]`, conflict ratio 0.25. Every
//! experiment of Figs. 3–5 is a one-field variation of this
//! configuration.

use crate::distributions::{AttrDistribution, CapDistribution};
use geacc_core::{ConflictGraph, EventId, Instance, SimilarityModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Full description of a synthetic workload. Mirrors Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// `|V|` — number of events.
    pub num_events: usize,
    /// `|U|` — number of users.
    pub num_users: usize,
    /// `d` — attribute dimensionality.
    pub dim: usize,
    /// `T` — attribute upper bound.
    pub t: f64,
    /// Distribution of every attribute value.
    pub attr_dist: AttrDistribution,
    /// Distribution of event capacities `c_v`.
    pub cap_v_dist: CapDistribution,
    /// Distribution of user capacities `c_u`.
    pub cap_u_dist: CapDistribution,
    /// `|CF| / (|V|(|V|−1)/2)` — fraction of event pairs that conflict.
    pub conflict_ratio: f64,
    /// RNG seed; same config + seed ⇒ identical instance.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    /// The paper's default (bold) settings.
    fn default() -> Self {
        SyntheticConfig {
            num_events: 100,
            num_users: 1000,
            dim: 20,
            t: 10_000.0,
            attr_dist: AttrDistribution::Uniform,
            cap_v_dist: CapDistribution::Uniform { min: 1, max: 50 },
            cap_u_dist: CapDistribution::Uniform { min: 1, max: 4 },
            conflict_ratio: 0.25,
            seed: 0,
        }
    }
}

impl SyntheticConfig {
    /// Generate the instance described by this configuration.
    pub fn generate(&self) -> Instance {
        assert!(
            self.num_events > 0 && self.num_users > 0,
            "need events and users"
        );
        assert!(
            (0.0..=1.0).contains(&self.conflict_ratio),
            "conflict ratio must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = Instance::builder(self.dim, SimilarityModel::Euclidean { t: self.t });
        let mut attrs = vec![0.0; self.dim];
        for _ in 0..self.num_events {
            for a in &mut attrs {
                *a = self.attr_dist.sample(self.t, &mut rng);
            }
            builder.event(&attrs, self.cap_v_dist.sample(&mut rng));
        }
        for _ in 0..self.num_users {
            for a in &mut attrs {
                *a = self.attr_dist.sample(self.t, &mut rng);
            }
            builder.user(&attrs, self.cap_u_dist.sample(&mut rng));
        }
        builder.conflicts(random_conflicts(
            self.num_events,
            self.conflict_ratio,
            &mut rng,
        ));
        builder
            .build()
            .expect("generated attributes lie in [0, T] by construction")
    }
}

/// Sample `ratio · |V|(|V|−1)/2` distinct conflicting pairs uniformly.
pub fn random_conflicts<R: Rng + ?Sized>(
    num_events: usize,
    ratio: f64,
    rng: &mut R,
) -> ConflictGraph {
    assert!(
        (0.0..=1.0).contains(&ratio),
        "conflict ratio must be in [0, 1]"
    );
    let total = num_events * num_events.saturating_sub(1) / 2;
    let want = (ratio * total as f64).round() as usize;
    if want == 0 {
        return ConflictGraph::empty(num_events);
    }
    if want >= total {
        return ConflictGraph::complete(num_events);
    }
    // Partial Fisher–Yates over the pair universe. |V| ≤ ~1000 in every
    // experiment, so materializing the ≤ ~500K pairs is cheap.
    let mut pairs: Vec<(u32, u32)> = (0..num_events as u32)
        .flat_map(|i| ((i + 1)..num_events as u32).map(move |j| (i, j)))
        .collect();
    let (chosen, _) = pairs.partial_shuffle(rng, want);
    ConflictGraph::from_pairs(
        num_events,
        chosen.iter().map(|&(a, b)| (EventId(a), EventId(b))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let c = SyntheticConfig::default();
        assert_eq!(c.num_events, 100);
        assert_eq!(c.num_users, 1000);
        assert_eq!(c.dim, 20);
        assert_eq!(c.t, 10_000.0);
        assert_eq!(c.attr_dist, AttrDistribution::Uniform);
        assert_eq!(c.cap_v_dist, CapDistribution::Uniform { min: 1, max: 50 });
        assert_eq!(c.cap_u_dist, CapDistribution::Uniform { min: 1, max: 4 });
        assert_eq!(c.conflict_ratio, 0.25);
    }

    #[test]
    fn generated_instance_matches_config() {
        let config = SyntheticConfig {
            num_events: 12,
            num_users: 30,
            dim: 5,
            conflict_ratio: 0.5,
            ..SyntheticConfig::default()
        };
        let inst = config.generate();
        assert_eq!(inst.num_events(), 12);
        assert_eq!(inst.num_users(), 30);
        assert_eq!(inst.dim(), 5);
        let expected_pairs = (0.5_f64 * (12.0 * 11.0 / 2.0)).round() as usize;
        assert_eq!(inst.conflicts().num_pairs(), expected_pairs);
        for v in inst.events() {
            assert!((1..=50).contains(&inst.event_capacity(v)));
        }
        for u in inst.users() {
            assert!((1..=4).contains(&inst.user_capacity(u)));
        }
    }

    #[test]
    fn same_seed_reproduces_same_instance() {
        let config = SyntheticConfig {
            num_events: 8,
            num_users: 20,
            ..Default::default()
        };
        assert_eq!(config.generate(), config.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticConfig {
            num_events: 8,
            num_users: 20,
            seed: 1,
            ..Default::default()
        };
        let b = SyntheticConfig {
            num_events: 8,
            num_users: 20,
            seed: 2,
            ..Default::default()
        };
        assert_ne!(a.generate(), b.generate());
    }

    #[test]
    fn conflict_ratio_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(random_conflicts(10, 0.0, &mut rng).num_pairs(), 0);
        assert_eq!(random_conflicts(10, 1.0, &mut rng).num_pairs(), 45);
        let half = random_conflicts(10, 0.5, &mut rng);
        assert!((half.density() - 0.5).abs() < 0.05);
    }

    #[test]
    fn generated_instances_usually_satisfy_paper_assumptions() {
        // With uniform attributes most similarities are positive, so the
        // Definition 4 assumption holds. `|U| = 60` dominates the default
        // `c_v ~ U[1, 50]`, so the capacity conditions hold for any seed.
        let config = SyntheticConfig {
            num_events: 10,
            num_users: 60,
            ..SyntheticConfig::default()
        };
        assert!(config.generate().validate_paper_assumptions().is_ok());
    }

    #[test]
    fn zipf_and_normal_distributions_produce_valid_instances() {
        for attr_dist in [
            AttrDistribution::Zipf { exponent: 1.3 },
            AttrDistribution::Normal,
        ] {
            let config = SyntheticConfig {
                num_events: 6,
                num_users: 15,
                attr_dist,
                cap_v_dist: CapDistribution::Normal {
                    mean: 25.0,
                    std_dev: 12.5,
                },
                cap_u_dist: CapDistribution::Normal {
                    mean: 2.0,
                    std_dev: 1.0,
                },
                ..SyntheticConfig::default()
            };
            let inst = config.generate();
            assert_eq!(inst.num_events(), 6);
            for u in inst.users() {
                assert!(inst.user_capacity(u) >= 1);
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let config = SyntheticConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        let back: SyntheticConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    #[should_panic(expected = "conflict ratio")]
    fn invalid_ratio_panics() {
        SyntheticConfig {
            conflict_ratio: 1.5,
            ..Default::default()
        }
        .generate();
    }
}
