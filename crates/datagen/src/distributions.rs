//! The value distributions of the paper's evaluation (Table III).
//!
//! Attribute values and capacities are generated following Uniform,
//! Normal, or Zipf distributions. Capacities are "converted into
//! integers" (Table III's footnote) and clamped to at least 1; Normal
//! attribute values are clamped into the cube `[0, T]`.

use rand::Rng;
use rand_distr::{Distribution as _, Normal, Zipf};
use serde::{Deserialize, Serialize};

/// Distribution of attribute values over `[0, t]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrDistribution {
    /// Uniform on `[0, t]` — the paper's default.
    Uniform,
    /// The paper's Normal setting: an even mixture of
    /// `N(t/4, (t/4)²)` and `N(3t/4, (t/4)²)`, clamped to `[0, t]`.
    /// (Table III lists both components.)
    Normal,
    /// Zipf with the given exponent (the paper uses 1.3): ranks
    /// `1..=1000` sampled Zipf-ly and mapped linearly onto `[0, t]`, so
    /// small values are overwhelmingly common — the skew the paper is
    /// after.
    Zipf {
        /// Zipf exponent (> 0); the paper's setting is 1.3.
        exponent: f64,
    },
}

/// Number of Zipf ranks used to discretize `[0, t]`.
const ZIPF_RANKS: u64 = 1000;

impl AttrDistribution {
    /// Sample one attribute value in `[0, t]`.
    pub fn sample<R: Rng + ?Sized>(&self, t: f64, rng: &mut R) -> f64 {
        match *self {
            AttrDistribution::Uniform => rng.gen::<f64>() * t,
            AttrDistribution::Normal => {
                let mu = if rng.gen::<bool>() {
                    t / 4.0
                } else {
                    3.0 * t / 4.0
                };
                let normal = Normal::new(mu, t / 4.0).expect("sigma > 0");
                normal.sample(rng).clamp(0.0, t)
            }
            AttrDistribution::Zipf { exponent } => {
                let zipf = Zipf::new(ZIPF_RANKS, exponent).expect("valid zipf");
                let rank = zipf.sample(rng); // 1..=ZIPF_RANKS
                (rank - 1.0) / (ZIPF_RANKS - 1) as f64 * t
            }
        }
    }
}

/// Distribution of capacities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapDistribution {
    /// Uniform integer on `[min, max]` (the paper's `c_v ~ U[1, 50]`,
    /// `c_u ~ U[1, 4]` defaults and every x-axis of Fig. 4's capacity
    /// panels).
    Uniform {
        /// Inclusive lower bound (≥ 1).
        min: u32,
        /// Inclusive upper bound.
        max: u32,
    },
    /// Normal with the given mean and standard deviation, rounded to an
    /// integer and clamped to ≥ 1 (the paper's `N(25, 12.5)` for events
    /// and `N(2, 1)` for users).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
}

impl CapDistribution {
    /// Sample one integer capacity (always ≥ 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match *self {
            CapDistribution::Uniform { min, max } => {
                assert!(min >= 1 && min <= max, "need 1 ≤ min ≤ max");
                rng.gen_range(min..=max)
            }
            CapDistribution::Normal { mean, std_dev } => {
                let normal = Normal::new(mean, std_dev).expect("sigma > 0");
                (normal.sample(rng).round() as i64).max(1) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_attrs_stay_in_range_and_spread() {
        let mut r = rng();
        let samples: Vec<f64> = (0..2000)
            .map(|_| AttrDistribution::Uniform.sample(100.0, &mut r))
            .collect();
        assert!(samples.iter().all(|&x| (0.0..=100.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 5.0, "uniform mean {mean}");
    }

    #[test]
    fn normal_attrs_are_bimodal_and_clamped() {
        let mut r = rng();
        let t = 100.0;
        let samples: Vec<f64> = (0..4000)
            .map(|_| AttrDistribution::Normal.sample(t, &mut r))
            .collect();
        assert!(samples.iter().all(|&x| (0.0..=t).contains(&x)));
        // Mixture mean = t/2.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 5.0, "mixture mean {mean}");
    }

    #[test]
    fn zipf_attrs_skew_toward_zero() {
        let mut r = rng();
        let d = AttrDistribution::Zipf { exponent: 1.3 };
        let samples: Vec<f64> = (0..2000).map(|_| d.sample(100.0, &mut r)).collect();
        assert!(samples.iter().all(|&x| (0.0..=100.0).contains(&x)));
        let below_10 = samples.iter().filter(|&&x| x < 10.0).count();
        assert!(
            below_10 > samples.len() / 2,
            "zipf should concentrate low: {below_10}/{}",
            samples.len()
        );
    }

    #[test]
    fn uniform_caps_cover_their_range() {
        let mut r = rng();
        let d = CapDistribution::Uniform { min: 1, max: 4 };
        let mut seen = [false; 5];
        for _ in 0..500 {
            let c = d.sample(&mut r);
            assert!((1..=4).contains(&c));
            seen[c as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn normal_caps_are_integers_at_least_one() {
        let mut r = rng();
        let d = CapDistribution::Normal {
            mean: 2.0,
            std_dev: 1.0,
        };
        let samples: Vec<u32> = (0..1000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&c| c >= 1));
        let mean = samples.iter().sum::<u32>() as f64 / samples.len() as f64;
        // Clamping to ≥ 1 raises the mean slightly above 2.
        assert!((1.8..=2.7).contains(&mean), "normal cap mean {mean}");
    }

    #[test]
    #[should_panic(expected = "1 ≤ min ≤ max")]
    fn degenerate_uniform_cap_panics() {
        CapDistribution::Uniform { min: 5, max: 2 }.sample(&mut rng());
    }
}
