//! # geacc — Conflict-Aware Event-Participant Arrangement
//!
//! A production-quality Rust implementation of the GEACC problem and
//! algorithms from:
//!
//! > Jieying She, Yongxin Tong, Lei Chen, Caleb Chen Cao.
//! > *Conflict-Aware Event-Participant Arrangement.* ICDE 2015.
//!
//! Event-based social networks (Meetup, Groupon, …) must assign
//! participants to events such that events fill up, users get events they
//! care about, nobody exceeds their capacity — and **no user is assigned
//! two conflicting events** (overlapping time slots, venues too far
//! apart). Maximizing total interestingness under those constraints is
//! the NP-hard GEACC problem. This crate is the façade over the
//! workspace:
//!
//! - `geacc_core` (re-exported at the root and as [`core`]) — the
//!   problem model and the paper's five algorithms;
//! - `geacc_datagen` (as [`datagen`]) — Table II / Table III workload
//!   generators;
//! - `geacc_flow` (as [`flow`]) — the min-cost-flow substrate;
//! - `geacc_index` (as [`index`]) — nearest-neighbour index substrate.
//!
//! ## Which algorithm?
//!
//! | You have | Use |
//! |---|---|
//! | thousands of events/users, want speed *and* quality | [`algorithms::greedy()`] (`1/(1+max c_u)` guarantee; in practice the best of all, per the paper's and our experiments) |
//! | a moderate instance, want the stronger bound | [`algorithms::mincostflow()`] (`1/max c_u` guarantee) |
//! | ≤ a few dozen pairs, need the true optimum | [`algorithms::prune()`] (exact branch-and-bound) |
//!
//! ## Example
//!
//! ```
//! use geacc::{Instance, SimilarityModel, ConflictGraph};
//! use geacc::algorithms::greedy;
//!
//! let mut b = Instance::builder(2, SimilarityModel::Euclidean { t: 10.0 });
//! let yoga = b.event(&[2.0, 8.0], 10);
//! let hike = b.event(&[9.0, 3.0], 5);
//! for i in 0..20 {
//!     b.user(&[(i % 10) as f64, (i % 7) as f64], 2);
//! }
//! // Same morning, opposite ends of town:
//! b.conflicts(ConflictGraph::from_pairs(2, [(yoga, hike)]));
//! let instance = b.build().unwrap();
//!
//! let plan = greedy(&instance);
//! assert!(plan.validate(&instance).is_empty());
//! println!("arranged {} pairs, total interest {:.2}", plan.len(), plan.max_sum());
//! ```

pub use geacc_core::model::ArrangementStats;
pub use geacc_core::{
    algorithms, engine, model, parallel, reduction, runtime, similarity, toy, Arrangement,
    ConflictGraph, ConflictPairOutOfRange, EventId, Instance, InstanceBuilder, InstanceError,
    SimMatrix, SimilarityModel, UserId, ValidationError, Violation,
};
pub use geacc_core::{
    BudgetMeter, CancelToken, FaultPlan, Outcome, SolveBudget, SolveStatus, SolverPipeline,
    StopReason,
};

/// The problem model and algorithms crate.
pub use geacc_core as core;
/// Workload generators (synthetic Table III, Meetup-like Table II).
pub use geacc_datagen as datagen;
/// Min-cost-flow substrate.
pub use geacc_flow as flow;
/// Nearest-neighbour index substrate.
pub use geacc_index as index;
