//! Live sign-ups: arranging a weekend while users arrive.
//!
//! Combines two library extensions: the *temporal* generator (conflicts
//! derived from a real timetable + venue travel, per Definition 3) and
//! the *online* arranger (users served in arrival order, instantly).
//! Compares arrival-order assignment — with and without a reservation
//! threshold — against the offline Greedy-GEACC that knows everyone in
//! advance.
//!
//! Run with:
//! ```sh
//! cargo run --release --example live_signups
//! ```

use geacc::algorithms::greedy;
use geacc::algorithms::online::{online_greedy, OnlineConfig};
use geacc::core::algorithms::localsearch::{improve, LocalSearchConfig};
use geacc::datagen::TemporalConfig;
use geacc::UserId;

fn main() {
    // A packed Saturday: 40 events in 16 waking hours across town.
    let config = TemporalConfig {
        num_events: 40,
        num_users: 300,
        horizon_hours: 16.0,
        duration_hours: (1.0, 3.0),
        city_extent: 1.5,
        seed: 7,
        ..TemporalConfig::default()
    };
    let generated = config.generate();
    let instance = &generated.instance;
    println!(
        "Saturday: {} events, {} users, {} schedule-derived conflicts (density {:.2})",
        instance.num_events(),
        instance.num_users(),
        instance.conflicts().num_pairs(),
        instance.conflicts().density()
    );

    // Offline reference: the whole sign-up list known in advance.
    let offline = greedy(instance);
    println!(
        "\noffline Greedy-GEACC (knows everyone):   MaxSum {:.2}",
        offline.max_sum()
    );

    // Users arrive in a scrambled order (multiplicative-shuffle).
    let n = instance.num_users() as u64;
    let order: Vec<UserId> = (0..n).map(|i| UserId(((i * 179) % n) as u32)).collect();

    for threshold in [0.0, 0.3, 0.45] {
        let plan = online_greedy(instance, order.iter().copied(), OnlineConfig { threshold });
        assert!(plan.validate(instance).is_empty());
        println!(
            "online, threshold {threshold:.2}:               MaxSum {:.2} ({:.1}% of offline)",
            plan.max_sum(),
            100.0 * plan.max_sum() / offline.max_sum()
        );
    }

    // Nightly batch repair: local search over the final online plan —
    // what a production arranger runs after the sign-up rush.
    let overnight = improve(
        instance,
        online_greedy(instance, order.iter().copied(), OnlineConfig::default()),
        LocalSearchConfig::default(),
    );
    println!(
        "online + overnight local search:        MaxSum {:.2} ({} moves)",
        overnight.arrangement.max_sum(),
        overnight.moves
    );
}
