//! Capacity planning: how many seats does a satisfying weekend need?
//!
//! A platform-operator use of the library beyond the paper's benchmarks:
//! sweep the venue capacity of a synthetic city's events (the x-axis of
//! the paper's Fig. 4, first column) and watch total satisfied interest
//! and seat utilization, to pick the cheapest capacity that saturates
//! user demand. Demonstrates config-driven generation, the Δ-relaxation
//! diagnostic, and JSON export of an arrangement.
//!
//! Run with:
//! ```sh
//! cargo run --release --example capacity_planner
//! ```

use geacc::algorithms::{greedy, mincostflow};
use geacc::datagen::{CapDistribution, SyntheticConfig};

fn main() {
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        "max c_v", "MaxSum", "pairs", "seat util %", "relax bound"
    );
    println!("{}", "-".repeat(58));

    let mut last_plan = None;
    for max_cv in [2, 5, 10, 20, 50] {
        let config = SyntheticConfig {
            num_events: 40,
            num_users: 400,
            cap_v_dist: CapDistribution::Uniform {
                min: 1,
                max: max_cv,
            },
            seed: 11,
            ..SyntheticConfig::default()
        };
        let instance = config.generate();
        let plan = greedy(&instance);
        assert!(plan.validate(&instance).is_empty());
        let relaxation = mincostflow(&instance).relaxation;
        let seats = instance.total_event_capacity();
        println!(
            "{:>8} {:>10.2} {:>10} {:>11.1} {:>12.2}",
            max_cv,
            plan.max_sum(),
            plan.len(),
            100.0 * plan.len() as f64 / seats as f64,
            relaxation.max_sum,
        );
        last_plan = Some((instance, plan));
    }

    // User demand saturates: once every user's slots are filled, more
    // seats stop helping — the knee in the MaxSum column is the cheapest
    // adequate capacity.
    let (instance, plan) = last_plan.expect("loop ran");
    let total_slots = instance.total_user_capacity();
    println!(
        "\nat the largest setting, {} of {} user slots are filled",
        plan.len(),
        total_slots
    );

    // Ship the chosen arrangement to the events service as JSON.
    let json = serde_json::to_string(&plan).expect("arrangements serialize");
    println!("arrangement JSON payload: {} bytes", json.len());
}
