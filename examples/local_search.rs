//! Closing the approximation gap with local search (library extension).
//!
//! On conflict-heavy instances Greedy-GEACC's irrevocable early picks
//! leave value on the table (its guarantee is `1/(1+max c_u)`). This
//! example runs the hill-climbing post-optimizer behind each algorithm
//! and reports the recovered MaxSum against the exact optimum.
//!
//! Run with:
//! ```sh
//! cargo run --release --example local_search
//! ```

use geacc::algorithms::localsearch::{improve, LocalSearchConfig};
use geacc::algorithms::{greedy, mincostflow, prune, random_v};
use geacc::datagen::{CapDistribution, SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Small enough for the exact optimum, dense conflicts so the
    // approximations actually leave a gap.
    let instance = SyntheticConfig {
        num_events: 6,
        num_users: 14,
        cap_v_dist: CapDistribution::Uniform { min: 1, max: 6 },
        conflict_ratio: 0.75,
        seed: 21,
        ..SyntheticConfig::default()
    }
    .generate();

    let optimum = prune(&instance).arrangement.max_sum();
    println!("exact optimum MaxSum: {optimum:.4}\n");
    println!(
        "{:<22} {:>10} {:>12} {:>8} {:>8}",
        "start", "MaxSum", "after LS", "moves", "% of opt"
    );
    println!("{}", "-".repeat(64));

    let starts: Vec<(&str, geacc::Arrangement)> = vec![
        ("Greedy-GEACC", greedy(&instance)),
        ("MinCostFlow-GEACC", mincostflow(&instance).arrangement),
        (
            "Random-V",
            random_v(&instance, &mut StdRng::seed_from_u64(2)),
        ),
        ("empty", geacc::Arrangement::empty_for(&instance)),
    ];
    for (name, start) in starts {
        let before = start.max_sum();
        let res = improve(&instance, start, LocalSearchConfig::default());
        assert!(res.arrangement.validate(&instance).is_empty());
        println!(
            "{:<22} {:>10.4} {:>12.4} {:>8} {:>7.1}%",
            name,
            before,
            res.arrangement.max_sum(),
            res.moves,
            100.0 * res.arrangement.max_sum() / optimum
        );
    }

    println!(
        "\nlocal search is monotone and feasibility-preserving; it never\n\
         exceeds the optimum and terminates at a local maximum of the\n\
         add / upgrade-event / upgrade-user move set."
    );
}
