//! The introduction's motivating scenario: Bob's Sunday.
//!
//! The paper opens with a sports enthusiast offered three conflicting
//! activities: a hiking trip 8:00–12:00, a badminton game 9:00–11:00, and
//! a basketball game 11:30–13:30 at a court an hour's drive from the
//! badminton stadium. This example derives the conflict graph from the
//! timetable + venue geometry ([`ConflictGraph::from_intervals_with_travel`])
//! and arranges a whole club of enthusiasts across the weekend, instead
//! of leaving each of them to Bob's dilemma.
//!
//! Run with:
//! ```sh
//! cargo run --example conflict_scheduler
//! ```

use geacc::algorithms::{greedy, prune};
use geacc::{ConflictGraph, Instance, SimilarityModel};

fn main() {
    // Sunday's schedule: (start hour, end hour) and venue coordinates in
    // "hours of driving" units.
    let names = ["hiking trip", "badminton", "basketball", "evening yoga"];
    let slots = [(8.0, 12.0), (9.0, 11.0), (11.5, 13.5), (18.0, 19.5)];
    let venues = [(0.0, 3.0), (0.0, 0.0), (1.0, 0.0), (0.2, 0.1)];
    let capacity = [8, 4, 10, 6];

    // Overlap ⇒ conflict; disjoint slots conflict too when the gap is
    // shorter than the drive (badminton → basketball: 0.5 h gap, 1 h
    // drive — the paper's exact example).
    let conflicts = ConflictGraph::from_intervals_with_travel(&slots, &venues, 1.0);
    println!("derived conflicts:");
    for (a, b) in conflicts.pairs() {
        println!("  {} ⟂ {}", names[a.index()], names[b.index()]);
    }

    // Club members have 2-D sport-taste attributes (endurance vs. court
    // sports affinity, morning vs. evening preference), T = 10.
    let mut b = Instance::builder(2, SimilarityModel::Euclidean { t: 10.0 });
    let event_tastes = [[9.0, 2.0], [7.0, 3.0], [6.0, 4.0], [2.0, 9.0]];
    for (attrs, &cap) in event_tastes.iter().zip(&capacity) {
        b.event(attrs, cap);
    }
    // A dozen members, Bob included (member 0 is Bob: loves morning
    // sports). Kept small so the exact-optimum comparison below stays
    // instant — branch-and-bound cost explodes with the member count.
    b.user(&[8.0, 2.5], 2);
    for i in 1..12u32 {
        let endurance = (i * 7 % 11) as f64;
        let evening = (i * 3 % 10) as f64;
        b.user(&[endurance, evening], 1 + (i % 2));
    }
    b.conflicts(conflicts);
    let instance = b.build().expect("well-formed club instance");

    let plan = greedy(&instance);
    assert!(plan.validate(&instance).is_empty());
    println!(
        "\ngreedy arrangement: {} assignments, total interest {:.2}",
        plan.len(),
        plan.max_sum()
    );
    for v in instance.events() {
        let attendees: Vec<String> = instance
            .users()
            .filter(|&u| plan.contains(v, u))
            .map(|u| {
                if u.index() == 0 {
                    "Bob".into()
                } else {
                    format!("{u}")
                }
            })
            .collect();
        println!(
            "  {:<13} {:>2}/{:<2} filled: {}",
            names[v.index()],
            attendees.len(),
            instance.event_capacity(v),
            attendees.join(", ")
        );
    }

    // Bob attends at most one of the three conflicting morning events.
    let bob = geacc::UserId(0);
    let bob_events = plan.events_of(bob);
    println!(
        "\nBob attends: {}",
        bob_events
            .iter()
            .map(|&v| names[v.index()])
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Small enough for the exact optimum — how much did greedy leave on
    // the table?
    let optimal = prune(&instance).arrangement;
    println!(
        "exact optimum {:.2}; greedy achieved {:.1}% of it",
        optimal.max_sum(),
        100.0 * plan.max_sum() / optimal.max_sum()
    );
}
