//! Arranging a whole city's Meetup-style weekend.
//!
//! Uses the Table II simulator ([`geacc::datagen::meetup`]) to build the
//! Auckland instance (37 events, 569 users, 20 merged-tag attributes),
//! then compares Greedy-GEACC and MinCostFlow-GEACC against the random
//! baselines — a miniature of the paper's Fig. 4 (last column)
//! experiment, with wall-clock timings.
//!
//! Run with:
//! ```sh
//! cargo run --release --example meetup_city [vancouver|auckland|singapore]
//! ```

use geacc::algorithms::{greedy, mincostflow, random_u, random_v};
use geacc::datagen::{City, MeetupConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let city = match std::env::args().nth(1).as_deref() {
        Some("vancouver") => City::Vancouver,
        Some("singapore") => City::Singapore,
        None | Some("auckland") => City::Auckland,
        Some(other) => {
            eprintln!("unknown city {other:?}; use vancouver | auckland | singapore");
            std::process::exit(2);
        }
    };

    let config = MeetupConfig::new(city);
    let instance = config.generate();
    println!(
        "{city:?}: {} events, {} users, {} conflicting pairs (ratio {:.2})",
        instance.num_events(),
        instance.num_users(),
        instance.conflicts().num_pairs(),
        instance.conflicts().density(),
    );
    println!(
        "capacity totals: events {} seats, users {} slots\n",
        instance.total_event_capacity(),
        instance.total_user_capacity()
    );

    println!(
        "{:<20} {:>10} {:>8} {:>12}",
        "algorithm", "MaxSum", "pairs", "time"
    );
    println!("{}", "-".repeat(54));

    let run = |name: &str, arr: geacc::Arrangement, elapsed: std::time::Duration| {
        assert!(arr.validate(&instance).is_empty(), "{name} infeasible");
        println!(
            "{:<20} {:>10.2} {:>8} {:>9.1?}",
            name,
            arr.max_sum(),
            arr.len(),
            elapsed
        );
        arr.max_sum()
    };

    let t = Instant::now();
    let g = greedy(&instance);
    let greedy_ms = run("Greedy-GEACC", g, t.elapsed());

    let t = Instant::now();
    let m = mincostflow(&instance);
    run("MinCostFlow-GEACC", m.arrangement, t.elapsed());

    let t = Instant::now();
    let rv = random_v(&instance, &mut StdRng::seed_from_u64(1));
    run("Random-V", rv, t.elapsed());

    let t = Instant::now();
    let ru = random_u(&instance, &mut StdRng::seed_from_u64(1));
    run("Random-U", ru, t.elapsed());

    println!(
        "\nconflict-free relaxation upper bound: {:.2} (greedy reached {:.1}% of it)",
        m.relaxation.max_sum,
        100.0 * greedy_ms / m.relaxation.max_sum
    );
}
