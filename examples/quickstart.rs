//! Quickstart: the paper's Table I toy instance, solved by every
//! algorithm.
//!
//! Reproduces the paper's running example end-to-end: the optimal
//! arrangement scores 4.39 (Table I), MinCostFlow-GEACC finds 4.13
//! (Fig. 1c) and Greedy-GEACC 4.28 (Fig. 2d).
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart
//! ```

use geacc::algorithms::Algorithm;
use geacc::engine::{self, CandidateGraph, SolveParams};
use geacc::parallel::Threads;
use geacc::runtime::BudgetMeter;
use geacc::toy;

fn main() {
    let instance = toy::table1_instance();
    println!("GEACC toy instance (paper Table I)");
    println!(
        "  {} events, {} users, {} conflicting pair(s)\n",
        instance.num_events(),
        instance.num_users(),
        instance.conflicts().num_pairs()
    );

    println!(
        "{:<20} {:>8} {:>7}  arrangement",
        "algorithm", "MaxSum", "pairs"
    );
    println!("{}", "-".repeat(72));
    // One candidate graph, shared by every solver dispatch.
    let graph = CandidateGraph::build(&instance, Threads::single());
    for algo in [
        Algorithm::Prune,
        Algorithm::Greedy,
        Algorithm::MinCostFlow,
        Algorithm::RandomV { seed: 7 },
        Algorithm::RandomU { seed: 7 },
    ] {
        let arrangement = engine::solve_on(
            &graph,
            algo,
            &SolveParams::default(),
            &BudgetMeter::unlimited(),
        )
        .arrangement;
        assert!(
            arrangement.validate(&instance).is_empty(),
            "{} produced an infeasible arrangement",
            algo.name()
        );
        let mut pairs: Vec<String> = arrangement
            .pairs()
            .map(|(v, u)| format!("{v}→{u}"))
            .collect();
        pairs.sort();
        println!(
            "{:<20} {:>8.2} {:>7}  {}",
            algo.name(),
            arrangement.max_sum(),
            arrangement.len(),
            pairs.join(" ")
        );
    }

    println!("\npaper golden values: optimal 4.39, greedy 4.28, min-cost-flow 4.13");
}
